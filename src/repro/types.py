"""Common enums, constants and small value types shared across the package.

The paper fixes a few conventions that the whole reproduction relies on:

* index structures are stored with **4-byte integers** (paper Section V),
* the 1D-VBL block-size array uses **1-byte entries**, capping a block at
  255 elements (larger runs are split),
* two floating-point precisions are evaluated: single (``sp``) and double
  (``dp``),
* two kernel implementations are evaluated: plain ``scalar`` code and
  vectorized ``simd`` code (fixed-size blocked formats only).

These constants live here so that the working-set accounting in
:mod:`repro.formats` and the cost tables in :mod:`repro.machine` can never
drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Precision",
    "Impl",
    "BlockShape",
    "INDEX_BYTES",
    "VBL_SIZE_BYTES",
    "VBL_MAX_BLOCK",
    "DEFAULT_MAX_BLOCK_ELEMS",
]

#: Bytes per entry of every index structure (col_ind, row_ptr, ...).
INDEX_BYTES = 4

#: Bytes per entry of the 1D-VBL ``blk_size`` array.
VBL_SIZE_BYTES = 1

#: Maximum number of elements a single 1D-VBL block may hold (uint8 range).
VBL_MAX_BLOCK = 255

#: The paper only considers fixed-size blocks with at most 8 elements
#: ("we used blocks with up to eight elements").
DEFAULT_MAX_BLOCK_ELEMS = 8


class Precision(str, enum.Enum):
    """Floating-point precision of the matrix values and the vectors."""

    SP = "sp"
    DP = "dp"

    @property
    def itemsize(self) -> int:
        """Bytes per floating-point element."""
        return 4 if self is Precision.SP else 8

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype used by the functional kernels."""
        return np.dtype(np.float32) if self is Precision.SP else np.dtype(np.float64)

    @classmethod
    def coerce(cls, value: "Precision | str") -> "Precision":
        return value if isinstance(value, cls) else cls(str(value).lower())


class Impl(str, enum.Enum):
    """Kernel implementation flavour.

    ``SIMD`` only exists for the fixed-size blocked formats; CSR and 1D-VBL
    are always ``SCALAR`` (the paper did not vectorize them).
    """

    SCALAR = "scalar"
    SIMD = "simd"

    @classmethod
    def coerce(cls, value: "Impl | str") -> "Impl":
        return value if isinstance(value, cls) else cls(str(value).lower())


@dataclass(frozen=True, order=True)
class BlockShape:
    """An ``r x c`` block shape for the fixed-size rectangular formats."""

    r: int
    c: int

    def __post_init__(self) -> None:
        if self.r < 1 or self.c < 1:
            raise ValueError(f"block shape must be positive, got {self.r}x{self.c}")

    @property
    def elems(self) -> int:
        return self.r * self.c

    def __iter__(self):
        yield self.r
        yield self.c

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.r}x{self.c}"
