"""One supervised ``repro serve`` child process.

A :class:`WorkerProcess` wraps exactly one OS process running the existing
:mod:`repro.serve` server — the fleet never reimplements the advisor; it
composes the hardened single-node server N times.  Each worker:

* binds an ephemeral port (``--port 0``) and announces it on stdout, which
  the parent parses (same contract :mod:`repro.resilience.smoke` relies
  on);
* owns a private recommendation-cache partition
  (``<cache_dir>/fleet/worker-<id>/``) — the balancer's fingerprint
  sharding guarantees no other worker ever writes those keys;
* shares the calibrated-profile store (``--profile-dir``) with the rest of
  the fleet, so only the first worker ever pays the multi-second
  calibration and replacements warm-start from disk;
* warms up before taking traffic (``--warmup``): the supervisor polls
  ``GET /readyz`` and only routes to (or SIGTERMs a predecessor of) a
  worker that answered 200.

A :class:`WorkerProcess` is single-use: one spawn, one OS process, one
shutdown.  Restarts create a fresh instance (see
:class:`~repro.fleet.supervisor.FleetSupervisor`).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

__all__ = ["WorkerProcess", "wait_until_ready", "probe_ready"]

#: The serve CLI's announcement line (stable since PR 2).
LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: How long a worker may take to announce its port (imports + bind).
DEFAULT_SPAWN_TIMEOUT_S = 60.0
#: How long a worker may take to report ready (includes calibration when
#: the shared profile store is cold).
DEFAULT_READY_TIMEOUT_S = 300.0


def probe_ready(base_url: str, timeout: float = 5.0) -> bool:
    """One ``GET /readyz`` probe; True only on a 200."""
    try:
        with urllib.request.urlopen(
            f"{base_url}/readyz", timeout=timeout
        ) as resp:
            return resp.status == 200
    except urllib.error.HTTPError as exc:
        exc.read()
        return False
    except (urllib.error.URLError, OSError, TimeoutError):
        return False


def wait_until_ready(
    base_url: str,
    timeout_s: float,
    *,
    poll_s: float = 0.1,
    alive: "callable | None" = None,
) -> bool:
    """Poll ``/readyz`` until 200, timeout, or ``alive()`` turns False."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout_s:
        if alive is not None and not alive():
            return False
        if probe_ready(base_url):
            return True
        time.sleep(poll_s)
    return False


class WorkerProcess:
    """A supervised ``repro serve`` subprocess (spawn → ready → stop)."""

    def __init__(
        self,
        worker_id: int,
        *,
        cache_dir: str | Path,
        profile_dir: str | Path | None = None,
        host: str = "127.0.0.1",
        max_inflight: int | None = None,
        request_timeout_s: float | None = None,
        drain_timeout_s: float | None = None,
        fault_plan: str | None = None,
        warmup: bool = True,
        spawn_timeout_s: float = DEFAULT_SPAWN_TIMEOUT_S,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.cache_root = Path(cache_dir)
        self.worker_dir = self.cache_root / "fleet" / f"worker-{worker_id}"
        self.profile_dir = (
            Path(profile_dir) if profile_dir is not None else self.cache_root
        )
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.fault_plan = fault_plan
        self.warmup = warmup
        self.spawn_timeout_s = spawn_timeout_s
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        self._stderr_file = None

    # ------------------------------ spawn ------------------------------- #
    def command(self) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--cache-dir", str(self.worker_dir),
            "--profile-dir", str(self.profile_dir),
            "--worker-id", str(self.worker_id),
        ]
        if self.warmup:
            cmd.append("--warmup")
        if self.max_inflight is not None:
            cmd += ["--max-inflight", str(self.max_inflight)]
        if self.request_timeout_s is not None:
            cmd += ["--request-timeout", str(self.request_timeout_s)]
        if self.drain_timeout_s is not None:
            cmd += ["--drain-timeout", str(self.drain_timeout_s)]
        if self.fault_plan is not None:
            cmd += ["--fault-plan", self.fault_plan]
        return cmd

    def spawn(self) -> int:
        """Start the process and return its announced port."""
        if self.proc is not None:
            raise RuntimeError(
                f"worker {self.worker_id} already spawned (single-use)"
            )
        self.worker_dir.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        # The child must import repro regardless of how the parent found it
        # (installed package or PYTHONPATH=src checkout).
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_dir + (os.pathsep + existing if existing else "")
            )
        # stderr goes to a file, never a pipe: workers log faults and the
        # final stats snapshot there, and an undrained pipe would block.
        self._stderr_file = open(
            self.worker_dir.parent / f"worker-{self.worker_id}.stderr",
            "a",
            encoding="utf-8",
        )
        self.proc = subprocess.Popen(
            self.command(),
            stdout=subprocess.PIPE,
            stderr=self._stderr_file,
            text=True,
            env=env,
        )
        self.port = self._parse_port()
        return self.port

    def _parse_port(self) -> int:
        """Read the announcement line off stdout (bounded by a thread)."""
        assert self.proc is not None and self.proc.stdout is not None
        found: list[int] = []

        def reader() -> None:
            for line in self.proc.stdout:
                match = LISTEN_RE.search(line)
                if match:
                    found.append(int(match.group(2)))
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        thread.join(timeout=self.spawn_timeout_s)
        if not found:
            rc = self.proc.poll()
            self.stop(timeout_s=2.0)
            raise RuntimeError(
                f"worker {self.worker_id} did not announce a port within "
                f"{self.spawn_timeout_s:.0f}s"
                + (f" (exited with status {rc})" if rc is not None else "")
            )
        return found[0]

    # ----------------------------- liveness ----------------------------- #
    @property
    def base_url(self) -> str:
        if self.port is None:
            raise RuntimeError(f"worker {self.worker_id} has no port yet")
        return f"http://{self.host}:{self.port}"

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def poll(self) -> int | None:
        """The exit status if the process died, else ``None``."""
        return self.proc.poll() if self.proc is not None else None

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def wait_ready(
        self, timeout_s: float = DEFAULT_READY_TIMEOUT_S
    ) -> bool:
        return wait_until_ready(
            self.base_url, timeout_s, alive=self.alive
        )

    # ------------------------------- stop -------------------------------- #
    def terminate(self) -> None:
        """Ask for a graceful drain (SIGTERM; the server handles it)."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)

    def kill(self) -> None:
        """Hard-kill (chaos testing / drain-timeout escalation)."""
        if self.alive():
            self.proc.kill()

    def wait(self, timeout_s: float | None = None) -> int | None:
        if self.proc is None:
            return None
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            return None

    def stop(self, timeout_s: float = 15.0) -> int | None:
        """Graceful stop: SIGTERM, bounded wait, SIGKILL escalation."""
        if self.proc is None:
            return None
        self.terminate()
        rc = self.wait(timeout_s)
        if rc is None:
            self.kill()
            rc = self.wait(5.0)
        self.close()
        return rc

    def close(self) -> None:
        """Release the parent-side file handles (idempotent)."""
        if self.proc is not None and self.proc.stdout is not None:
            try:
                self.proc.stdout.close()
            except OSError:
                pass
        if self._stderr_file is not None:
            try:
                self._stderr_file.close()
            except OSError:
                pass
            self._stderr_file = None

    def stats(self, timeout: float = 10.0) -> dict | None:
        """This worker's ``GET /stats`` snapshot, or None if unreachable."""
        try:
            with urllib.request.urlopen(
                f"{self.base_url}/stats", timeout=timeout
            ) as resp:
                return json.loads(resp.read())
        except (urllib.error.URLError, OSError, TimeoutError, ValueError):
            return None
