"""Deterministic traffic-replay plans for the fleet load harness.

A :class:`ReplayPlan` is a *pure function* of ``(mix, seed, n_requests,
matrices)`` — no wall clock, no process state.  Two runs with the same
arguments produce byte-identical request sequences (checkable via
:meth:`ReplayPlan.sequence_sha`), which is what makes fleet benchmarks
comparable across commits and lets CI assert the harness itself is
deterministic even though the latencies it measures are not.

Four mixes model the traffic shapes the advisor's caches care about:

``steady``
    Uniform draws over the matrix set — the baseline throughput shape.
``skew``
    Hot-key traffic: Zipf-ish weights ``1/(rank+1)**1.5`` over a
    seed-shuffled ranking, so one shard takes most of the load (the worst
    case for content sharding, the best case for cache hits).
``flood``
    Cold-start flood: repeated seeded shuffles of the *full* matrix set,
    maximising distinct-matrix turnover per window (the worst case for
    the recommendation cache).
``chaos``
    The ``skew`` arrival sequence plus a fault plan for every worker
    (PR 5's injection sites) and a scripted mid-run worker kill, so the
    balancer's shard failover and the supervisor's crash-restart path
    take real traffic.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from hashlib import sha256

from ..matrices.suite import get_entry

__all__ = [
    "MIXES",
    "DEFAULT_MATRICES",
    "CHAOS_FAULT_PLAN",
    "RequestSpec",
    "ReplayPlan",
    "build_plan",
]

#: Supported traffic mixes (CLI ``loadtest --mix`` choices).
MIXES = ("steady", "skew", "flood", "chaos")

#: Cheapest suite matrices on a small container — same set the PR 5
#: chaos smoke uses, so fleet numbers compare against that baseline.
DEFAULT_MATRICES = ("dense", "pwtk", "stomach")

#: Zipf-ish skew exponent for the ``skew`` and ``chaos`` mixes.
SKEW_EXPONENT = 1.5

#: Fraction of the way through a chaos run at which a worker is killed.
CHAOS_KILL_AT = 0.5

#: Fault plan every worker runs under during the ``chaos`` mix — the
#: PR 5 smoke plan: cache-save faults, payload corruption, load delays.
CHAOS_FAULT_PLAN = {
    "seed": 1337,
    "rules": [
        {"site": "serve.store.save", "action": "raise", "probability": 0.3},
        {
            "site": "ioutils.atomic_write_json.data",
            "action": "corrupt",
            "probability": 0.2,
        },
        {"site": "serve.store.load", "action": "delay", "probability": 0.2,
         "delay_s": 0.02},
    ],
}


def _plan_rng(mix: str, seed: int) -> random.Random:
    """A ``random.Random`` derived stably from the (mix, seed) pair.

    The derivation goes through SHA-256 so ``("steady", 1)`` and
    ``("skew", 1)`` draw unrelated streams, and the stream is identical
    across processes and Python hash seeds.
    """
    digest = sha256(f"repro.fleet.replay|{mix}|{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class RequestSpec:
    """One replayed ``POST /advise`` request."""

    suite: str
    top: int = 1

    def to_body(self) -> dict:
        return {"suite": self.suite, "top": self.top}


@dataclass(frozen=True)
class ReplayPlan:
    """A fully materialised request sequence plus its chaos script."""

    mix: str
    seed: int
    matrices: tuple[str, ...]
    requests: tuple[RequestSpec, ...]
    #: Fault plan forwarded to every worker (chaos mix only).
    fault_plan: dict | None = None
    #: Kill one worker this fraction of the way through (chaos mix only).
    kill_worker_at: float | None = None

    def canonical_json(self) -> str:
        """The plan as canonical JSON — the determinism contract."""
        payload = {
            "mix": self.mix,
            "seed": self.seed,
            "matrices": list(self.matrices),
            "requests": [
                {"suite": r.suite, "top": r.top} for r in self.requests
            ],
            "fault_plan": self.fault_plan,
            "kill_worker_at": self.kill_worker_at,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def sequence_sha(self) -> str:
        """SHA-256 of the canonical plan; equal seeds ⇒ equal digests."""
        return sha256(self.canonical_json().encode()).hexdigest()


def _steady(rng: random.Random, n: int, matrices: tuple[str, ...]):
    return [rng.choice(matrices) for _ in range(n)]


def _skew(rng: random.Random, n: int, matrices: tuple[str, ...]):
    ranked = list(matrices)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** SKEW_EXPONENT for rank in
               range(len(ranked))]
    return rng.choices(ranked, weights=weights, k=n)


def _flood(rng: random.Random, n: int, matrices: tuple[str, ...]):
    names: list[str] = []
    while len(names) < n:
        cycle = list(matrices)
        rng.shuffle(cycle)
        names.extend(cycle)
    return names[:n]


def build_plan(
    mix: str,
    seed: int,
    n_requests: int,
    matrices: tuple[str, ...] | None = None,
) -> ReplayPlan:
    """Materialise the deterministic request sequence for one run."""
    if mix not in MIXES:
        raise ValueError(f"unknown mix {mix!r}; expected one of {MIXES}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    chosen = tuple(matrices) if matrices else DEFAULT_MATRICES
    for name in chosen:  # fail fast on typos, before any worker spawns
        get_entry(name)
    rng = _plan_rng(mix, seed)
    if mix == "steady":
        names = _steady(rng, n_requests, chosen)
    elif mix == "flood":
        names = _flood(rng, n_requests, chosen)
    else:  # skew and chaos share the hot-key arrival sequence
        names = _skew(rng, n_requests, chosen)
    requests = tuple(RequestSpec(suite=name) for name in names)
    if mix == "chaos":
        return ReplayPlan(
            mix=mix,
            seed=seed,
            matrices=chosen,
            requests=requests,
            fault_plan=CHAOS_FAULT_PLAN,
            kill_worker_at=CHAOS_KILL_AT,
        )
    return ReplayPlan(mix=mix, seed=seed, matrices=chosen, requests=requests)
