"""Closed-loop load generator driving a fleet over real sockets.

:func:`run_load` replays a :class:`~repro.fleet.replay.ReplayPlan`
against a base URL with a fixed number of concurrent clients and returns
one benchmark *table* (a plain dict, JSON-ready).  The table keeps a
strict separation:

* **deterministic fields** — mix, seed, request count, matrix set,
  ``sequence_sha256``, the per-status tallies of a fault-free run — are
  functions of the plan alone and are what tests compare across runs;
* **timing fields** — throughput and latency percentiles — live under
  the ``"timing"`` key and are *excluded* from determinism comparisons
  (wall-clock numbers vary run to run by construction).

Clients are closed-loop: each thread takes the next request off a shared
cursor, posts it, waits for the full response, then takes another.  With
``clients=C`` that bounds offered concurrency at C, mirroring how the
admission bound on the server side is exercised in PR 5's smoke.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request

from .replay import ReplayPlan

__all__ = ["post_advise", "run_load", "percentile", "warm_fleet"]

#: Client-side timeout per request; far above any healthy advise.
DEFAULT_CLIENT_TIMEOUT_S = 300.0


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted values (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q / 100.0 * len(sorted_values)) - 1
    return sorted_values[max(0, min(len(sorted_values) - 1, rank))]


def post_advise(
    base_url: str,
    body: dict,
    timeout_s: float = DEFAULT_CLIENT_TIMEOUT_S,
) -> tuple[int, dict | None]:
    """One ``POST /advise``; returns (status, payload-or-None)."""
    data = json.dumps(body).encode()
    req = urllib.request.Request(
        f"{base_url}/advise",
        data=data,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = None
        return exc.code, payload


def warm_fleet(
    base_url: str,
    plan: ReplayPlan,
    timeout_s: float = DEFAULT_CLIENT_TIMEOUT_S,
) -> dict[str, int]:
    """Post each distinct request body once, serially.

    Pays every cold-advise cost outside the measured window so steady
    and skew tables measure cache-warm serving, not first-touch model
    evaluation.  Returns the statuses seen ({suite_name: status}).
    """
    statuses: dict[str, int] = {}
    seen: set[str] = set()
    for spec in plan.requests:
        if spec.suite in seen:
            continue
        seen.add(spec.suite)
        status, _ = post_advise(base_url, spec.to_body(), timeout_s)
        statuses[spec.suite] = status
    return statuses


class _Cursor:
    """Hands out plan indices to client threads, one at a time."""

    def __init__(self, n: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._n = n

    def take(self) -> int | None:
        with self._lock:
            if self._next >= self._n:
                return None
            index = self._next
            self._next += 1
            return index

    def position(self) -> int:
        with self._lock:
            return self._next


class _Tally:
    """Thread-safe accumulation of statuses, latencies, violations."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.statuses: dict[int, int] = {}
        self.latencies_s: list[float] = []
        self.violations: list[str] = []

    def record(self, status: int, latency_s: float) -> None:
        with self._lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            self.latencies_s.append(latency_s)

    def violation(self, message: str) -> None:
        with self._lock:
            self.violations.append(message)


def run_load(
    base_url: str,
    plan: ReplayPlan,
    *,
    clients: int = 4,
    timeout_s: float = DEFAULT_CLIENT_TIMEOUT_S,
    allowed_statuses: tuple[int, ...] = (200,),
    on_midpoint=None,
) -> dict:
    """Replay ``plan`` against ``base_url``; return the benchmark table.

    ``allowed_statuses`` defines the run's *budget*: any response outside
    it is recorded as a violation (the table stays usable for asserting
    "zero client-visible failures" or "only shed/timeout within budget").
    ``on_midpoint`` fires exactly once, in the client thread that crosses
    ``plan.kill_worker_at`` (default halfway) — the chaos hook that kills
    a worker mid-run.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    cursor = _Cursor(len(plan.requests))
    tally = _Tally()
    midpoint_at = plan.kill_worker_at if plan.kill_worker_at is not None \
        else 0.5
    midpoint_index = max(1, int(len(plan.requests) * midpoint_at))
    midpoint_lock = threading.Lock()
    midpoint_fired = False

    def fire_midpoint_once() -> None:
        nonlocal midpoint_fired
        with midpoint_lock:
            if midpoint_fired:
                return
            midpoint_fired = True
        try:
            on_midpoint()
        except Exception as exc:  # noqa: BLE001 - recorded, not fatal
            tally.violation(f"midpoint hook failed: {exc}")

    def client_loop() -> None:
        while True:
            index = cursor.take()
            if index is None:
                return
            if on_midpoint is not None and index >= midpoint_index:
                fire_midpoint_once()
            spec = plan.requests[index]
            t_req = time.monotonic()
            try:
                status, _payload = post_advise(
                    base_url, spec.to_body(), timeout_s
                )
            except (urllib.error.URLError, OSError, TimeoutError) as exc:
                tally.violation(
                    f"request {index} ({spec.suite}): transport error "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            latency = time.monotonic() - t_req
            tally.record(status, latency)
            if status not in allowed_statuses:
                tally.violation(
                    f"request {index} ({spec.suite}): status {status} "
                    f"outside budget {sorted(allowed_statuses)}"
                )

    t0 = time.monotonic()
    threads = [
        threading.Thread(
            target=client_loop, name=f"loadgen-{i}", daemon=True
        )
        for i in range(clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - t0

    latencies = sorted(tally.latencies_s)
    completed = len(latencies)
    return {
        "mix": plan.mix,
        "seed": plan.seed,
        "requests": len(plan.requests),
        "clients": clients,
        "matrices": list(plan.matrices),
        "sequence_sha256": plan.sequence_sha(),
        "statuses": {
            str(code): count
            for code, count in sorted(tally.statuses.items())
        },
        "violations": list(tally.violations),
        "timing": {
            "elapsed_s": round(elapsed, 4),
            "throughput_rps": round(completed / elapsed, 3)
            if elapsed > 0 else 0.0,
            "mean_ms": round(
                sum(latencies) / completed * 1000.0, 3
            ) if completed else 0.0,
            "p50_ms": round(percentile(latencies, 50.0) * 1000.0, 3),
            "p95_ms": round(percentile(latencies, 95.0) * 1000.0, 3),
            "p99_ms": round(percentile(latencies, 99.0) * 1000.0, 3),
        },
    }
