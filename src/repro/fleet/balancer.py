"""Content-sharded HTTP front balancer for the advisor fleet.

A small stdlib ``ThreadingHTTPServer`` that owns the fleet's public port
and routes every request to one of the supervisor's worker slots:

* ``POST /advise`` — routed by **content fingerprint shard**: a stable
  SHA-256 over the request's matrix spec (the ``matrix_market`` text or
  the normalised ``suite`` name) taken ``mod N``.  The same matrix always
  lands on the same worker, so each worker's recommendation-cache
  partition is disjoint and its hit rate is unaffected by fleet size.
  A down shard fails over to the next worker in the ring (``attempt``
  counts the hops in the ``request_routed`` event); advise is read-only,
  so replaying the request on another worker is always safe — the
  fallback worker simply computes (and caches) the answer itself.
* ``GET /stats`` — fan-in: every reachable worker's snapshot, merged by
  :func:`merge_stats` (counters summed, breaker states worst-of), plus
  the raw per-worker views (each carrying its ``worker_id``) and the
  balancer's own routing counters.
* ``GET /healthz`` / ``GET /readyz`` — fleet liveness vs readiness: the
  balancer is *live* whenever it answers, but only *ready* when every
  worker slot is routable (during a crash-restart window readiness drops
  to 503 while requests still succeed via shard failover).

The balancer holds no recommendation state of its own — restarting it
loses nothing but the routing counters.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
from hashlib import sha256
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..engine.events import EventBus
from ..serve.server import DEFAULT_MAX_BODY_BYTES, RETRY_AFTER_S
from .supervisor import FleetSupervisor

__all__ = [
    "routing_fingerprint",
    "shard_for",
    "merge_stats",
    "FleetBalancer",
    "BalancerRequestHandler",
    "create_balancer",
]

logger = logging.getLogger(__name__)

#: Socket timeout for one proxied worker request (generous: a cold advise
#: against a large suite matrix can take seconds).
DEFAULT_PROXY_TIMEOUT_S = 300.0

#: Breaker-state severity for the merged /stats view: the fleet reports
#: the *worst* state across workers per precision.
BREAKER_SEVERITY = {"closed": 0, "half_open": 1, "open": 2}

#: Counter keys of a worker /stats snapshot that merge by summation.
SUMMED_COUNTERS = (
    "requests", "cache_hits", "cache_misses", "errors", "timeouts",
    "batches", "degraded", "cache_entries",
)

#: Counter keys of a worker's ``learn`` /stats block that merge by
#: summation (the shadow sub-block has its own summed keys below).
LEARN_SUMMED = ("trace_records", "trace_segments", "model_swaps")
SHADOW_SUMMED = (
    "observed", "agreed", "holdout_observed", "holdout_agreed", "window",
)


def _merge_learn(learn_blocks: list[dict]) -> dict:
    """Fleet-wide ``learn`` view: counters summed, gap recomputed from the
    pooled holdout tallies, drift-breaker state worst-of across workers,
    model versions collected (one entry per distinct version — a fleet
    mid-rollout legitimately shows more than one)."""
    merged: dict = {"enabled": True}
    for key in LEARN_SUMMED:
        merged[key] = sum(b.get(key, 0) for b in learn_blocks)
    modes: dict[str, int] = {}
    shadow: dict = {key: 0 for key in SHADOW_SUMMED}
    versions: list[str] = []
    breaker: dict | None = None
    for block in learn_blocks:
        for mode, count in block.get("modes", {}).items():
            modes[mode] = modes.get(mode, 0) + count
        for key in SHADOW_SUMMED:
            shadow[key] += block.get("shadow", {}).get(key) or 0
        version = block.get("model_version")
        if version is not None and version not in versions:
            versions.append(version)
        snap = block.get("drift_breaker")
        if snap is not None:
            if breaker is None:
                breaker = dict(snap)
            else:
                if BREAKER_SEVERITY.get(
                    snap.get("state"), 0
                ) > BREAKER_SEVERITY.get(breaker.get("state"), 0):
                    breaker["state"] = snap.get("state")
                breaker["consecutive_failures"] = max(
                    breaker.get("consecutive_failures", 0),
                    snap.get("consecutive_failures", 0),
                )
    observed = shadow["holdout_observed"]
    shadow["gap"] = (
        1.0 - shadow["holdout_agreed"] / observed if observed else None
    )
    merged["modes"] = modes
    merged["shadow"] = shadow
    merged["model_versions"] = sorted(versions)
    if breaker is not None:
        merged["drift_breaker"] = breaker
    return merged


def routing_fingerprint(request: dict) -> str | None:
    """The stable shard key of an ``/advise`` request body, or ``None``.

    Mirrors the server's matrix-spec contract: ``matrix_market`` content
    hashes as-is, a ``suite`` spec hashes by its normalised name, so
    ``"pwtk"`` and ``" PWTK "`` (and repeated requests generally) always
    route identically.  Hashing is SHA-256, never :func:`hash` — Python's
    string hashing is salted per process and would re-shard every restart.
    """
    if "matrix_market" in request:
        text = request["matrix_market"]
        if not isinstance(text, str):
            return None
        return sha256(b"mm:" + text.encode()).hexdigest()
    if "suite" in request:
        spec = str(request["suite"]).strip().lower()
        return sha256(f"suite:{spec}".encode()).hexdigest()
    return None


def shard_for(fingerprint: str, n_workers: int) -> int:
    """``hash(fingerprint) mod N`` — the worker that owns this matrix."""
    return int(fingerprint, 16) % n_workers


def merge_stats(worker_stats: list[dict]) -> dict:
    """One fleet-wide view of many worker ``/stats`` snapshots.

    Counters are *summed*; ``mean_latency_s`` is weighted by each worker's
    request count; per-precision breaker states take the *worst* state
    (and the max failure count) across workers, so one open breaker
    anywhere is visible at the fleet level instead of being overwritten
    by the healthy majority.  Learn blocks (when any worker has learning
    enabled) merge the same way: tallies summed, the shadow gap recomputed
    from the pooled holdout counts, the drift breaker worst-of (see
    :func:`_merge_learn`).
    """
    merged: dict = {key: 0 for key in SUMMED_COUNTERS}
    weighted_latency = 0.0
    total_requests = 0
    events: dict[str, int] = {}
    breakers: dict[str, dict] = {}
    machines: list[str] = []
    for stats in worker_stats:
        for key in SUMMED_COUNTERS:
            merged[key] += stats.get(key, 0)
        requests = stats.get("requests", 0)
        weighted_latency += stats.get("mean_latency_s", 0.0) * requests
        total_requests += requests
        machine = stats.get("machine")
        if machine is not None and machine not in machines:
            machines.append(machine)
        resilience = stats.get("resilience", {})
        for kind, count in resilience.get("events", {}).items():
            events[kind] = events.get(kind, 0) + count
        for precision, snap in resilience.get("breakers", {}).items():
            seen = breakers.get(precision)
            if seen is None:
                breakers[precision] = dict(snap)
                continue
            if BREAKER_SEVERITY.get(
                snap.get("state"), 0
            ) > BREAKER_SEVERITY.get(seen.get("state"), 0):
                seen["state"] = snap.get("state")
            seen["consecutive_failures"] = max(
                seen.get("consecutive_failures", 0),
                snap.get("consecutive_failures", 0),
            )
    merged["mean_latency_s"] = (
        weighted_latency / total_requests if total_requests else 0.0
    )
    merged["machine"] = machines[0] if len(machines) == 1 else machines
    merged["resilience"] = {"events": events, "breakers": breakers}
    learn_blocks = [
        stats["learn"]
        for stats in worker_stats
        if stats.get("learn", {}).get("enabled")
    ]
    merged["learn"] = (
        _merge_learn(learn_blocks) if learn_blocks else {"enabled": False}
    )
    return merged


class _RouteCounter:
    """Thread-safe tally of the balancer's own routing outcomes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: dict[str, int] = {
            "routed": 0, "retried": 0, "unroutable": 0,
        }

    def bump(self, key: str, by: int = 1) -> None:
        with self._lock:
            self.counts[key] += by

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counts)


class FleetBalancer(ThreadingHTTPServer):
    """The fleet's front door; holds the supervisor and routing state."""

    def __init__(
        self,
        server_address,
        handler_class,
        supervisor: FleetSupervisor,
        *,
        bus: EventBus | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        proxy_timeout_s: float = DEFAULT_PROXY_TIMEOUT_S,
    ) -> None:
        super().__init__(server_address, handler_class)
        self.supervisor = supervisor
        self.bus = bus if bus is not None else supervisor.bus
        self.max_body_bytes = max_body_bytes
        self.proxy_timeout_s = proxy_timeout_s
        self.routes = _RouteCounter()


class BalancerRequestHandler(BaseHTTPRequestHandler):
    """Routes /advise by shard; aggregates /stats; reports fleet health."""

    server_version = "repro-fleet/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def balancer(self) -> FleetBalancer:
        return self.server  # type: ignore[return-value]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s - %s", self.address_string(), format % args)

    # ------------------------------ helpers ----------------------------- #
    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, headers: dict | None = None
    ) -> None:
        self.close_connection = True
        self._send_json(status, {"error": message}, headers)

    # ------------------------------- GET -------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._handle_get()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - catch-all: JSON 500
            self._internal_error("GET", exc)

    def _handle_get(self) -> None:
        supervisor = self.balancer.supervisor
        if self.path == "/healthz":
            self._send_json(
                200,
                {"status": "ok", "workers": supervisor.snapshot()},
            )
        elif self.path == "/readyz":
            workers = supervisor.snapshot()
            if all(w["ready"] for w in workers):
                self._send_json(200, {"status": "ready", "workers": workers})
            else:
                self._send_json(
                    503, {"status": "degraded", "workers": workers}
                )
        elif self.path == "/stats":
            self._send_json(200, self._aggregate_stats())
        else:
            self._error(404, f"unknown path {self.path!r}")

    def _aggregate_stats(self) -> dict:
        supervisor = self.balancer.supervisor
        per_worker: list[dict] = []
        for slot in supervisor.slots:
            with slot.lock:
                worker = slot.worker
            stats = worker.stats() if worker is not None else None
            if stats is not None:
                # Belt and braces: the worker stamps its own worker_id
                # (``serve --worker-id``); fill it in for old workers.
                stats.setdefault("worker_id", slot.index)
                if stats.get("worker_id") is None:
                    stats["worker_id"] = slot.index
                per_worker.append(stats)
        merged = merge_stats(per_worker)
        merged["workers"] = per_worker
        merged["fleet"] = {
            "size": len(supervisor.slots),
            "reachable": len(per_worker),
            "slots": supervisor.snapshot(),
            "routing": self.balancer.routes.snapshot(),
        }
        return merged

    # ------------------------------- POST ------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/advise":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            self._handle_advise()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - catch-all: JSON 500
            self._internal_error("POST", exc)

    def _internal_error(self, method: str, exc: Exception) -> None:
        logger.exception("unhandled error routing %s %s", method, self.path)
        try:
            self._error(
                500, f"internal balancer error: {type(exc).__name__}: {exc}"
            )
        except OSError:
            pass

    def _read_body(self) -> bytes | None:
        """The request body, or ``None`` after answering an error."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length > self.balancer.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the limit of "
                f"{self.balancer.max_body_bytes} bytes",
            )
            return None
        if length <= 0:
            self._error(400, "missing request body")
            return None
        return self.rfile.read(length)

    def _handle_advise(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            request = json.loads(body)
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(request, dict):
            self._error(400, "request body must be a JSON object")
            return
        fingerprint = routing_fingerprint(request)
        if fingerprint is None:
            self._error(
                400,
                "request must carry either 'suite' (a suite entry name or "
                "index) or 'matrix_market' (file contents)",
            )
            return

        supervisor = self.balancer.supervisor
        n = len(supervisor.slots)
        shard = shard_for(fingerprint, n)
        for attempt in range(n):
            slot = supervisor.slots[(shard + attempt) % n]
            target = slot.route_target()
            if target is None:
                continue
            try:
                status, payload = self._proxy(target, body)
            except (OSError, http.client.HTTPException):
                # Transport failure: the worker died mid-request (or its
                # socket is gone).  Mark the slot down so the monitor's
                # restart owns it, and replay on the next shard — advise
                # is idempotent, so the retry is always safe.
                slot.mark_down()
                self.balancer.routes.bump("retried")
                continue
            self.balancer.routes.bump("routed")
            self.balancer.bus.emit(
                "request_routed",
                shard=shard,
                worker_id=slot.index,
                attempt=attempt,
            )
            headers = (
                {"Retry-After": str(RETRY_AFTER_S)} if status == 503 else None
            )
            if status >= 400:
                # Error relays close the connection, same as the worker's
                # own error path, to keep keep-alive framing simple.
                self.close_connection = True
            self._send_json_bytes(status, payload, headers)
            return
        self.balancer.routes.bump("unroutable")
        self._error(
            503,
            "no fleet worker is available; retry later",
            headers={"Retry-After": str(RETRY_AFTER_S)},
        )

    def _send_json_bytes(
        self, status: int, body: bytes, headers: dict | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _proxy(self, base_url: str, body: bytes) -> tuple[int, bytes]:
        """One worker round trip; returns (status, response body)."""
        host_port = base_url.removeprefix("http://")
        host, port = host_port.rsplit(":", 1)
        conn = http.client.HTTPConnection(
            host, int(port), timeout=self.balancer.proxy_timeout_s
        )
        try:
            conn.request(
                "POST",
                "/advise",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()


def create_balancer(
    supervisor: FleetSupervisor,
    host: str = "127.0.0.1",
    port: int = 8077,
    **kwargs,
) -> FleetBalancer:
    """A ready-to-run balancer; ``port=0`` binds an ephemeral port."""
    return FleetBalancer(
        (host, port), BalancerRequestHandler, supervisor, **kwargs
    )
