"""Fleet supervision: spawn, crash-restart, warm handoff, drain.

The :class:`FleetSupervisor` owns N worker slots.  Each slot holds the
*current* :class:`~repro.fleet.worker.WorkerProcess` for one shard; the
balancer routes through the slot, so swapping the process behind a slot
(restart, warm handoff) is invisible to clients beyond a transient retry.

Guarantees:

* **crash-restart with backoff** — a monitor thread notices a dead worker
  and respawns it after a seeded, decorrelated-jitter backoff (growing
  from 0.5 s, capped at 5 s; see :meth:`FleetSupervisor._next_backoff`),
  emitting ``worker_restart``; the slot routes as *down* meanwhile, so
  the balancer retries its shard on the next worker.  Jitter keeps N
  workers felled by one cause (a shared-dependency hiccup, an OOM sweep)
  from respawning in lockstep and stampeding the machine; seeding it
  (``FleetConfig.restart_seed``) keeps chaos drills reproducible;
* **warm-replica handoff** — :meth:`FleetSupervisor.replace_worker` spawns
  the replacement first, waits for its ``/readyz`` 200, atomically swaps
  it into the slot, and only then SIGTERMs the predecessor (which finishes
  its in-flight requests under PR 5's drain machinery).  At no point is
  the shard unowned;
* **graceful fleet shutdown** — :meth:`FleetSupervisor.shutdown` stops the
  monitor, SIGTERMs every worker concurrently, waits out their drains and
  escalates to SIGKILL only past the deadline
  (``fleet_drain_begin`` / ``fleet_drain_end`` events).

Every lifecycle step is emitted on the supervisor's
:class:`~repro.engine.events.EventBus` (``worker_spawn``, ``worker_ready``,
``worker_restart``, ``fleet_drain_begin/end``), so a fleet run's exact
history lands in the same JSONL run logs the sweep engine uses.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..engine.events import EventBus
from .worker import DEFAULT_READY_TIMEOUT_S, WorkerProcess

__all__ = ["FleetConfig", "WorkerSlot", "FleetSupervisor"]

logger = logging.getLogger(__name__)

#: Restart backoff floor (also the first attempt's lower bound).
RESTART_BACKOFF_S = 0.5
#: Ceiling on the restart backoff.
MAX_BACKOFF_S = 5.0
#: Monitor poll interval.
MONITOR_POLL_S = 0.2


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet spawn needs (one object, CLI-mappable)."""

    workers: int = 2
    cache_dir: str | Path = ".repro_cache"
    host: str = "127.0.0.1"
    #: Per-worker admission bound (None = the server default of 8).
    max_inflight: int | None = None
    #: Per-request deadline forwarded to every worker.
    request_timeout_s: float | None = None
    #: Per-worker SIGTERM drain budget.
    drain_timeout_s: float | None = None
    #: Chaos plan spec (inline JSON or path) forwarded to every worker.
    fault_plan: str | None = None
    #: How long one worker may take from spawn to ready.
    ready_timeout_s: float = DEFAULT_READY_TIMEOUT_S
    #: Whole-fleet drain budget on shutdown.
    fleet_drain_timeout_s: float = 30.0
    #: Seed for the per-slot restart-backoff jitter: equal seeds replay
    #: the exact same backoff sequence (reproducible chaos drills).
    restart_seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass
class WorkerSlot:
    """One shard's mount point: the current process plus routing state."""

    index: int
    worker: WorkerProcess | None = None
    ready: bool = False
    restarts: int = 0
    #: Guards ``worker``/``ready``/``restarts`` — the balancer reads them
    #: from request threads while the monitor swaps processes.
    lock: threading.Lock = field(default_factory=threading.Lock)

    def snapshot(self) -> dict:
        with self.lock:
            worker = self.worker
            return {
                "worker_id": self.index,
                "ready": self.ready,
                "restarts": self.restarts,
                "pid": worker.pid if worker is not None else None,
                "port": worker.port if worker is not None else None,
            }

    def route_target(self) -> str | None:
        """The worker's base URL if the slot is routable, else ``None``."""
        with self.lock:
            if self.ready and self.worker is not None:
                return self.worker.base_url
            return None

    def mark_down(self) -> None:
        """Balancer feedback: a proxied request hit a dead socket."""
        with self.lock:
            self.ready = False


class FleetSupervisor:
    """Owns the worker slots; keeps every shard served."""

    def __init__(
        self, config: FleetConfig, *, bus: EventBus | None = None
    ) -> None:
        self.config = config
        self.bus = bus if bus is not None else EventBus()
        self.slots = tuple(
            WorkerSlot(index=i) for i in range(config.workers)
        )
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        # Slots currently being restarted/replaced, so the monitor never
        # doubles up on one slot (guarded by _restart_lock).
        self._restart_lock = threading.Lock()
        self._restarting: set[int] = set()
        # Per-slot seeded RNGs for the backoff jitter: distinct streams
        # per slot (so co-crashing workers draw *different* delays) that
        # replay identically for a given FleetConfig.restart_seed.
        self._backoff_rng = {
            i: random.Random(f"{config.restart_seed}:{i}")
            for i in range(config.workers)
        }
        self._prev_backoff: dict[int, float] = {}

    # ------------------------------ spawn -------------------------------- #
    def _new_worker(self, index: int) -> WorkerProcess:
        cfg = self.config
        return WorkerProcess(
            index,
            cache_dir=cfg.cache_dir,
            profile_dir=Path(cfg.cache_dir),
            host=cfg.host,
            max_inflight=cfg.max_inflight,
            request_timeout_s=cfg.request_timeout_s,
            drain_timeout_s=cfg.drain_timeout_s,
            fault_plan=cfg.fault_plan,
        )

    def _spawn_into_slot(self, slot: WorkerSlot) -> None:
        """Spawn a fresh worker, wait for readiness, mount it."""
        t0 = time.monotonic()
        worker = self._new_worker(slot.index)
        port = worker.spawn()
        self.bus.emit(
            "worker_spawn",
            worker_id=slot.index,
            pid=worker.pid,
            port=port,
        )
        if not worker.wait_ready(self.config.ready_timeout_s):
            worker.stop(timeout_s=2.0)
            raise RuntimeError(
                f"worker {slot.index} failed to report ready within "
                f"{self.config.ready_timeout_s:.0f}s"
            )
        with slot.lock:
            slot.worker = worker
            slot.ready = True
        self.bus.emit(
            "worker_ready",
            worker_id=slot.index,
            port=port,
            elapsed_s=round(time.monotonic() - t0, 3),
        )

    def start(self) -> None:
        """Spawn every worker (concurrently), then start the monitor."""
        errors: list[BaseException] = []

        def spawn_one(slot: WorkerSlot) -> None:
            try:
                self._spawn_into_slot(slot)
            except BaseException as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [
            threading.Thread(target=spawn_one, args=(slot,), daemon=True)
            for slot in self.slots
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            self.shutdown()
            raise RuntimeError(
                f"fleet startup failed: {errors[0]}"
            ) from errors[0]
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------ monitor ------------------------------ #
    def _monitor_loop(self) -> None:
        while not self._stop.wait(MONITOR_POLL_S):
            for slot in self.slots:
                with slot.lock:
                    worker = slot.worker
                crashed = worker is not None and worker.poll() is not None
                if crashed and not self._stop.is_set():
                    self._begin_restart(slot, worker)

    def _begin_restart(
        self, slot: WorkerSlot, dead: WorkerProcess
    ) -> None:
        with self._restart_lock:
            if slot.index in self._restarting:
                return
            self._restarting.add(slot.index)
        with slot.lock:
            if slot.worker is not dead:  # already swapped by a handoff
                with self._restart_lock:
                    self._restarting.discard(slot.index)
                return
            slot.ready = False
            slot.restarts += 1
            restarts = slot.restarts
        rc = dead.poll()
        dead.close()
        backoff = self._next_backoff(slot.index)
        self.bus.emit(
            "worker_restart",
            worker_id=slot.index,
            restarts=restarts,
            backoff_s=round(backoff, 3),
            reason=f"exit status {rc}",
        )
        thread = threading.Thread(
            target=self._restart_after,
            args=(slot, backoff),
            name=f"fleet-restart-{slot.index}",
            daemon=True,
        )
        thread.start()

    def _next_backoff(self, index: int) -> float:
        """The slot's next restart delay: decorrelated jitter.

        ``min(cap, uniform(base, prev * 3))`` — the delay *distribution*
        grows with consecutive failures like exponential backoff, but two
        slots killed by the same cause draw from their own seeded streams
        and come back spread out instead of in a thundering herd.  A
        successful spawn resets the slot's growth to the base.
        """
        prev = self._prev_backoff.get(index, RESTART_BACKOFF_S)
        rng = self._backoff_rng[index]
        backoff = min(
            MAX_BACKOFF_S,
            rng.uniform(RESTART_BACKOFF_S, max(prev * 3.0, RESTART_BACKOFF_S)),
        )
        self._prev_backoff[index] = backoff
        return backoff

    def _restart_after(self, slot: WorkerSlot, backoff_s: float) -> None:
        try:
            if self._stop.wait(backoff_s):
                return
            try:
                self._spawn_into_slot(slot)
                # The slot recovered: the next (unrelated) crash starts
                # its jittered backoff from the base again.
                self._prev_backoff[slot.index] = RESTART_BACKOFF_S
            except Exception as exc:  # noqa: BLE001 - retried by monitor
                # Leave the slot down; the next monitor pass sees the dead
                # (or never-mounted) worker and schedules another attempt
                # with a longer backoff.
                logger.warning(
                    "restart of worker %d failed (%s: %s); will retry",
                    slot.index, type(exc).__name__, exc,
                )
        finally:
            with self._restart_lock:
                self._restarting.discard(slot.index)

    # --------------------------- warm handoff ---------------------------- #
    def replace_worker(self, index: int) -> None:
        """Warm-replica handoff: ready replacement first, then drain.

        The shard keeps a live owner throughout: the predecessor serves
        until the replacement's ``/readyz`` reports 200 and the slot swap
        has happened; only then does it get SIGTERM and drain.
        """
        slot = self.slots[index]
        with self._restart_lock:
            if index in self._restarting:
                raise RuntimeError(
                    f"worker {index} is already being restarted"
                )
            self._restarting.add(index)
        try:
            replacement = self._new_worker(index)
            port = replacement.spawn()
            self.bus.emit(
                "worker_spawn",
                worker_id=index,
                pid=replacement.pid,
                port=port,
            )
            t0 = time.monotonic()
            if not replacement.wait_ready(self.config.ready_timeout_s):
                replacement.stop(timeout_s=2.0)
                raise RuntimeError(
                    f"replacement for worker {index} never became ready"
                )
            with slot.lock:
                old = slot.worker
                slot.worker = replacement
                slot.ready = True
            self.bus.emit(
                "worker_ready",
                worker_id=index,
                port=port,
                elapsed_s=round(time.monotonic() - t0, 3),
            )
            if old is not None:
                old.stop(
                    timeout_s=self.config.fleet_drain_timeout_s
                )
        finally:
            with self._restart_lock:
                self._restarting.discard(index)

    def rolling_restart(self) -> None:
        """Replace every worker, one warm handoff at a time."""
        for slot in self.slots:
            self.replace_worker(slot.index)

    # ------------------------------ chaos -------------------------------- #
    def kill_worker(self, index: int) -> int | None:
        """SIGKILL one worker (chaos drills); the monitor restarts it."""
        slot = self.slots[index]
        with slot.lock:
            worker = slot.worker
        if worker is None:
            return None
        worker.kill()
        return worker.wait(5.0)

    # ----------------------------- shutdown ------------------------------ #
    def shutdown(self) -> bool:
        """Drain and stop the whole fleet; True when every exit was clean."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        self.bus.emit("fleet_drain_begin", workers=len(self.slots))
        t0 = time.monotonic()
        workers: list[WorkerProcess] = []
        for slot in self.slots:
            with slot.lock:
                slot.ready = False
                if slot.worker is not None:
                    workers.append(slot.worker)
        for worker in workers:
            worker.terminate()
        deadline = t0 + self.config.fleet_drain_timeout_s
        clean = True
        for worker in workers:
            rc = worker.wait(max(0.0, deadline - time.monotonic()))
            if rc is None:
                worker.kill()
                worker.wait(5.0)
                clean = False
            elif rc != 0:
                clean = False
            worker.close()
        self.bus.emit(
            "fleet_drain_end",
            workers=len(workers),
            clean=clean,
            elapsed_s=round(time.monotonic() - t0, 3),
        )
        return clean

    # ------------------------------ status ------------------------------- #
    def snapshot(self) -> list[dict]:
        return [slot.snapshot() for slot in self.slots]

    def all_ready(self) -> bool:
        return all(
            slot.route_target() is not None for slot in self.slots
        )
