"""repro.fleet — a multi-process advisor fleet plus its load harness.

The fleet composes the hardened single-node server from :mod:`repro.serve`
N times behind a content-sharded balancer:

* :mod:`repro.fleet.worker` — one supervised ``repro serve`` subprocess
  (ephemeral port, private cache partition, shared profile store,
  ``/readyz``-gated warmup);
* :mod:`repro.fleet.supervisor` — slot ownership, crash-restart with
  backoff, warm-replica handoff, graceful whole-fleet drain;
* :mod:`repro.fleet.balancer` — fingerprint-sharded routing with
  retry-on-next-worker and fan-in ``/stats`` aggregation;
* :mod:`repro.fleet.replay` / :mod:`repro.fleet.loadgen` — deterministic
  seeded traffic plans (steady / skew / flood / chaos) and the
  closed-loop generator that replays them over real sockets.

CLI entry points: ``python -m repro fleet --workers N`` and
``python -m repro loadtest --mix steady --seed 1337``.  Architecture
notes live in ``docs/serving.md``.
"""

from .balancer import (
    BalancerRequestHandler,
    FleetBalancer,
    create_balancer,
    merge_stats,
    routing_fingerprint,
    shard_for,
)
from .loadgen import percentile, post_advise, run_load, warm_fleet
from .replay import (
    CHAOS_FAULT_PLAN,
    DEFAULT_MATRICES,
    MIXES,
    ReplayPlan,
    RequestSpec,
    build_plan,
)
from .supervisor import FleetConfig, FleetSupervisor, WorkerSlot
from .worker import WorkerProcess, probe_ready, wait_until_ready

__all__ = [
    "BalancerRequestHandler",
    "FleetBalancer",
    "create_balancer",
    "merge_stats",
    "routing_fingerprint",
    "shard_for",
    "percentile",
    "post_advise",
    "run_load",
    "warm_fleet",
    "CHAOS_FAULT_PLAN",
    "DEFAULT_MATRICES",
    "MIXES",
    "ReplayPlan",
    "RequestSpec",
    "build_plan",
    "FleetConfig",
    "FleetSupervisor",
    "WorkerSlot",
    "WorkerProcess",
    "probe_ready",
    "wait_until_ready",
]
