"""Deterministic, seeded fault injection for chaos testing.

A :class:`FaultPlan` is a reproducible script of failures: a seeded RNG
plus per-site rules that fire on an exact hit count (``nth``) or with a
probability drawn from the plan's own RNG.  Production code calls
:func:`fault_point` at the places worth breaking — the atomic-write
rename window, the advisor cache, the cold advise evaluation, the sweep
worker, the HTTP handler — and with no plan installed each call is a
single module-global ``None`` check, nothing more.

Four actions exist:

``raise``
    Raise an exception of a configurable class (default
    :class:`FaultInjectedError`) at the site.
``delay``
    Sleep ``delay_s`` seconds before continuing (for shedding/deadline
    tests).
``corrupt``
    Deterministically mangle the data passing through the site (the
    JSON text of a cache write, the text of a cache read).
``kill``
    ``SIGKILL`` the calling process at the site — a real power-loss /
    OOM-killer crash that no ``except`` or ``finally`` can soften.  The
    durability torture harness (:mod:`repro.durability.torture`) runs
    cache writes in forked children under ``kill`` rules and asserts the
    survivors never load corrupt data.

Every site name must be registered in :data:`SITE_CATALOG`; an unknown
site in a plan is a :class:`ValueError` at plan-build time, and the
``fault-site`` lint rule (:mod:`repro.analysis`) checks the call sites
statically against the same catalog.

Plans install three ways, all equivalent:

* API — :func:`install_plan` / the :func:`installed` context manager;
* environment — ``REPRO_FAULT_PLAN`` holding the plan JSON (picked up at
  import time, so forked/spawned workers inherit the plan too);
* CLI — ``--fault-plan PATH|JSON`` on ``serve`` / ``advise`` / sweeps.

Each injection is recorded in ``plan.injections`` (``site``, ``action``,
``hit``, ``rule``) and forwarded to ``plan.on_inject`` when set — the
advisor service and the sweep engine wire that callback to their event
bus as ``fault_injected`` events, so a chaos run's exact fault sequence
lands in the JSONL run log and is byte-reproducible from the seed.
"""

from __future__ import annotations

import json
import logging
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = [
    "SITE_CATALOG",
    "ACTIONS",
    "FaultInjectedError",
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "install_plan",
    "uninstall_plan",
    "current_plan",
    "installed",
    "install_plan_from_env",
    "load_plan_spec",
    "FAULT_PLAN_ENV",
]

logger = logging.getLogger(__name__)

#: Environment variable holding a plan's JSON for subprocess chaos runs.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every site a :func:`fault_point` call may name, with what breaking it
#: simulates.  The ``fault-site`` lint rule keeps call sites honest.
SITE_CATALOG: dict[str, str] = {
    "ioutils.atomic_write_json.data": (
        "the serialized JSON text about to be written (corruptible)"
    ),
    "ioutils.atomic_write_json.replace": (
        "the window between writing the tmp file and os.replace — a "
        "raise here is a mid-write crash"
    ),
    "ioutils.append_jsonl.write": (
        "the JSONL append about to hit the log (text passes through, "
        "corruptible; a kill here is a torn append)"
    ),
    "serve.store.save": "saving one advisor cache entry",
    "serve.store.load": (
        "reading one advisor cache entry (text passes through, "
        "corruptible)"
    ),
    "serve.service.profile": "machine-profile lookup/calibration",
    "serve.service.advise": (
        "the cold advise evaluation (cache-miss inner path); raises "
        "here feed the circuit breaker"
    ),
    "engine.pool.task": "one shard task execution in a sweep worker",
    "serve.server.request": "HTTP POST handling, after admission",
}

ACTIONS = ("raise", "delay", "corrupt", "kill")

_ERROR_CLASSES: dict[str, type[Exception]] = {
    "OSError": OSError,
    "IOError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "TimeoutError": TimeoutError,
    "ConnectionError": ConnectionError,
}


class FaultInjectedError(Exception):
    """Raised at a fault point by an installed :class:`FaultPlan`.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    faults model infrastructure failure, and must exercise the unexpected-
    exception paths (catch-alls, retries, the circuit breaker), not the
    domain-error ones.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scripted failure: where, what, and when it triggers.

    Triggers: ``nth`` fires on exactly the nth hit of the site (1-based);
    ``probability`` fires per-hit from the plan's seeded RNG; with
    neither, the rule fires on every hit.  ``times`` caps the total
    number of injections either way.
    """

    site: str
    action: str
    nth: int | None = None
    probability: float | None = None
    times: int | None = None
    delay_s: float = 0.01
    error: str = "FaultInjected"
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.site not in SITE_CATALOG:
            raise ValueError(
                f"unknown fault site {self.site!r}; registered sites: "
                f"{', '.join(sorted(SITE_CATALOG))}"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; one of {ACTIONS}"
            )
        if self.nth is not None and self.probability is not None:
            raise ValueError("a rule takes nth or probability, not both")
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"nth is 1-based, got {self.nth}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.error != "FaultInjected" and self.error not in _ERROR_CLASSES:
            raise ValueError(
                f"unknown error class {self.error!r}; one of "
                f"{sorted(_ERROR_CLASSES)} or 'FaultInjected'"
            )

    def exception(self) -> Exception:
        cls = _ERROR_CLASSES.get(self.error, FaultInjectedError)
        return cls(f"{self.message} [site={self.site}]")

    def to_payload(self) -> dict:
        payload: dict = {"site": self.site, "action": self.action}
        if self.nth is not None:
            payload["nth"] = self.nth
        if self.probability is not None:
            payload["probability"] = self.probability
        if self.times is not None:
            payload["times"] = self.times
        if self.action == "delay":
            payload["delay_s"] = self.delay_s
        if self.action == "raise":
            payload["error"] = self.error
            payload["message"] = self.message
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultRule":
        known = {
            "site", "action", "nth", "probability", "times", "delay_s",
            "error", "message",
        }
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown fault-rule key(s): {sorted(extra)}")
        return cls(**payload)


def _corrupt(data):
    """Deterministically mangle the text/bytes flowing through a site."""
    if data is None:
        return None
    if isinstance(data, bytes):
        return data[: max(1, len(data) // 2)] + b"\x00corrupt"
    if isinstance(data, str):
        return data[: max(1, len(data) // 2)] + "\x00corrupt"
    return data


class FaultPlan:
    """A seeded, reproducible script of injected faults.

    Thread-safe: hit counters, the RNG, and the injection record are all
    guarded by one lock; the actions themselves (sleep, raise) run
    outside it so a delay at one site never blocks another.
    """

    def __init__(
        self, rules: tuple[FaultRule, ...] | list | None = None, *, seed: int = 0
    ) -> None:
        self.rules = tuple(rules or ())
        self.seed = seed
        self.on_inject: Callable[[dict], None] | None = None
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self.injections: list[dict] = []

    # ------------------------------ apply ------------------------------ #
    def apply(self, site: str, data=None):
        """Run ``site``'s triggered rules; returns (possibly mangled) data."""
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            triggered: list[tuple[FaultRule, dict]] = []
            for idx, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.times is not None and self._fired.get(idx, 0) >= rule.times:
                    continue
                if rule.nth is not None:
                    fire = hit == rule.nth
                elif rule.probability is not None:
                    fire = self._rng.random() < rule.probability
                else:
                    fire = True
                if not fire:
                    continue
                self._fired[idx] = self._fired.get(idx, 0) + 1
                event = {
                    "site": site, "action": rule.action, "hit": hit, "rule": idx,
                }
                self.injections.append(event)
                triggered.append((rule, event))
        for rule, event in triggered:
            callback = self.on_inject
            if callback is not None:
                callback(event)
            logger.warning(
                "fault injected: %s at %s (hit %d)", rule.action, site, hit
            )
            if rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "corrupt":
                data = _corrupt(data)
            elif rule.action == "kill":
                # A hard crash at the site: SIGKILL cannot be caught, so
                # everything after this point — the rename, the cleanup,
                # the bookkeeping — simply never happens, exactly like a
                # power loss.
                os.kill(os.getpid(), signal.SIGKILL)
            elif rule.action == "raise":
                raise rule.exception()
        return data

    def hit_count(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    # --------------------------- (de)serialize -------------------------- #
    def to_payload(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [r.to_payload() for r in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ValueError("a fault plan must be a JSON object")
        known = {"seed", "rules"}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown fault-plan key(s): {sorted(extra)}")
        rules = [FaultRule.from_payload(r) for r in payload.get("rules", [])]
        return cls(rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)


# --------------------------------------------------------------------------- #
# Global installation
# --------------------------------------------------------------------------- #

_PLAN: FaultPlan | None = None


def fault_point(site: str, data=None):
    """The production-side hook: a no-op unless a plan is installed.

    Returns ``data`` (possibly corrupted by a ``corrupt`` rule), so write
    paths can thread their payload through: ``text = fault_point(site, text)``.
    """
    plan = _PLAN
    if plan is None:
        return data
    return plan.apply(site, data)


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` globally for this process; returns it."""
    global _PLAN
    _PLAN = plan
    return plan


def uninstall_plan() -> None:
    global _PLAN
    _PLAN = None


def current_plan() -> FaultPlan | None:
    return _PLAN


@contextmanager
def installed(plan: FaultPlan):
    """Install ``plan`` for the duration of a ``with`` block (tests)."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def load_plan_spec(spec: str) -> FaultPlan:
    """A plan from inline JSON (leading ``{``) or a JSON file path."""
    text = spec if spec.lstrip().startswith("{") else Path(spec).read_text()
    return FaultPlan.from_json(text)


def install_plan_from_env(environ=os.environ) -> FaultPlan | None:
    """Install the ``REPRO_FAULT_PLAN`` plan, if the variable is set.

    Raises :class:`ValueError` on a malformed plan — an explicitly
    requested chaos run must never silently degrade to a fault-free one.
    """
    text = environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return install_plan(FaultPlan.from_json(text))


def _install_from_env_tolerant() -> None:
    """Import-time pickup of ``REPRO_FAULT_PLAN`` (worker inheritance).

    Tolerant: a malformed plan at import time logs a warning instead of
    making ``import repro`` impossible; the strict path is
    :func:`install_plan_from_env` (used by the CLI).
    """
    try:
        install_plan_from_env()
    except ValueError as exc:
        logger.warning("ignoring malformed %s: %s", FAULT_PLAN_ENV, exc)


_install_from_env_tolerant()
