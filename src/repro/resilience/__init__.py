"""repro.resilience — deterministic fault injection and serving guards.

The advisor only earns its keep in production if it stays dependable
under load and partial failure.  This package supplies both halves of
that argument:

* :mod:`repro.resilience.faults` — a seeded, reproducible
  :class:`FaultPlan` driving :func:`fault_point` hooks threaded through
  the cache writers, the advisor service, the sweep workers and the HTTP
  handler.  No plan installed ⇒ every hook is a single ``None`` check.
* :mod:`repro.resilience.guard` — :class:`Deadline` (per-request
  monotonic budgets, HTTP 504) and :class:`CircuitBreaker`
  (closed → open → half-open per precision, backing the server's
  degraded mode and 503s).
* :mod:`repro.resilience.smoke` — the CI mixed-traffic chaos smoke:
  concurrent advise traffic against a real server subprocess with
  injected store faults, ending in a SIGTERM drain.

See ``docs/resilience.md`` for the plan JSON schema, the site catalog
and the chaos runbook.
"""

from .faults import (
    FAULT_PLAN_ENV,
    SITE_CATALOG,
    FaultInjectedError,
    FaultPlan,
    FaultRule,
    current_plan,
    fault_point,
    install_plan,
    install_plan_from_env,
    installed,
    load_plan_spec,
    uninstall_plan,
)
from .guard import BreakerConfig, CircuitBreaker, Deadline

__all__ = [
    "FAULT_PLAN_ENV",
    "SITE_CATALOG",
    "FaultInjectedError",
    "FaultPlan",
    "FaultRule",
    "fault_point",
    "install_plan",
    "uninstall_plan",
    "current_plan",
    "installed",
    "install_plan_from_env",
    "load_plan_spec",
    "BreakerConfig",
    "CircuitBreaker",
    "Deadline",
]
