"""Deadlines and circuit breaking for the advisor's serving path.

:class:`Deadline` is a monotonic-clock budget created once per request
(``service.advise(deadline=...)``) and checked at phase boundaries of the
evaluation, so an over-budget request fails fast with
:class:`~repro.errors.DeadlineExceededError` (HTTP 504) instead of
holding a handler thread for the full evaluation.

:class:`CircuitBreaker` protects the expensive cold-advise path: after
``failure_threshold`` *consecutive* cold failures it opens, cold requests
are refused immediately (:class:`~repro.errors.ServiceUnavailableError`,
HTTP 503 — or a ``"degraded": true`` answer straight from the cache when
one exists), and after ``reset_timeout_s`` a single half-open probe is
let through: success closes the breaker, failure re-opens it.  The
advisor keeps one breaker per precision, because each precision has its
own calibrated profile and failure domain.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import DeadlineExceededError

__all__ = [
    "Deadline",
    "BreakerConfig",
    "CircuitBreaker",
]


class Deadline:
    """A monotonic time budget, checked at phase boundaries.

    Immutable after construction; sharing one across threads is safe.
    """

    def __init__(
        self,
        timeout_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self._clock = clock
        self._expires_at = clock() + timeout_s

    @classmethod
    def after(
        cls, timeout_s: float, *, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(timeout_s, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            where = f" at {label}" if label else ""
            raise DeadlineExceededError(
                f"deadline of {self.timeout_s:.3f}s exceeded{where}"
            )


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    reset_timeout_s: float = 30.0
    clock: Callable[[], float] = time.monotonic


class CircuitBreaker:
    """Closed → open → half-open → closed, driven by consecutive failures.

    ``allow()`` gates the protected call; ``record_success`` /
    ``record_failure`` report its outcome and return the transition they
    caused (``"open"`` / ``"close"`` / ``None``) so the caller can emit
    breaker events without the breaker knowing about event buses.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._maybe_half_open()

    def _maybe_half_open(self) -> str:
        """Current state, observing the reset timeout (lock held)."""
        if (
            self._state == self.OPEN
            and self.config.clock() - self._opened_at
            >= self.config.reset_timeout_s
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a (cold) call proceed?  Half-open admits a single probe."""
        with self._lock:
            state = self._maybe_half_open()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._state == self.OPEN:
                # Claim the probe: a second caller sees HALF_OPEN with
                # _state already HALF_OPEN and is refused.
                self._state = self.HALF_OPEN
                return True
            return False

    def record_success(self) -> str | None:
        with self._lock:
            self._failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED
                return "close"
            return None

    def record_failure(self) -> str | None:
        with self._lock:
            self._failures += 1
            tripped = (
                self._state == self.HALF_OPEN
                or (
                    self._state == self.CLOSED
                    and self._failures >= self.config.failure_threshold
                )
            )
            if tripped:
                self._state = self.OPEN
                self._opened_at = self.config.clock()
                return "open"
            return None

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def snapshot(self) -> dict:
        """State for ``GET /stats``."""
        with self._lock:
            return {
                "state": self._maybe_half_open(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.config.failure_threshold,
                "reset_timeout_s": self.config.reset_timeout_s,
            }
