"""Mixed-traffic chaos smoke for the advisor server (CI's ``chaos`` step).

Launches a real ``repro serve`` subprocess on an ephemeral port with an
injected store-fault plan, hammers it with concurrent ``/advise`` clients
for ``--duration`` seconds, then sends SIGTERM and verifies the graceful
shutdown contract end to end:

* every client response is one of the allowed statuses (200 success,
  503 shed/degraded, 504 deadline) — never a dropped connection or an
  HTML error page;
* at least one request succeeds despite the injected faults (cache saves
  are best-effort, so store faults must not fail requests);
* after SIGTERM the process drains and exits 0 within the drain budget;
* every client thread joins — no hung threads.

Run it directly::

    python -m repro.resilience.smoke --duration 30

Exit status 0 on success, 1 with a diagnosis on the first violated check.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

#: Statuses a hardened server may legitimately answer under chaos.
ALLOWED_STATUSES = frozenset({200, 503, 504})

#: Store-level faults only: request handling must survive all of these
#: (saves are best-effort; corrupt/missing entries are recomputed).
SMOKE_FAULT_PLAN = {
    "seed": 1337,
    "rules": [
        {"site": "serve.store.save", "action": "raise", "probability": 0.3},
        {
            "site": "ioutils.atomic_write_json.data",
            "action": "corrupt",
            "probability": 0.2,
        },
        {"site": "serve.store.load", "action": "delay", "probability": 0.2,
         "delay_s": 0.02},
    ],
}

#: Cheapest suite matrices on a small container (dense, pwtk, stomach).
SMOKE_MATRICES = ("dense", "pwtk", "stomach")

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


class ClientStats:
    """Thread-safe tally of what the traffic generators observed."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.statuses: dict[int, int] = {}
        self.violations: list[str] = []

    def record(self, status: int) -> None:
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status not in ALLOWED_STATUSES:
                self.violations.append(f"unexpected HTTP status {status}")

    def record_error(self, message: str) -> None:
        with self.lock:
            self.violations.append(message)


def _post_advise(base_url: str, suite: str, timeout: float) -> int:
    body = json.dumps({"suite": suite, "top": 1}).encode()
    req = urllib.request.Request(
        f"{base_url}/advise",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            resp.read()
            return resp.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def _client_loop(
    base_url: str, suite: str, stop: threading.Event, stats: ClientStats
) -> None:
    while not stop.is_set():
        try:
            stats.record(_post_advise(base_url, suite, timeout=30))
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            if stop.is_set():
                return  # shutdown race: the server went away on purpose
            stats.record_error(f"request failed: {type(exc).__name__}: {exc}")
            return
        time.sleep(0.05)


def _wait_for_port(proc: subprocess.Popen, deadline_s: float) -> str:
    """The server's base URL, parsed from its announcement line."""
    t0 = time.monotonic()
    assert proc.stdout is not None
    while time.monotonic() - t0 < deadline_s:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                "server exited before announcing its port "
                f"(rc={proc.poll()})"
            )
        match = _LISTEN_RE.search(line)
        if match:
            return f"http://{match.group(1)}:{match.group(2)}"
    raise RuntimeError(f"server did not announce a port in {deadline_s:.0f}s")


def run_smoke(
    duration_s: float = 30.0,
    *,
    clients_per_matrix: int = 2,
    startup_timeout_s: float = 120.0,
    drain_timeout_s: float = 30.0,
) -> int:
    """Run the chaos smoke; returns a process exit status (0 = pass)."""
    failures: list[str] = []
    stats = ClientStats()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as cache_dir:
        env = dict(os.environ)
        env["PYTHONUNBUFFERED"] = "1"
        # stderr goes to a file, not a pipe: the server logs every injected
        # fault there, and an undrained pipe would eventually block it.
        stderr_path = os.path.join(cache_dir, "server.stderr")
        stderr_file = open(stderr_path, "w", encoding="utf-8")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", cache_dir,
                "--fault-plan", json.dumps(SMOKE_FAULT_PLAN),
                "--request-timeout", "60",
            ],
            stdout=subprocess.PIPE,
            stderr=stderr_file,
            text=True,
            env=env,
        )
        threads: list[threading.Thread] = []
        stop = threading.Event()
        try:
            base_url = _wait_for_port(proc, startup_timeout_s)
            print(f"smoke: server up at {base_url}", flush=True)
            # Warm the service once so the traffic below exercises both the
            # cold and the cached path (first advise pays calibration).
            first = _post_advise(base_url, SMOKE_MATRICES[0], timeout=180)
            stats.record(first)
            print(f"smoke: first advise -> {first}", flush=True)

            for suite in SMOKE_MATRICES:
                for i in range(clients_per_matrix):
                    t = threading.Thread(
                        target=_client_loop,
                        args=(base_url, suite, stop, stats),
                        name=f"client-{suite}-{i}",
                        daemon=True,
                    )
                    t.start()
                    threads.append(t)
            time.sleep(duration_s)
        except Exception as exc:  # noqa: BLE001 - smoke harness diagnosis
            failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=60)
            hung = [t.name for t in threads if t.is_alive()]
            if hung:
                failures.append(f"hung client thread(s): {hung}")
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=drain_timeout_s)
                except subprocess.TimeoutExpired:
                    failures.append(
                        f"server did not drain within {drain_timeout_s:.0f}s "
                        "of SIGTERM"
                    )
                    proc.kill()
                    proc.wait()
            if proc.returncode != 0:
                failures.append(
                    f"server exited with status {proc.returncode}"
                )
            stderr_file.close()
            with open(stderr_path, encoding="utf-8") as fh:
                stderr_tail = fh.read()[-4000:]

    failures.extend(stats.violations)
    if 200 not in stats.statuses:
        failures.append("no request ever succeeded under injected faults")

    print(f"smoke: statuses {dict(sorted(stats.statuses.items()))}", flush=True)
    if failures:
        print("smoke: FAIL", flush=True)
        for failure in failures:
            print(f"  - {failure}", flush=True)
        if stderr_tail.strip():
            print("--- server stderr tail ---", flush=True)
            print(stderr_tail, flush=True)
        return 1
    print(
        f"smoke: PASS ({sum(stats.statuses.values())} requests, "
        "clean drain)",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.smoke",
        description="mixed-traffic chaos smoke against a live repro serve",
    )
    parser.add_argument(
        "--duration", type=float, default=30.0,
        help="seconds of mixed traffic after warmup (default 30)",
    )
    parser.add_argument(
        "--clients-per-matrix", type=int, default=2,
        help="concurrent client threads per suite matrix (default 2)",
    )
    args = parser.parse_args(argv)
    return run_smoke(
        args.duration, clients_per_matrix=args.clients_per_matrix
    )


if __name__ == "__main__":
    sys.exit(main())
