"""repro.serve — the format-advisor service.

The paper's end product is a *decision*: given a sparse matrix, which
(format, block, implementation) tuple will run SpMV fastest?  This package
wraps that decision in a service surface:

* :mod:`repro.serve.features` — a cheap structural-feature extractor
  (fingerprint, row/column/diagonal fills, bandedness) computed once per
  matrix, sampling large patterns so feature cost stays far below one
  exhaustive model evaluation;
* :mod:`repro.serve.pruning` — feature-driven candidate pruning that cuts
  the ~53-structure tuning space to a handful before any format conversion
  happens;
* :mod:`repro.serve.store` — an atomic, fingerprint-keyed recommendation
  cache under ``.repro_cache/advisor/``, versioned by the machine-profile
  calibration so stale profiles invalidate entries;
* :mod:`repro.serve.service` — the thread-safe :class:`AdvisorService`
  with a concurrent ``advise_many`` batch API;
* :mod:`repro.serve.server` — a stdlib ``http.server`` JSON endpoint
  (``POST /advise``, ``GET /healthz``, ``GET /stats``).

CLI: ``python -m repro advise <matrix.mtx|suite-name>`` and
``python -m repro serve --port N``.
"""

from .features import MatrixFeatures, extract_features, matrix_fingerprint
from .pruning import PruneConfig, PruneDecision, prune_candidates
from .service import AdviseError, AdvisorService, Recommendation
from .store import AdvisorStore

__all__ = [
    "MatrixFeatures",
    "extract_features",
    "matrix_fingerprint",
    "PruneConfig",
    "PruneDecision",
    "prune_candidates",
    "AdvisorService",
    "AdviseError",
    "Recommendation",
    "AdvisorStore",
]
