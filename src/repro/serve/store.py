"""Atomic, fingerprint-keyed persistence of recommendations.

Entries live under ``<cache_dir>/advisor/`` as one JSON file per
``(matrix fingerprint, advise options, profile token)`` triple, written via
tmp-file + ``os.replace`` (the same crash-safe pattern as
:mod:`repro.engine.shards`) so a killed service never leaves a truncated
entry behind.

The *profile token* is a content hash of the calibrated machine profile
(``t_b`` / ``nof`` tables).  Model predictions are a pure function of
(matrix structure, options, profile), so the token versions the cache
against everything that is not in the key already: a re-calibrated or
differently-shaped machine profile — new simulator, changed cost tables,
different machine preset — yields a different token, and every stale entry
is invalidated without any manual schema bookkeeping.  Corrupt entries are
discarded with a warning and simply recomputed.
"""

from __future__ import annotations

import json
import logging
import shutil
from hashlib import sha256
from pathlib import Path

from ..bench.harness import DEFAULT_CACHE_DIR
from ..core.profiling import BlockProfile
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    atomic_write_json,
    remove_stale_tmp_files,
)
from ..resilience.faults import fault_point

__all__ = ["AdvisorStore", "profile_token", "ADVISOR_SCHEMA"]

logger = logging.getLogger(__name__)

#: Bump when the entry layout changes (old entries are then ignored).
ADVISOR_SCHEMA = 1


def profile_token(profile: BlockProfile) -> str:
    """Content hash of a calibrated profile (the cache's version stamp)."""
    payload = {
        "machine": profile.machine_name,
        "precision": profile.precision.value,
        "t_b": sorted(
            (repr(k), round(v, 15)) for k, v in profile.t_b.items()
        ),
        "nof": sorted(
            (repr(k), round(v, 15)) for k, v in profile.nof.items()
        ),
        "latency_cost_s": profile.latency_cost_s,
    }
    return sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


class AdvisorStore:
    """Directory of cached recommendations, one JSON file per key."""

    def __init__(self, cache_dir: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(cache_dir) / "advisor"
        # Collect tmp files orphaned by writers killed mid-save.
        remove_stale_tmp_files(self.root)

    @staticmethod
    def key(fingerprint: str, options_key: str, token: str) -> str:
        digest = sha256(
            f"{fingerprint}|{options_key}|{token}".encode()
        ).hexdigest()[:24]
        return digest

    def path(self, key: str) -> Path:
        return self.root / f"rec_{key}.json"

    def save(
        self,
        key: str,
        payload: dict,
        *,
        fingerprint: str,
        token: str,
    ) -> None:
        fault_point("serve.store.save")
        atomic_write_json(self.path(key), {
            "schema": ADVISOR_SCHEMA,
            "fingerprint": fingerprint,
            "profile_token": token,
            "recommendation": payload,
        })

    def load(self, key: str, *, token: str) -> dict | None:
        """The cached recommendation payload, or ``None`` if absent/stale."""
        path = self.path(key)
        if not path.exists():
            return None
        try:
            entry = json.loads(fault_point("serve.store.load", path.read_text()))
            if entry["schema"] != ADVISOR_SCHEMA:
                raise ValueError("schema mismatch")
            if entry["profile_token"] != token:
                raise ValueError("stale machine profile")
            return entry["recommendation"]
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "discarding advisor cache entry %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)
            return None

    def entries(self) -> list[Path]:
        """Every cached entry file, in deterministic (sorted) order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("rec_*.json"))

    def entry_count(self) -> int:
        return len(self.entries())

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
