"""Atomic, fingerprint-keyed persistence of recommendations.

Entries live under ``<cache_dir>/advisor/`` as one JSON file per
``(matrix fingerprint, advise options, profile token)`` triple, written via
tmp-file + ``os.replace`` (the same crash-safe pattern as
:mod:`repro.engine.shards`) so a killed service never leaves a truncated
entry behind.

The *profile token* is a content hash of the calibrated machine profile
(``t_b`` / ``nof`` tables).  Model predictions are a pure function of
(matrix structure, options, profile), so the token versions the cache
against everything that is not in the key already: a re-calibrated or
differently-shaped machine profile — new simulator, changed cost tables,
different machine preset — yields a different token, and every stale entry
is invalidated without any manual schema bookkeeping.  Corrupt entries are
discarded with a warning and simply recomputed.
"""

from __future__ import annotations

import json
import logging
import shutil
from hashlib import sha256
from pathlib import Path

from ..bench.harness import DEFAULT_CACHE_DIR
from ..core.profiling import BlockProfile
from ..durability.report import quarantine_artifact, report_write_failure
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    CacheWriteError,
    read_envelope,
    remove_stale_tmp_files,
    write_envelope,
)
from ..resilience.faults import fault_point

__all__ = ["AdvisorStore", "profile_token", "ADVISOR_SCHEMA"]

logger = logging.getLogger(__name__)

#: Bump when the entry layout changes (old entries are then ignored).
ADVISOR_SCHEMA = 1


def profile_token(profile: BlockProfile) -> str:
    """Content hash of a calibrated profile (the cache's version stamp)."""
    payload = {
        "machine": profile.machine_name,
        "precision": profile.precision.value,
        "t_b": sorted(
            (repr(k), round(v, 15)) for k, v in profile.t_b.items()
        ),
        "nof": sorted(
            (repr(k), round(v, 15)) for k, v in profile.nof.items()
        ),
        "latency_cost_s": profile.latency_cost_s,
    }
    return sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()[:16]


class AdvisorStore:
    """Directory of cached recommendations, one JSON file per key."""

    def __init__(self, cache_dir: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.cache_root = Path(cache_dir)
        self.root = self.cache_root / "advisor"
        # Collect tmp files orphaned by writers killed mid-save.
        remove_stale_tmp_files(self.root)

    @staticmethod
    def key(fingerprint: str, options_key: str, token: str) -> str:
        digest = sha256(
            f"{fingerprint}|{options_key}|{token}".encode()
        ).hexdigest()[:24]
        return digest

    def path(self, key: str) -> Path:
        return self.root / f"rec_{key}.json"

    def save(
        self,
        key: str,
        payload: dict,
        *,
        fingerprint: str,
        token: str,
    ) -> bool:
        """Persist one recommendation; ``False`` when the write failed.

        A full disk degrades to serving uncached (the caller already
        treats the save as best-effort) instead of crashing a worker.
        """
        fault_point("serve.store.save")
        path = self.path(key)
        try:
            write_envelope(path, {
                "schema": ADVISOR_SCHEMA,
                "fingerprint": fingerprint,
                "profile_token": token,
                "recommendation": payload,
            }, schema=ADVISOR_SCHEMA)
        except CacheWriteError as exc:
            report_write_failure(owner="advisor", path=path, error=exc)
            return False
        return True

    def load(self, key: str, *, token: str) -> dict | None:
        """The cached recommendation payload, or ``None`` if absent/stale.

        An entry that fails integrity verification is quarantined; one
        that verifies but carries another schema or profile token is
        stale and simply discarded — both recompute on the next advise.
        """
        path = self.path(key)
        if not path.exists():
            return None
        try:
            entry = read_envelope(path, fault_site="serve.store.load")
        except CACHE_DECODE_ERRORS as exc:
            quarantine_artifact(
                path, self.cache_root, owner="advisor", error=exc
            )
            return None
        try:
            if entry["schema"] != ADVISOR_SCHEMA:
                raise ValueError("schema mismatch")
            if entry["profile_token"] != token:
                raise ValueError("stale machine profile")
            return entry["recommendation"]
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "discarding stale advisor cache entry %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)
            return None

    def entries(self) -> list[Path]:
        """Every cached entry file, in deterministic (sorted) order."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("rec_*.json"))

    def entry_count(self) -> int:
        return len(self.entries())

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)
