"""Cheap structural features of a sparse pattern, computed once per matrix.

Exhaustively evaluating the tuning space converts a matrix into ~53 distinct
blocked structures, each a full :func:`~repro.formats.blockstats` analysis —
seconds per matrix.  The advisor instead extracts a small feature bundle
first and prunes the space with it, so the feature pass must be an order of
magnitude cheaper than the evaluation it replaces.  Two tricks get it there:

* **Probing, not enumerating** — block occupancy ("fill") is measured only
  for 1-D row groups (``r x 1``), 1-D column runs (``1 x c``), a few square
  2-D probes and a few diagonal sizes; the fill of an arbitrary ``r x c``
  block is *estimated* from the 1-D fills via an independence model that the
  2-D probes calibrate (see :meth:`MatrixFeatures.est_rect_fill`).
* **Panel sampling** — on large matrices the probes run on a few
  block-aligned row panels (~240k nonzeros total) instead of the full
  pattern.  Panels start and end on rows divisible by every probed block
  height, so sampling never cuts a block in half and fills stay unbiased
  for structurally homogeneous matrices.

The bundle also carries a content *fingerprint* (SHA-256 over the pattern)
that keys the advisor's recommendation cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from hashlib import sha256

import numpy as np

from ..formats.blockstats import bcsd_block_stats, bcsr_block_stats
from ..formats.coo import COOMatrix
from ..matrices.stats import fill_of, full_block_fraction, run_lengths

__all__ = [
    "MatrixFeatures",
    "extract_features",
    "matrix_fingerprint",
    "FEATURES_VERSION",
]

#: Bump when the feature definitions change (invalidates cached advice).
FEATURES_VERSION = 1

#: Row-group heights / column-run widths / diagonal sizes probed exactly.
#: Non-probed sizes (5, 7) are interpolated between neighbours.
ROW_PROBES = (2, 3, 4, 6, 8)
COL_PROBES = (2, 3, 4, 6, 8)
DIAG_PROBES = (2, 4, 6, 8)

#: 2-D probes that calibrate the 1-D independence estimator.
RECT_PROBES = ((2, 2), (3, 3), (6, 6))

#: Sampling kicks in above twice this many nonzeros.
SAMPLE_TARGET_NNZ = 240_000
#: Number of row panels the sample is spread over.
SAMPLE_PANELS = 3
#: Panel boundaries are multiples of this, a common multiple of every
#: probed block height and diagonal size, so sampling preserves alignment.
SAMPLE_ALIGN = 24


def matrix_fingerprint(coo: COOMatrix) -> str:
    """Content hash of the sparsity pattern (values are irrelevant here:
    every candidate format stores positions, not values)."""
    h = sha256()
    h.update(f"{coo.nrows}x{coo.ncols}:{coo.nnz}".encode())
    h.update(coo.rows.tobytes())
    h.update(coo.cols.tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class MatrixFeatures:
    """The advisor's per-matrix feature bundle."""

    fingerprint: str
    nrows: int
    ncols: int
    nnz: int
    density: float
    row_mean: float
    row_cv: float  # coefficient of variation of row lengths
    empty_row_frac: float
    mean_run_length: float
    bandwidth: int
    bandedness: float  # fraction of nnz within the 1%-of-ncols band
    sampled: bool
    sample_nnz: int
    extract_s: float
    row_fill: dict[int, float]  # r -> fill of the (r x 1) blocking
    col_fill: dict[int, float]  # c -> fill of the (1 x c) blocking
    diag_fill: dict[int, float]  # b -> fill of the size-b diagonal blocking
    diag_full_frac: dict[int, float]  # b -> nnz fraction in full diag blocks
    rect_fill: dict[tuple[int, int], float] = field(default_factory=dict)
    rect_full_frac: dict[tuple[int, int], float] = field(default_factory=dict)

    # ------------------------- fill estimation ------------------------- #
    @staticmethod
    def _interp(table: dict[int, float], size: int) -> float:
        if size <= 1:
            return 1.0
        if size in table:
            return table[size]
        probes = sorted(table)
        lo = max((p for p in probes if p < size), default=None)
        hi = min((p for p in probes if p > size), default=None)
        if lo is None:
            return table[hi]
        if hi is None:
            return table[lo]
        w = (size - lo) / (hi - lo)
        return table[lo] * (1 - w) + table[hi] * w

    def _gamma(self) -> float:
        """Calibration of the independence estimator from the 2-D probes.

        Real structure is row/column correlated, so the product of 1-D
        fills underestimates 2-D fill; gamma is the median correction the
        probes observed (clipped — a wild ratio on a near-empty probe must
        not unprune everything).
        """
        ratios = []
        for (r, c), measured in self.rect_fill.items():
            base = self._interp(self.row_fill, r) * self._interp(self.col_fill, c)
            if base > 1e-9 and measured > 0:
                ratios.append(measured / base)
        if not ratios:
            return 1.0
        return float(np.clip(np.median(ratios), 1.0, 3.0))

    def est_rect_fill(self, r: int, c: int) -> float:
        """Estimated mean occupancy of the aligned ``r x c`` blocking."""
        if (r, c) in self.rect_fill:
            return self.rect_fill[(r, c)]
        row = self._interp(self.row_fill, r)
        col = self._interp(self.col_fill, c)
        if r == 1:
            return col
        if c == 1:
            return row
        est = row * col * self._gamma()
        return float(min(est, row, col))

    def est_diag_fill(self, b: int) -> float:
        return self._interp(self.diag_fill, b)

    def est_diag_full_frac(self, b: int) -> float:
        return self._interp(self.diag_full_frac, b)

    def est_rect_full_frac(self, r: int, c: int) -> float:
        """Estimated nnz fraction sitting in completely filled blocks.

        Full blocks need every cell present, so the probe full-fractions
        decay much faster than fill; interpolate on the probes of the same
        shape family and damp by the fill estimate otherwise.
        """
        if (r, c) in self.rect_full_frac:
            return self.rect_full_frac[(r, c)]
        fill = self.est_rect_fill(r, c)
        # A block of e cells is full with probability ~ fill^e under
        # independence; full-nnz fraction follows the same scaling.
        return float(fill ** (r * c - 1))

    # --------------------------- serialization -------------------------- #
    def to_payload(self) -> dict:
        payload = {
            k: getattr(self, k)
            for k in (
                "fingerprint", "nrows", "ncols", "nnz", "density",
                "row_mean", "row_cv", "empty_row_frac", "mean_run_length",
                "bandwidth", "bandedness", "sampled", "sample_nnz",
                "extract_s",
            )
        }
        payload["row_fill"] = {str(k): v for k, v in self.row_fill.items()}
        payload["col_fill"] = {str(k): v for k, v in self.col_fill.items()}
        payload["diag_fill"] = {str(k): v for k, v in self.diag_fill.items()}
        payload["diag_full_frac"] = {
            str(k): v for k, v in self.diag_full_frac.items()
        }
        payload["rect_fill"] = {
            f"{r}x{c}": v for (r, c), v in self.rect_fill.items()
        }
        payload["rect_full_frac"] = {
            f"{r}x{c}": v for (r, c), v in self.rect_full_frac.items()
        }
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "MatrixFeatures":
        def rect_key(s: str) -> tuple[int, int]:
            r, c = s.split("x")
            return (int(r), int(c))

        kwargs = dict(payload)
        kwargs["row_fill"] = {int(k): v for k, v in payload["row_fill"].items()}
        kwargs["col_fill"] = {int(k): v for k, v in payload["col_fill"].items()}
        kwargs["diag_fill"] = {
            int(k): v for k, v in payload["diag_fill"].items()
        }
        kwargs["diag_full_frac"] = {
            int(k): v for k, v in payload["diag_full_frac"].items()
        }
        kwargs["rect_fill"] = {
            rect_key(k): v for k, v in payload["rect_fill"].items()
        }
        kwargs["rect_full_frac"] = {
            rect_key(k): v for k, v in payload["rect_full_frac"].items()
        }
        return cls(**kwargs)


def _sample_panels(
    coo: COOMatrix,
    *,
    target_nnz: int = SAMPLE_TARGET_NNZ,
    panels: int = SAMPLE_PANELS,
    align: int = SAMPLE_ALIGN,
) -> tuple[COOMatrix, bool]:
    """A block-aligned row-panel sample of ``coo`` (or ``coo`` itself).

    Panels are chosen at spread-out *nonzero* fractions (not row fractions),
    so skewed matrices still contribute sample mass from their dense parts.
    """
    if coo.nnz <= 2 * target_nnz:
        return coo, False
    rows = coo.rows
    per_panel = max(target_nnz // panels, 1)
    intervals: list[tuple[int, int]] = []
    for frac in np.linspace(0.0, 0.9, panels):
        anchor = min(int(frac * coo.nnz), coo.nnz - 1)
        r0 = (int(rows[anchor]) // align) * align
        lo = int(np.searchsorted(rows, r0))
        hi = min(lo + per_panel, coo.nnz)
        if hi < coo.nnz:
            # Extend to the next aligned row boundary so no row group or
            # diagonal segment is truncated mid-block.
            r1 = (int(rows[hi]) // align + 1) * align
            hi = int(np.searchsorted(rows, r1))
        if hi > lo:
            intervals.append((lo, hi))
    # Merge overlaps (panels collide on small or very skewed matrices).
    intervals.sort()
    merged: list[list[int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    idx = np.concatenate([np.arange(lo, hi) for lo, hi in merged])
    sample = COOMatrix(
        coo.nrows, coo.ncols, rows[idx], coo.cols[idx], None, canonical=True
    )
    return sample, True


def extract_features(coo: COOMatrix) -> MatrixFeatures:
    """Compute the advisor feature bundle for one pattern."""
    t0 = time.perf_counter()
    counts = coo.row_counts()
    runs = run_lengths(coo)
    if coo.nnz:
        offsets = np.abs(coo.cols - coo.rows)
        bandwidth = int(offsets.max())
        band = max(16, coo.ncols // 100)
        bandedness = float((offsets <= band).mean())
    else:
        bandwidth = 0
        bandedness = 1.0
    row_mean = float(counts.mean()) if counts.size else 0.0
    row_cv = (
        float(counts.std() / row_mean) if counts.size and row_mean > 0 else 0.0
    )

    sample, sampled = _sample_panels(coo)
    row_fill = {
        r: fill_of(bcsr_block_stats(sample, r, 1)) for r in ROW_PROBES
    }
    col_fill = {
        c: fill_of(bcsr_block_stats(sample, 1, c)) for c in COL_PROBES
    }
    diag_fill: dict[int, float] = {}
    diag_full_frac: dict[int, float] = {}
    for b in DIAG_PROBES:
        stats = bcsd_block_stats(sample, b)
        diag_fill[b] = fill_of(stats)
        diag_full_frac[b] = full_block_fraction(stats)
    rect_fill: dict[tuple[int, int], float] = {}
    rect_full_frac: dict[tuple[int, int], float] = {}
    for r, c in RECT_PROBES:
        stats = bcsr_block_stats(sample, r, c)
        rect_fill[(r, c)] = fill_of(stats)
        rect_full_frac[(r, c)] = full_block_fraction(stats)

    return MatrixFeatures(
        fingerprint=matrix_fingerprint(coo),
        nrows=coo.nrows,
        ncols=coo.ncols,
        nnz=coo.nnz,
        density=coo.nnz / (coo.nrows * coo.ncols) if coo.nrows and coo.ncols else 0.0,
        row_mean=row_mean,
        row_cv=row_cv,
        empty_row_frac=float((counts == 0).mean()) if counts.size else 0.0,
        mean_run_length=float(runs.mean()) if runs.size else 0.0,
        bandwidth=bandwidth,
        bandedness=bandedness,
        sampled=sampled,
        sample_nnz=sample.nnz,
        extract_s=time.perf_counter() - t0,
        row_fill=row_fill,
        col_fill=col_fill,
        diag_fill=diag_fill,
        diag_full_frac=diag_full_frac,
        rect_fill=rect_fill,
        rect_full_frac=rect_full_frac,
    )
