"""The thread-safe format-advisor service.

:class:`AdvisorService` wraps the tuning loop of
:mod:`repro.core.selection` into a long-lived, concurrent, cached service:

* **profile once** — the machine profile is calibrated lazily per precision
  and shared (read-only) across every request and thread;
* **prune** — the candidate space is cut down from features before any
  conversion happens (:mod:`repro.serve.pruning`), unless the caller asks
  for the exhaustive loop;
* **cache** — recommendations persist in the fingerprint-keyed
  :class:`~repro.serve.store.AdvisorStore`, versioned by the profile
  calibration, so a repeated matrix is answered without touching a model;
* **batch** — :meth:`AdvisorService.advise_many` evaluates many matrices on
  a thread pool with per-request error isolation and timeout: one bad
  matrix yields one :class:`AdviseError` entry, never a failed batch;
* **learn** — with a :class:`~repro.learn.LearnConfig` the service drives
  the online training loop (:mod:`repro.learn`): every answered request is
  trace-logged and shadow-compared, published models guide the candidate
  pool on non-holdout requests, and a drift alarm falls the service back
  to pure model-based selection (see ``docs/learning.md``).
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..learn import LearnConfig

from ..core.candidates import FIXED_BLOCK_KINDS, Candidate, candidate_space
from ..core.profiling import ProfileCache, ProfileStore
from ..core.selection import evaluate_candidates
from ..durability.report import set_durability_listener
from ..engine.events import EventBus
from ..errors import ModelError, ReproError, ServiceUnavailableError
from ..formats.coo import COOMatrix
from ..machine.machine import MachineModel
from ..machine.presets import get_preset
from ..resilience.faults import current_plan, fault_point
from ..resilience.guard import BreakerConfig, CircuitBreaker, Deadline
from ..types import Impl, Precision
from .features import FEATURES_VERSION, MatrixFeatures, extract_features
from .pruning import PruneConfig, PruneDecision, prune_candidates
from .store import AdvisorStore, profile_token

__all__ = [
    "AdviseOptions",
    "RankedCandidate",
    "Recommendation",
    "AdviseError",
    "AdvisorService",
    "resolve_matrix",
]

logger = logging.getLogger(__name__)

DEFAULT_MACHINE = "core2-xeon-2.66"


def resolve_matrix(matrix: COOMatrix | str | int | Path) -> COOMatrix:
    """Turn a request's matrix spec into a pattern.

    Accepts a :class:`COOMatrix`, a suite entry name or 1-based index, or a
    path to a Matrix Market file (detected by suffix / existence).
    """
    if isinstance(matrix, COOMatrix):
        return matrix
    if isinstance(matrix, int):
        from ..matrices.suite import get_entry

        return get_entry(matrix).build()
    spec = str(matrix)
    path = Path(spec)
    if path.suffix in (".mtx", ".gz") or path.exists():
        from ..matrices.mmio import read_matrix_market

        return read_matrix_market(path).pattern_only()
    from ..matrices.suite import get_entry

    if spec.isdigit():
        return get_entry(int(spec)).build()
    return get_entry(spec).build()


@dataclass(frozen=True)
class AdviseOptions:
    """Everything (besides the matrix and the profile) that determines a
    recommendation — the options half of the cache key."""

    model: str = "overlap"
    precision: str = "dp"
    nthreads: int = 1
    prune: bool = True
    max_block_elems: int = 8

    def cache_key(self) -> str:
        return (
            f"v{FEATURES_VERSION}|{self.model}|{self.precision}"
            f"|t{self.nthreads}|p{int(self.prune)}|e{self.max_block_elems}"
        )

    def to_payload(self) -> dict:
        return {
            "model": self.model,
            "precision": self.precision,
            "nthreads": self.nthreads,
            "prune": self.prune,
            "max_block_elems": self.max_block_elems,
        }


@dataclass(frozen=True)
class RankedCandidate:
    """One entry of a recommendation's ranking."""

    kind: str
    block: tuple[int, int] | int | None
    impl: str
    predicted_s: float

    @property
    def candidate(self) -> Candidate:
        return Candidate(self.kind, self.block, Impl(self.impl))

    @property
    def label(self) -> str:
        return self.candidate.label

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "block": self.block,
            "impl": self.impl,
            "predicted_s": self.predicted_s,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RankedCandidate":
        block = payload["block"]
        if isinstance(block, list):
            block = tuple(block)
        return cls(
            kind=payload["kind"],
            block=block,
            impl=payload["impl"],
            predicted_s=payload["predicted_s"],
        )


@dataclass
class Recommendation:
    """The advisor's answer for one matrix."""

    fingerprint: str
    nrows: int
    ncols: int
    nnz: int
    options: AdviseOptions
    #: Every candidate the selected model scored, best first.
    ranking: list[RankedCandidate]
    n_candidates_evaluated: int
    n_candidates_total: int
    n_structures_evaluated: int
    n_structures_total: int
    elapsed_s: float
    cache_hit: bool = False
    #: True when the answer was served from cache *because* the circuit
    #: breaker is open (the cold path is refusing work).  Like
    #: ``cache_hit`` this is per-response state, never persisted.
    degraded: bool = False
    features: dict | None = None
    pruned_structures: dict[str, str] = field(default_factory=dict)
    #: Phase → seconds breakdown of the evaluation (convert / stats /
    #: simulate / models); ``None`` on cache hits served from entries
    #: written before the field existed.
    phase_timings: dict[str, float] | None = None
    #: Learn-mode annotations (serving mode, model version, shadow
    #: outcome) stamped by the learn runtime.  Per-response state like
    #: ``cache_hit``/``degraded`` — never persisted in the cache.
    learned: dict | None = None

    @property
    def best(self) -> RankedCandidate:
        return self.ranking[0]

    def top(self, n: int) -> list[RankedCandidate]:
        return self.ranking[:n]

    def to_payload(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "nrows": self.nrows,
            "ncols": self.ncols,
            "nnz": self.nnz,
            "options": self.options.to_payload(),
            "ranking": [r.to_payload() for r in self.ranking],
            "n_candidates_evaluated": self.n_candidates_evaluated,
            "n_candidates_total": self.n_candidates_total,
            "n_structures_evaluated": self.n_structures_evaluated,
            "n_structures_total": self.n_structures_total,
            "elapsed_s": self.elapsed_s,
            "features": self.features,
            "pruned_structures": self.pruned_structures,
            "phase_timings": self.phase_timings,
        }

    @classmethod
    def from_payload(
        cls, payload: dict, *, cache_hit: bool = False
    ) -> "Recommendation":
        return cls(
            fingerprint=payload["fingerprint"],
            nrows=payload["nrows"],
            ncols=payload["ncols"],
            nnz=payload["nnz"],
            options=AdviseOptions(**payload["options"]),
            ranking=[
                RankedCandidate.from_payload(r) for r in payload["ranking"]
            ],
            n_candidates_evaluated=payload["n_candidates_evaluated"],
            n_candidates_total=payload["n_candidates_total"],
            n_structures_evaluated=payload["n_structures_evaluated"],
            n_structures_total=payload["n_structures_total"],
            elapsed_s=payload["elapsed_s"],
            cache_hit=cache_hit,
            features=payload.get("features"),
            pruned_structures=dict(payload.get("pruned_structures", {})),
            phase_timings=payload.get("phase_timings"),
        )


@dataclass
class AdviseError:
    """A failed (or timed-out) request in a batch — never an exception."""

    error: str
    kind: str = "error"  # "error" | "timeout"
    elapsed_s: float = 0.0


class _EventCounter:
    """Bus reporter that tallies resilience events for ``GET /stats``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.counts: dict[str, int] = {}

    def handle(self, event: dict) -> None:
        kind = event["event"]
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counts)


class AdvisorService:
    """Thread-safe advise/advise_many over one machine model.

    >>> service = AdvisorService()
    >>> rec = service.advise("dense")
    >>> rec.best.label
    'BCSR 8x1 simd'
    """

    def __init__(
        self,
        machine: MachineModel | None = None,
        *,
        cache_dir: str | Path | None = ".repro_cache",
        profile_cache: ProfileCache | None = None,
        prune_config: PruneConfig | None = None,
        breaker_config: BreakerConfig | None = None,
        reporters: tuple | list = (),
        worker_id: int | None = None,
        learn_config: "LearnConfig | None" = None,
        drift_breaker_config: BreakerConfig | None = None,
    ) -> None:
        self.machine = (
            machine if machine is not None else get_preset(DEFAULT_MACHINE)
        )
        if profile_cache is None:
            # With a cache dir the calibration itself persists too: a
            # restarted service warm-starts from disk instead of paying the
            # multi-second calibration again (the round trip is float-exact,
            # so recommendations and cache tokens are unchanged).
            profile_cache = (
                ProfileStore(cache_dir) if cache_dir is not None else ProfileCache()
            )
        self.profile_cache = profile_cache
        self.prune_config = (
            prune_config if prune_config is not None else PruneConfig()
        )
        self.store = AdvisorStore(cache_dir) if cache_dir is not None else None
        #: Identifies this service in a fleet's aggregated ``/stats`` view
        #: (``None`` for a standalone server).
        self.worker_id = worker_id
        self._profile_lock = threading.Lock()
        self._tokens: dict[Precision, str] = {}
        # Warmup/readiness: the event is *set* when the service is ready to
        # take traffic.  With no warmup requested the service is born ready;
        # ``start_warmup``/``warmup`` clear it until calibration completes,
        # which ``GET /readyz`` surfaces as a 503.
        self._warmup_done = threading.Event()
        self._warmup_done.set()
        self._stats_lock = threading.Lock()
        self._counters = {
            "requests": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "errors": 0,
            "timeouts": 0,
            "batches": 0,
            "degraded": 0,
        }
        self._latency_total_s = 0.0
        self._latency_count = 0
        # Resilience: one circuit breaker per precision (each precision is
        # its own failure domain), and an event bus carrying the
        # resilience event stream (fault_injected, breaker_*, request_*,
        # drain_*) into /stats and any subscribed run log.
        self.breaker_config = (
            breaker_config if breaker_config is not None else BreakerConfig()
        )
        self._breakers: dict[str, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()
        self.bus = EventBus(reporters)
        self._event_counter = _EventCounter()
        self.bus.subscribe(self._event_counter)
        # Durability wiring (last-wins, like FaultPlan.on_inject): cache
        # corruption detections and degraded writes from any owner in
        # this process land on the service bus and therefore in /stats.
        set_durability_listener(self._emit_durability)
        # Online learning (docs/learning.md): needs the persistent cache
        # dir for the trace log and model registry.
        self.learn = None
        if learn_config is not None:
            if cache_dir is None:
                raise ValueError(
                    "learning requires a cache_dir (trace log + model store)"
                )
            from ..learn import LearnRuntime

            self.learn = LearnRuntime(
                cache_dir,
                machine=self.machine,
                bus=self.bus,
                config=learn_config,
                drift_breaker_config=drift_breaker_config,
            )
        plan = current_plan()
        if plan is not None:
            plan.on_inject = lambda ev: self.bus.emit("fault_injected", **ev)

    # ---------------------------- resilience ---------------------------- #
    def _breaker(self, precision: Precision) -> CircuitBreaker:
        key = precision.value
        with self._breaker_lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.breaker_config)
                self._breakers[key] = breaker
            return breaker

    # ----------------------------- profiling --------------------------- #
    def _profile_and_token(self, precision: Precision):
        """The calibrated profile and its cache token (thread-safe)."""
        fault_point("serve.service.profile")
        with self._profile_lock:
            profile = self.profile_cache.get(self.machine, precision)
            token = self._tokens.get(precision)
            if token is None:
                token = profile_token(profile)
                self._tokens[precision] = token
        return profile, token

    # ------------------------------ warmup ------------------------------ #
    def warmup(self, precisions: Sequence[Precision | str] = ("dp",)) -> None:
        """Calibrate (or disk-load) the profile for each precision now.

        The service reports not-ready (``warmed_up`` False, ``/readyz``
        503) until the pass completes, so a fleet balancer never routes to
        a worker that would stall its first requests on the multi-second
        calibration.
        """
        self._warmup_done.clear()
        try:
            for precision in precisions:
                self._profile_and_token(Precision.coerce(precision))
        finally:
            self._warmup_done.set()

    def start_warmup(
        self, precisions: Sequence[Precision | str] = ("dp",)
    ) -> threading.Thread:
        """Run :meth:`warmup` on a background thread (returns it)."""
        self._warmup_done.clear()
        thread = threading.Thread(
            target=self.warmup,
            args=(tuple(precisions),),
            name="advisor-warmup",
            daemon=True,
        )
        thread.start()
        return thread

    @property
    def warmed_up(self) -> bool:
        """True unless a requested warmup is still running."""
        return self._warmup_done.is_set()

    # ------------------------------ advise ----------------------------- #
    def advise(
        self,
        matrix: COOMatrix | str | int | Path,
        *,
        model: str = "overlap",
        precision: Precision | str = "dp",
        nthreads: int = 1,
        prune: bool = True,
        use_cache: bool = True,
        max_block_elems: int = 8,
        deadline: Deadline | None = None,
    ) -> Recommendation:
        """Recommend (format, block, implementation) tuples for ``matrix``.

        ``deadline`` bounds the request: it is checked at every phase
        boundary of the evaluation, and an expired deadline raises
        :class:`~repro.errors.DeadlineExceededError` (HTTP 504 on the
        server) instead of holding the thread for the full evaluation.
        """
        t0 = time.perf_counter()
        self._bump("requests")
        # A plan installed after service construction (API/tests) still gets
        # its injections surfaced as fault_injected events.
        plan = current_plan()
        if plan is not None and plan.on_inject is None:
            plan.on_inject = lambda ev: self.bus.emit("fault_injected", **ev)
        try:
            rec = self._advise_inner(
                matrix,
                AdviseOptions(
                    model=model,
                    precision=Precision.coerce(precision).value,
                    nthreads=nthreads,
                    prune=prune,
                    max_block_elems=max_block_elems,
                ),
                use_cache=use_cache,
                deadline=deadline,
            )
        except Exception:
            self._bump("errors")
            raise
        rec.elapsed_s = time.perf_counter() - t0
        with self._stats_lock:
            self._latency_total_s += rec.elapsed_s
            self._latency_count += 1
        if self.learn is not None and rec.learned is not None:
            # Observation is best-effort: a full disk under the trace log
            # must not fail a request whose answer is already computed.
            try:
                self.learn.finish(rec)
            except Exception as exc:  # noqa: BLE001 - never into the request
                logger.warning(
                    "learn observation failed (%s: %s); serving anyway",
                    type(exc).__name__, exc,
                )
        return rec

    def _advise_inner(
        self,
        matrix: COOMatrix | str | int | Path,
        options: AdviseOptions,
        *,
        use_cache: bool,
        deadline: Deadline | None = None,
    ) -> Recommendation:
        from .features import matrix_fingerprint

        if deadline is not None:
            deadline.check("admission")
        coo = resolve_matrix(matrix)
        precision = Precision.coerce(options.precision)
        profile, token = self._profile_and_token(precision)
        fingerprint = matrix_fingerprint(coo)
        breaker = self._breaker(precision)
        if deadline is not None:
            deadline.check("profile")

        # Learn mode: decide how this request is served *before* the cache
        # lookup — a model-guided answer depends on the model version, so
        # its cache key carries it (a hot-swap can never serve stale
        # guidance), while holdout/baseline/fallback answers stay on the
        # plain key the analytic path has always used.
        decision = None
        options_key = options.cache_key()
        if self.learn is not None:
            decision = self.learn.decide(fingerprint)
            if decision.mode == "guided":
                options_key += f"|learn:{decision.model_version}"

        key = None
        if self.store is not None and use_cache:
            key = AdvisorStore.key(fingerprint, options_key, token)
            payload = self.store.load(key, token=token)
            if payload is not None:
                self._bump("cache_hits")
                rec = Recommendation.from_payload(payload, cache_hit=True)
                if decision is not None:
                    rec.learned = decision.to_payload()
                # Degraded mode: with the breaker open the cold path is
                # refusing work, but a cached answer is still a correct
                # answer — serve it, flagged.
                if breaker.state == CircuitBreaker.OPEN:
                    rec.degraded = True
                    self._bump("degraded")
                return rec
        if not breaker.allow():
            raise ServiceUnavailableError(
                f"advisor circuit breaker is open for precision "
                f"{precision} (after {breaker.consecutive_failures} "
                "consecutive cold-advise failures) and no cached "
                "recommendation exists for this matrix; retry later"
            )
        self._bump("cache_misses")

        # Everything from here to the end of the ranking is the breaker's
        # protected window: consecutive failures open it, a half-open
        # probe's outcome closes or re-opens it.
        try:
            fault_point("serve.service.advise")
            candidates = candidate_space(
                max_block_elems=options.max_block_elems, include_vbl=False
            )
            n_structures_total = len({(c.kind, c.block) for c in candidates})
            features: MatrixFeatures | None = None
            pruning: PruneDecision | None = None
            pool = candidates
            if options.prune:
                features = extract_features(coo)
                pruning = prune_candidates(
                    features, candidates, self.prune_config,
                    precision=precision,
                )
                pool = pruning.kept
            if self.learn is not None and features is None:
                # Learning needs the feature bundle even on --no-prune
                # requests: the trace logs the derived vector and the
                # shadow comparison predicts from it.
                features = extract_features(coo)
            predicted_kind = None
            if (
                decision is not None
                and decision.mode == "guided"
                and features is not None
            ):
                vector = self.learn.feature_vector(features, precision)
                predicted_kind = decision.tree.predict(vector)
                guided = [c for c in pool if c.kind == predicted_kind]
                if guided:
                    pool = guided
            if deadline is not None:
                deadline.check("prune")

            timings: dict[str, float] = {}
            results = evaluate_candidates(
                coo,
                self.machine,
                precision,
                candidates=pool,
                models=(options.model,),
                profile=profile,
                run_simulation=False,
                nthreads=options.nthreads,
                timings=timings,
            )
            if deadline is not None:
                deadline.check("evaluate")
            ranking = _rank(results, options.model)
        except Exception:
            if breaker.record_failure() == "open":
                self.bus.emit(
                    "breaker_open",
                    precision=precision.value,
                    failures=breaker.consecutive_failures,
                )
            raise
        if breaker.record_success() == "close":
            self.bus.emit("breaker_close", precision=precision.value)
        rec = Recommendation(
            fingerprint=fingerprint,
            nrows=coo.nrows,
            ncols=coo.ncols,
            nnz=coo.nnz,
            options=options,
            ranking=ranking,
            n_candidates_evaluated=len(pool),
            n_candidates_total=len(candidates),
            n_structures_evaluated=len({(c.kind, c.block) for c in pool}),
            n_structures_total=n_structures_total,
            elapsed_s=0.0,
            features=features.to_payload() if features is not None else None,
            pruned_structures=dict(pruning.dropped) if pruning else {},
            phase_timings={k: round(v, 6) for k, v in timings.items()},
        )
        if decision is not None:
            rec.learned = decision.to_payload()
            if predicted_kind is not None:
                rec.learned["predicted_kind"] = predicted_kind
        if self.store is not None and use_cache and key is not None:
            # Best-effort: a failed cache save (full disk, injected store
            # fault) must not fail a request whose answer is already
            # computed — the atomic writer guarantees no partial entry is
            # left behind, and the next request simply recomputes.
            # (CacheWriteError never reaches here: the store maps it to a
            # cache_write_failed event itself; this catch is for injected
            # faults and anything else unexpected.)
            try:
                self.store.save(
                    key, rec.to_payload(), fingerprint=fingerprint, token=token
                )
            except Exception as exc:  # noqa: BLE001 - save is best-effort
                logger.warning(
                    "advisor cache save failed (%s: %s); serving uncached",
                    type(exc).__name__, exc,
                )
        return rec

    def _emit_durability(self, info: dict) -> None:
        """Forward durability incidents onto the service's event bus."""
        if info.get("kind") == "cache_write_failed":
            self.bus.emit(
                "cache_write_failed",
                owner=info.get("owner"),
                path=info.get("path"),
                error=info.get("error"),
                error_type=info.get("error_type"),
            )
        else:
            self.bus.emit(
                "cache_corrupt_detected",
                owner=info.get("owner"),
                path=info.get("path"),
                error=info.get("error"),
                error_type=info.get("error_type"),
                quarantined=info.get("quarantined"),
            )

    # --------------------------- batch advise --------------------------- #
    def advise_many(
        self,
        matrices: Sequence[COOMatrix | str | int | Path],
        *,
        max_workers: int = 2,
        timeout_s: float | None = None,
        **options,
    ) -> list[Recommendation | AdviseError]:
        """Advise a batch concurrently; errors and timeouts are isolated.

        Returns one entry per input, in input order: a
        :class:`Recommendation` on success, an :class:`AdviseError`
        otherwise.  ``timeout_s`` bounds each request's wait measured from
        batch start; a timed-out worker keeps running in the background but
        its slot reports ``kind="timeout"``.
        """
        self._bump("batches")
        t0 = time.perf_counter()

        def worker(m):
            try:
                return self.advise(m, **options)
            except ReproError as exc:
                self._bump("errors")
                return AdviseError(
                    error=f"{type(exc).__name__}: {exc}",
                    elapsed_s=time.perf_counter() - t0,
                )

        out: list[Recommendation | AdviseError] = []
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(worker, m) for m in matrices]
            for future in futures:
                remaining = None
                if timeout_s is not None:
                    remaining = max(0.0, timeout_s - (time.perf_counter() - t0))
                try:
                    out.append(future.result(timeout=remaining))
                except FutureTimeoutError:
                    self._bump("timeouts")
                    future.cancel()
                    out.append(
                        AdviseError(
                            error=f"timed out after {timeout_s:.1f}s",
                            kind="timeout",
                            elapsed_s=time.perf_counter() - t0,
                        )
                    )
                except Exception as exc:  # non-Repro errors stay isolated too
                    self._bump("errors")
                    out.append(
                        AdviseError(
                            error=f"{type(exc).__name__}: {exc}",
                            elapsed_s=time.perf_counter() - t0,
                        )
                    )
        return out

    # ------------------------------ stats ------------------------------ #
    def _bump(self, counter: str) -> None:
        with self._stats_lock:
            self._counters[counter] += 1

    def stats(self) -> dict:
        """A snapshot of the service counters (for ``GET /stats``)."""
        with self._stats_lock:
            snap = dict(self._counters)
            total = self._latency_count
            snap["mean_latency_s"] = (
                self._latency_total_s / total if total else 0.0
            )
        snap["machine"] = self.machine.name
        snap["worker_id"] = self.worker_id
        snap["cache_entries"] = (
            self.store.entry_count() if self.store is not None else 0
        )
        snap["persistent_cache"] = self.store is not None
        with self._breaker_lock:
            breakers = dict(self._breakers)
        snap["resilience"] = {
            "events": self._event_counter.snapshot(),
            "breakers": {
                precision: breaker.snapshot()
                for precision, breaker in sorted(breakers.items())
            },
        }
        snap["learn"] = (
            self.learn.snapshot()
            if self.learn is not None
            else {"enabled": False}
        )
        return snap


def _rank(results, model_name: str) -> list[RankedCandidate]:
    """Rank evaluated candidates by the model's own prediction.

    Same pool semantics as :func:`repro.core.selection.select_with_model`:
    fixed-size blockings only, and the implementation-blind MEM model
    defaults to the scalar kernels.
    """
    from ..core.models import MODELS

    model = MODELS[model_name]
    pool = [
        r
        for r in results
        if model_name in r.predictions
        and r.candidate.kind in FIXED_BLOCK_KINDS
    ]
    if not model.impl_aware:
        pool = [r for r in pool if r.candidate.impl is Impl.SCALAR]
    if not pool:
        raise ModelError(f"model {model_name!r} covered no candidate")
    pool.sort(key=lambda r: r.predictions[model_name])
    return [
        RankedCandidate(
            kind=r.candidate.kind,
            block=r.candidate.block,
            impl=r.candidate.impl.value,
            predicted_s=r.predictions[model_name],
        )
        for r in pool
    ]
