"""Feature-driven pruning of the tuning space.

The exhaustive tuning loop converts a matrix into every distinct
``(kind, block)`` structure (~53 of them) before the models ever see a
number — and conversion dominates the advise latency.  Pruning uses the
:mod:`~repro.serve.features` bundle to discard structures whose *estimated*
occupancy already condemns them, before any conversion happens:

* a padded BCSR/BCSD blocking whose estimated fill implies more than
  ``max_padding_ratio`` stored elements per nonzero cannot beat CSR on a
  bandwidth-bound machine (the MEM bound of eq. 1 grows with padding);
* a decomposed blocking only pays off when a sizable fraction of the
  nonzeros sits in *full* blocks (otherwise it degenerates to CSR plus
  per-submatrix overhead);
* of the surviving rectangular shapes only the ``max_rect_shapes`` with the
  lightest estimated working set per nonzero are kept — the model ranking
  among near-equals is what the un-pruned evaluation is for.

CSR always survives: it is the degenerate 1x1 blocking, the safe fallback
and the baseline every speedup in the paper is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.candidates import Candidate, unique_structures
from ..types import INDEX_BYTES, Precision
from .features import MatrixFeatures

__all__ = ["PruneConfig", "PruneDecision", "prune_candidates"]


@dataclass(frozen=True)
class PruneConfig:
    """Thresholds of the pruning rules (tuned on the 30-matrix suite)."""

    #: Skip a padded blocking when est. stored elements / nnz exceeds this.
    max_padding_ratio: float = 2.0
    #: Skip a decomposed blocking when the estimated fraction of nonzeros
    #: in full blocks is below this.
    min_full_frac: float = 0.05
    #: Skip every BCSD variant when the estimated diagonal fill at the
    #: smallest probe is below this (no meaningful diagonal structure).
    min_diag_fill: float = 0.30
    #: Keep at most this many rectangular shapes (best est. working set).
    max_rect_shapes: int = 6
    #: Keep at most this many diagonal sizes.
    max_diag_sizes: int = 2

    def to_payload(self) -> dict:
        return {
            "max_padding_ratio": self.max_padding_ratio,
            "min_full_frac": self.min_full_frac,
            "min_diag_fill": self.min_diag_fill,
            "max_rect_shapes": self.max_rect_shapes,
            "max_diag_sizes": self.max_diag_sizes,
        }


@dataclass
class PruneDecision:
    """Which candidates survived pruning, and why the rest did not."""

    kept: tuple[Candidate, ...]
    n_candidates_total: int
    n_structures_total: int
    n_structures_kept: int
    #: structure label -> human-readable reason it was dropped.
    dropped: dict[str, str] = field(default_factory=dict)

    @property
    def n_candidates_kept(self) -> int:
        return len(self.kept)

    @property
    def candidate_fraction(self) -> float:
        if self.n_candidates_total == 0:
            return 1.0
        return self.n_candidates_kept / self.n_candidates_total


def _structure_label(kind: str, block) -> str:
    if isinstance(block, tuple):
        return f"{kind} {block[0]}x{block[1]}"
    if isinstance(block, int):
        return f"{kind} {block}"
    return kind


def _ws_per_nnz(fill: float, elems: int, precision: Precision) -> float:
    """Estimated stored bytes per true nonzero of a padded blocking.

    Values are padded up by ``1/fill``; one ``INDEX_BYTES`` column index is
    amortised over each block's ``elems`` stored cells.  This is the MEM
    model's objective, computable from features alone.
    """
    fill = max(fill, 1e-6)
    return precision.itemsize / fill + INDEX_BYTES / (fill * elems)


def prune_candidates(
    features: MatrixFeatures,
    candidates: tuple[Candidate, ...],
    config: PruneConfig = PruneConfig(),
    *,
    precision: Precision | str = Precision.DP,
) -> PruneDecision:
    """Cut ``candidates`` down using only ``features`` (no conversions)."""
    precision = Precision.coerce(precision)
    structures = unique_structures(candidates)
    keep: set[tuple] = set()
    dropped: dict[str, str] = {}

    # --- rectangular shapes (BCSR / BCSR-DEC) --------------------------- #
    rect_scores: dict[tuple[int, int], float] = {}
    for kind, block in structures:
        if kind not in ("bcsr", "bcsr_dec"):
            continue
        r, c = block
        fill = features.est_rect_fill(r, c)
        padding = 1.0 / max(fill, 1e-6)
        label = _structure_label(kind, block)
        if kind == "bcsr":
            if padding > config.max_padding_ratio:
                dropped[label] = (
                    f"est. fill {fill:.2f} implies {padding:.1f}x padding "
                    f"(> {config.max_padding_ratio:.1f}x)"
                )
                continue
            rect_scores.setdefault(
                (r, c), _ws_per_nnz(fill, r * c, precision)
            )
            keep.add((kind, block))
        else:  # bcsr_dec
            full = features.est_rect_full_frac(r, c)
            if full < config.min_full_frac:
                dropped[label] = (
                    f"est. full-block fraction {full:.2f} "
                    f"(< {config.min_full_frac:.2f}) — decomposition "
                    "degenerates to CSR"
                )
                continue
            rect_scores.setdefault(
                (r, c), _ws_per_nnz(fill, r * c, precision)
            )
            keep.add((kind, block))

    # Cap the surviving rectangular shapes to the lightest few.
    surviving_shapes = {
        block for kind, block in keep if kind in ("bcsr", "bcsr_dec")
    }
    if len(surviving_shapes) > config.max_rect_shapes:
        ranked = sorted(surviving_shapes, key=lambda b: rect_scores[b])
        cut = set(ranked[config.max_rect_shapes:])
        for kind, block in list(keep):
            if kind in ("bcsr", "bcsr_dec") and block in cut:
                keep.discard((kind, block))
                dropped[_structure_label(kind, block)] = (
                    f"outside the top {config.max_rect_shapes} shapes by "
                    "estimated working set"
                )

    # --- diagonal sizes (BCSD / BCSD-DEC) ------------------------------- #
    diag_sizes = sorted({
        block for kind, block in structures if kind in ("bcsd", "bcsd_dec")
    })
    smallest_fill = (
        features.est_diag_fill(diag_sizes[0]) if diag_sizes else 1.0
    )
    diag_negligible = smallest_fill < config.min_diag_fill
    diag_reasons: dict[int, str] = {}
    diag_scored: list[tuple[float, int]] = []
    for b in diag_sizes:
        fill = features.est_diag_fill(b)
        padding = 1.0 / max(fill, 1e-6)
        if diag_negligible:
            diag_reasons[b] = (
                f"diagonal fill negligible (est. {smallest_fill:.2f} at "
                f"size {diag_sizes[0]} < {config.min_diag_fill:.2f})"
            )
        elif padding > config.max_padding_ratio:
            diag_reasons[b] = (
                f"est. diag fill {fill:.2f} implies {padding:.1f}x padding"
            )
        else:
            diag_scored.append((_ws_per_nnz(fill, b, precision), b))
    diag_scored.sort()
    diag_kept = [b for _, b in diag_scored[: config.max_diag_sizes]]
    for _, b in diag_scored[config.max_diag_sizes:]:
        diag_reasons[b] = (
            f"outside the top {config.max_diag_sizes} diagonal sizes by "
            "estimated working set"
        )
    for b, reason in diag_reasons.items():
        for kind in ("bcsd", "bcsd_dec"):
            if (kind, b) in structures:
                dropped[_structure_label(kind, b)] = reason
    for b in diag_kept:
        full = features.est_diag_full_frac(b)
        for kind, block in structures:
            if block != b or kind not in ("bcsd", "bcsd_dec"):
                continue
            if kind == "bcsd_dec" and full < config.min_full_frac:
                dropped[_structure_label(kind, b)] = (
                    f"est. full-diagonal fraction {full:.2f} "
                    f"(< {config.min_full_frac:.2f})"
                )
                continue
            keep.add((kind, block))

    # --- unconditional keeps -------------------------------------------- #
    for kind, block in structures:
        if kind in ("csr", "vbl"):
            keep.add((kind, block))

    kept = tuple(c for c in candidates if (c.kind, c.block) in keep)
    return PruneDecision(
        kept=kept,
        n_candidates_total=len(candidates),
        n_structures_total=len(structures),
        n_structures_kept=len({(c.kind, c.block) for c in kept}),
        dropped=dropped,
    )
