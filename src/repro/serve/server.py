"""Stdlib JSON endpoint over :class:`~repro.serve.service.AdvisorService`.

A deliberately small ``http.server`` wrapper — no third-party web framework
— exposing:

* ``POST /advise`` — body ``{"suite": "<name-or-idx>"}`` or
  ``{"matrix_market": "<file contents>"}``, plus optional ``model``,
  ``precision``, ``nthreads``, ``prune``, ``top``, ``timeout_s``; answers
  with the ranked recommendation as JSON;
* ``GET /healthz`` — liveness probe (reports draining state);
* ``GET /readyz`` — readiness probe: 503 while draining or before a
  requested profile warmup completes, 200 otherwise (the fleet
  balancer's per-worker health check, see ``docs/serving.md``);
* ``GET /stats`` — the service counters plus the resilience section
  (event tallies, per-precision breaker states) and, on a learn-enabled
  service, the ``learn`` block (model version, serving-mode tallies,
  shadow gap, drift-breaker state — see ``docs/learning.md``).

:class:`ThreadingHTTPServer` gives one thread per connection; the service
underneath is thread-safe, so concurrent ``POST /advise`` requests are
supported out of the box.  On top of that the server is hardened for
production traffic (see ``docs/resilience.md``):

* **bounded admission** — at most ``max_inflight`` concurrent ``/advise``
  requests; excess load is shed immediately with a 503 +
  ``Retry-After`` (``request_shed`` event) instead of queueing without
  bound;
* **deadlines** — ``request_timeout_s`` (overridable per request via the
  ``timeout_s`` body field, capped by the server limit) bounds each
  advise; an over-budget request gets a 504
  (``request_deadline_exceeded`` event);
* **degraded mode** — with the circuit breaker open, cached matrices are
  answered with ``"degraded": true`` and uncached ones get a 503;
* **catch-all** — an unexpected exception becomes a JSON 500 with the
  traceback logged, never a silently dropped connection;
* **graceful drain** — SIGTERM/SIGINT stop the accept loop, in-flight
  requests get ``drain_timeout_s`` to finish (``drain_begin`` /
  ``drain_end`` events), and the final stats snapshot is flushed to
  stderr before exit.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    DeadlineExceededError,
    ReproError,
    ServiceUnavailableError,
)
from ..resilience.faults import fault_point
from ..resilience.guard import Deadline
from .service import AdvisorService

__all__ = [
    "create_server",
    "run_server",
    "serve_forever",
    "AdvisorHTTPServer",
    "AdvisorRequestHandler",
    "DEFAULT_MAX_BODY_BYTES",
    "MAX_BODY_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_DRAIN_TIMEOUT_S",
]

logger = logging.getLogger(__name__)

#: Request-body ceiling.  8 MiB fits any realistic Matrix Market upload
#: this advisor should see; bigger bodies get a 413.  Constructor- and
#: CLI-overridable (``--max-body-bytes``).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
#: Concurrent /advise requests admitted before shedding with a 503.
DEFAULT_MAX_INFLIGHT = 8
#: How long a drain waits for in-flight requests before giving up.
DEFAULT_DRAIN_TIMEOUT_S = 10.0
#: Seconds a shed client is told to wait before retrying.
RETRY_AFTER_S = 1

#: Backwards-compatible alias (pre-1.1 name for the body ceiling).
MAX_BODY_BYTES = DEFAULT_MAX_BODY_BYTES


class AdvisorHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer plus admission control and drain."""

    def __init__(
        self,
        server_address,
        handler_class,
        service: AdvisorService,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        request_timeout_s: float | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        super().__init__(server_address, handler_class)
        self.service = service
        self.max_inflight = max_inflight
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes
        self.drain_timeout_s = drain_timeout_s
        self._state_lock = threading.Lock()
        self._inflight = 0
        self._draining = False

    # --------------------------- admission ----------------------------- #
    def try_admit(self) -> bool:
        """Claim an in-flight slot; False sheds the request (503)."""
        with self._state_lock:
            if self._draining or self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._state_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._state_lock:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._state_lock:
            return self._draining

    # ----------------------------- drain ------------------------------- #
    def drain(self, timeout_s: float | None = None) -> bool:
        """Stop accepting, let in-flight requests finish, report cleanliness.

        Must be called from a thread other than the one running
        ``serve_forever`` (``shutdown()`` blocks until the accept loop
        exits).  Returns True when every in-flight request completed
        within the timeout.
        """
        timeout = self.drain_timeout_s if timeout_s is None else timeout_s
        with self._state_lock:
            self._draining = True
            inflight = self._inflight
        bus = self.service.bus
        bus.emit("drain_begin", inflight=inflight)
        t0 = time.monotonic()
        self.shutdown()
        while True:
            remaining = self.inflight
            if remaining == 0 or time.monotonic() - t0 >= timeout:
                break
            time.sleep(0.02)
        elapsed = time.monotonic() - t0
        clean = remaining == 0
        bus.emit(
            "drain_end",
            inflight=remaining,
            elapsed_s=round(elapsed, 3),
            clean=clean,
        )
        if not clean:
            logger.warning(
                "drain timed out after %.1fs with %d request(s) in flight",
                elapsed, remaining,
            )
        return clean


class AdvisorRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's attached :class:`AdvisorService`."""

    server_version = "repro-advisor/1.1"
    protocol_version = "HTTP/1.1"

    # The handler is instantiated per request; the service hangs off the
    # server object (see create_server).
    @property
    def service(self) -> AdvisorService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s - %s", self.address_string(), format % args)

    # ------------------------------ helpers ----------------------------- #
    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, status: int, message: str, headers: dict | None = None
    ) -> None:
        # Error paths may leave the request body unread (e.g. a 413 never
        # reads it), which would desynchronise a keep-alive connection —
        # so errors always close it.
        self.close_connection = True
        self._send_json(status, {"error": message}, headers)

    # ------------------------------- GET -------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            self._handle_get()
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing to answer
        except Exception as exc:  # noqa: BLE001 - catch-all: JSON 500
            self._internal_error("GET", exc)

    def _handle_get(self) -> None:
        if self.path == "/healthz":
            draining = self.server.draining  # type: ignore[attr-defined]
            self._send_json(
                200,
                {"status": "draining" if draining else "ok"},
            )
        elif self.path == "/readyz":
            # Readiness, distinct from liveness: a draining or still-warming
            # server is alive (healthz 200) but must not receive new
            # traffic — the fleet balancer's health probe keys off this.
            if self.server.draining:  # type: ignore[attr-defined]
                self._send_json(503, {"status": "draining"})
            elif not self.service.warmed_up:
                self._send_json(503, {"status": "warming"})
            else:
                self._send_json(200, {"status": "ready"})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._error(404, f"unknown path {self.path!r}")

    # ------------------------------- POST ------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/advise":
            self._error(404, f"unknown path {self.path!r}")
            return
        server: AdvisorHTTPServer = self.server  # type: ignore[assignment]
        if not server.try_admit():
            self.service.bus.emit(
                "request_shed",
                inflight=server.inflight,
                limit=server.max_inflight,
            )
            self._error(
                503,
                "server at capacity or draining; retry later",
                headers={"Retry-After": str(RETRY_AFTER_S)},
            )
            return
        try:
            self._handle_advise(server)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; nothing to answer
        except Exception as exc:  # noqa: BLE001 - catch-all: JSON 500
            self._internal_error("POST", exc)
        finally:
            server.release()

    def _internal_error(self, method: str, exc: Exception) -> None:
        """Last-resort handler: log the traceback, try to answer 500."""
        logger.exception("unhandled error serving %s %s", method, self.path)
        try:
            self._error(
                500, f"internal server error: {type(exc).__name__}: {exc}"
            )
        except OSError:
            pass  # headers already gone or socket dead; logged above

    def _handle_advise(self, server: AdvisorHTTPServer) -> None:
        fault_point("serve.server.request")
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length > server.max_body_bytes:
            self._error(
                413,
                f"request body of {length} bytes exceeds the limit of "
                f"{server.max_body_bytes} bytes",
            )
            return
        if length <= 0:
            self._error(400, "missing request body")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(request, dict):
            self._error(400, "request body must be a JSON object")
            return

        try:
            matrix = self._resolve(request)
            timeout_s = self._timeout_for(request, server)
        except (ReproError, ValueError, KeyError) as exc:
            self._error(400, str(exc))
            return

        options = {}
        for opt in ("model", "precision", "nthreads", "prune"):
            if opt in request:
                options[opt] = request[opt]
        top = request.get("top", 3)
        deadline = Deadline(timeout_s) if timeout_s is not None else None
        t0 = time.monotonic()
        try:
            rec = self.service.advise(matrix, deadline=deadline, **options)
        except DeadlineExceededError as exc:
            self.service.bus.emit(
                "request_deadline_exceeded",
                timeout_s=timeout_s,
                elapsed_s=round(time.monotonic() - t0, 3),
            )
            self._error(504, str(exc))
            return
        except ServiceUnavailableError as exc:
            self._error(
                503, str(exc), headers={"Retry-After": str(RETRY_AFTER_S)}
            )
            return
        except ReproError as exc:
            self._error(422, f"{type(exc).__name__}: {exc}")
            return
        except (KeyError, TypeError, ValueError) as exc:
            # e.g. an unknown suite entry or a bad option value
            self._error(400, f"{exc.args[0] if exc.args else exc}")
            return

        payload = rec.to_payload()
        payload["cache_hit"] = rec.cache_hit
        payload["degraded"] = rec.degraded
        payload["learned"] = rec.learned
        payload["elapsed_s"] = rec.elapsed_s
        payload["best"] = rec.best.to_payload()
        payload["best"]["label"] = rec.best.label
        if isinstance(top, int) and top > 0:
            payload["ranking"] = [r.to_payload() for r in rec.top(top)]
        payload.pop("features", None)  # verbose; fetch via the library API
        self._send_json(200, payload)

    @staticmethod
    def _timeout_for(request: dict, server: AdvisorHTTPServer) -> float | None:
        """The request's deadline budget: body override, server default.

        A client may tighten the server's ``request_timeout_s`` but never
        loosen past it.
        """
        timeout = server.request_timeout_s
        if "timeout_s" in request:
            value = request["timeout_s"]
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(
                    f"timeout_s must be a positive number, got {value!r}"
                )
            timeout = min(value, timeout) if timeout is not None else value
        return timeout

    def _resolve(self, request: dict):
        """A COOMatrix (or suite spec) from the request body."""
        if "matrix_market" in request:
            from ..matrices.mmio import read_matrix_market_text

            coo = read_matrix_market_text(
                request["matrix_market"], source="<request>"
            )
            return coo.pattern_only()
        if "suite" in request:
            return request["suite"]
        raise ValueError(
            "request must carry either 'suite' (a suite entry name or "
            "index) or 'matrix_market' (file contents)"
        )


def create_server(
    service: AdvisorService,
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    request_timeout_s: float | None = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
) -> AdvisorHTTPServer:
    """A ready-to-run server; call ``serve_forever()`` (or use a thread).

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.server_address[1]``.
    """
    return AdvisorHTTPServer(
        (host, port),
        AdvisorRequestHandler,
        service,
        max_inflight=max_inflight,
        request_timeout_s=request_timeout_s,
        max_body_bytes=max_body_bytes,
        drain_timeout_s=drain_timeout_s,
    )


def run_server(server: AdvisorHTTPServer) -> bool:
    """Serve until SIGTERM/SIGINT, then drain gracefully.

    The accept loop runs in a background thread while the calling thread
    waits for a stop signal, so ``server.drain()`` (which blocks on
    ``shutdown()``) can run safely from here.  Returns True for a clean
    drain.  Signal handlers are installed only when running in the main
    thread (tests call ``server.drain()`` directly instead).
    """
    import signal

    stop = threading.Event()
    installed_handlers: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
            stop.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            installed_handlers[sig] = signal.signal(sig, _request_stop)

    loop = threading.Thread(target=server.serve_forever, daemon=True)
    loop.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        clean = server.drain()
        server.server_close()
        loop.join(timeout=5)
        # Flush the final stats snapshot where log collectors will see it.
        print(
            json.dumps({"final_stats": server.service.stats()}),
            file=__import__("sys").stderr,
            flush=True,
        )
        import signal as _signal

        for sig, old in installed_handlers.items():
            _signal.signal(sig, old)
    return clean


def serve_forever(
    service: AdvisorService,
    host: str = "127.0.0.1",
    port: int = 8077,
    **server_kwargs,
) -> bool:
    """Create a server, announce the bound address, serve until signalled."""
    server = create_server(service, host, port, **server_kwargs)
    addr = f"http://{server.server_address[0]}:{server.server_address[1]}"
    print(
        f"advisor listening on {addr}"
        "  (POST /advise, GET /healthz, /readyz, /stats)",
        flush=True,
    )
    return run_server(server)
