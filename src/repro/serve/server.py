"""Stdlib JSON endpoint over :class:`~repro.serve.service.AdvisorService`.

A deliberately small ``http.server`` wrapper — no third-party web framework
— exposing:

* ``POST /advise`` — body ``{"suite": "<name-or-idx>"}`` or
  ``{"matrix_market": "<file contents>"}``, plus optional ``model``,
  ``precision``, ``nthreads``, ``prune``, ``top``; answers with the ranked
  recommendation as JSON;
* ``GET /healthz`` — liveness probe;
* ``GET /stats`` — the service counters (requests, cache hits/misses,
  errors, timeouts, mean latency, cache entries).

:class:`ThreadingHTTPServer` gives one thread per connection; the service
underneath is thread-safe, so concurrent ``POST /advise`` requests are
supported out of the box.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from .service import AdvisorService

__all__ = ["create_server", "serve_forever", "AdvisorRequestHandler"]

logger = logging.getLogger(__name__)

MAX_BODY_BYTES = 256 * 1024 * 1024


class AdvisorRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's attached :class:`AdvisorService`."""

    server_version = "repro-advisor/1.0"
    protocol_version = "HTTP/1.1"

    # The handler is instantiated per request; the service hangs off the
    # server object (see create_server).
    @property
    def service(self) -> AdvisorService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        logger.debug("%s - %s", self.address_string(), format % args)

    # ------------------------------ helpers ----------------------------- #
    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # ------------------------------- GET -------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        else:
            self._error(404, f"unknown path {self.path!r}")

    # ------------------------------- POST ------------------------------- #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/advise":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._error(400, "missing or oversized request body")
            return
        try:
            request = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(request, dict):
            self._error(400, "request body must be a JSON object")
            return

        try:
            matrix = self._resolve(request)
        except (ReproError, ValueError, KeyError) as exc:
            self._error(400, str(exc))
            return

        options = {}
        for opt in ("model", "precision", "nthreads", "prune"):
            if opt in request:
                options[opt] = request[opt]
        top = request.get("top", 3)
        try:
            rec = self.service.advise(matrix, **options)
        except ReproError as exc:
            self._error(422, f"{type(exc).__name__}: {exc}")
            return
        except (KeyError, TypeError, ValueError) as exc:
            # e.g. an unknown suite entry or a bad option value
            self._error(400, f"{exc.args[0] if exc.args else exc}")
            return

        payload = rec.to_payload()
        payload["cache_hit"] = rec.cache_hit
        payload["elapsed_s"] = rec.elapsed_s
        payload["best"] = rec.best.to_payload()
        payload["best"]["label"] = rec.best.label
        if isinstance(top, int) and top > 0:
            payload["ranking"] = [r.to_payload() for r in rec.top(top)]
        payload.pop("features", None)  # verbose; fetch via the library API
        self._send_json(200, payload)

    def _resolve(self, request: dict):
        """A COOMatrix (or suite spec) from the request body."""
        if "matrix_market" in request:
            from ..matrices.mmio import read_matrix_market_text

            coo = read_matrix_market_text(
                request["matrix_market"], source="<request>"
            )
            return coo.pattern_only()
        if "suite" in request:
            return request["suite"]
        raise ValueError(
            "request must carry either 'suite' (a suite entry name or "
            "index) or 'matrix_market' (file contents)"
        )


def create_server(
    service: AdvisorService,
    host: str = "127.0.0.1",
    port: int = 8077,
) -> ThreadingHTTPServer:
    """A ready-to-run server; call ``serve_forever()`` (or use a thread)."""
    server = ThreadingHTTPServer((host, port), AdvisorRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    return server


def serve_forever(
    service: AdvisorService,
    host: str = "127.0.0.1",
    port: int = 8077,
) -> None:
    server = create_server(service, host, port)
    addr = f"http://{server.server_address[0]}:{server.server_address[1]}"
    print(f"advisor listening on {addr}  (POST /advise, GET /healthz, /stats)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
