"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FormatError",
    "ConversionError",
    "ShapeMismatchError",
    "ModelError",
    "ProfileError",
    "MatrixMarketError",
    "DeadlineExceededError",
    "ServiceUnavailableError",
    "CacheWriteError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class FormatError(ReproError):
    """A sparse storage format is malformed or used incorrectly."""


class ConversionError(FormatError):
    """A conversion between storage formats failed."""


class ShapeMismatchError(FormatError):
    """Operand shapes are incompatible (e.g. SpMV with a wrong-sized x)."""


class ModelError(ReproError):
    """A performance model was asked something it cannot answer."""


class ProfileError(ReproError):
    """Machine profiling (t_b / nof calibration) failed."""


class MatrixMarketError(ReproError):
    """A Matrix Market file could not be parsed or written."""


class DeadlineExceededError(ReproError):
    """A request outlived its :class:`~repro.resilience.guard.Deadline`."""


class ServiceUnavailableError(ReproError):
    """The service refused work it cannot currently do reliably
    (circuit breaker open, shutting down); retrying later may succeed."""


class CacheWriteError(ReproError):
    """A cache artifact could not be persisted (``ENOSPC``, permissions,
    a vanished directory).  Every cache is a rebuildable accelerator, so
    owners catch this, emit ``cache_write_failed``, and keep serving from
    memory / recomputing — a full disk must never crash a worker."""
