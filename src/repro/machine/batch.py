"""Batch-fused whole-matrix candidate evaluation: one array program per matrix.

The sweep evaluates ~105 candidates per matrix, and PR 3's :class:`SimPlan`
already memoizes everything that is shared *within* one candidate's cells.
What remained Python-shaped was the work *across* candidates:

* every block shape re-analysed the same nonzero pattern from scratch
  (``bcsr_block_stats`` / ``bcsd_block_stats`` are ~15 full passes over the
  nnz-sized index arrays each, plus a stable argsort for ``r > 1``), and
* every (candidate, precision, threads) cell assembled its scalar timing
  terms in a separate Python-level ``simulate`` call.

This module turns both into array programs:

:func:`plan_structures` is the **fused structural planning pass**: one call
analyses *all* requested blockings of a matrix.  The key observation is
that the simulator consumes only block *cardinalities* — every cost on the
x-resident evaluation path (``working_set``, ``block_row_cycles``,
``stored_per_block_row``, the partitioner) is pointer-diff / count
arithmetic; column-index *values* are read only by the x-miss estimator
(out-of-cache matrices) and the kernels.  So the pass computes the
cardinalities eagerly by *sparse coarsening*: for an ``r x c`` blocking,
the count of nonzeros per block is the single C-level sparse product
``R_r @ A @ C_c`` where ``A`` is the 0/1 pattern in CSR and ``R_r`` /
``C_c`` are the row/column aggregation maps; diagonal blockings coarsen a
column-shifted pattern (``d = col - row``) the same way, and ``R_r @ A``
is shared across widths of one height.  Index values (block columns,
diagonal starts, decomposition-remainder columns) are materialized
*lazily* on first access, reproducing the per-call converters' arrays
bit-for-bit.  The decomposed variants' CSR remainders are derived
arithmetically (``nnz_per_row - c * full_blocks_per_block_row``).  The
outputs are ordinary format objects (lazily-materializing subclasses),
**bit-identical** (array-for-array) to what ``build_candidate`` constructs
once read — the per-call converters remain the executable specification,
pinned by the equivalence tests.

:class:`MatrixProgram` is the **batched cell evaluator**: it stacks every
per-cell scalar of ``SimPlan.run`` and of the MEM/MEMCOMP/OVERLAP
predictors — working sets, streaming-loss factors, per-part exposure
fractions, segment sums, x-miss counts, profiled block times — into arrays
over a *cells axis* and evaluates all candidates of one (precision,
threads) plane with a handful of vectorized reductions.  Bit-identity holds
because every float operation is elementwise with the same operands in the
same order as the scalar path: IEEE 754 arithmetic is deterministic per
element, NumPy float64 elementwise ops are exactly Python-float ops, and
the only reductions used (``max``) are exact.  Order-sensitive float
accumulations — the per-structure ``cumsum`` segment sums — are *not*
re-associated: they stay per-(structure, impl, threads) inside the shared
:class:`SimPlan` memos.

``executor.simulate`` / ``SimPlan.run`` remain the per-call executable
spec; ``repro sweep --compare-batched`` diffs the two paths record by
record.  See ``docs/batching.md`` for the layout and the bit-identity
argument.

This module is deterministic model code: it must not read the wall clock
(lint rule ``determinism``).  Phase timings are charged through an injected
``clock`` callable supplied by the harness.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np
from scipy import sparse as _sp

from ..core.candidates import Candidate, unique_structures
from ..core.selection import CandidateResult, build_candidate
from ..errors import ModelError
from ..formats.base import SparseFormat
from ..formats.bcsd import BCSDMatrix
from ..formats.bcsr import BCSRMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.decomposed import DecomposedMatrix
from ..formats.vbl import VBLMatrix
from ..types import VBL_MAX_BLOCK, BlockShape, Impl, Precision
from .machine import MachineModel
from .plan import SimPlan, SimResult, get_plan

__all__ = ["plan_structures", "MatrixProgram"]

#: Model names whose batched predictors this module implements.
_MODEL_NAMES = ("mem", "memcomp", "overlap")
_PROFILED_MODELS = ("memcomp", "overlap")

#: Pattern sizes must fit scipy's 32-bit index machinery comfortably.
_INT32_LIMIT = 2**31


# --------------------------------------------------------------------------- #
# The fused structural planning pass
# --------------------------------------------------------------------------- #

def _ptr_from_counts(counts: np.ndarray, n_rows: int) -> np.ndarray:
    """Same construction as the per-format converters (bincount + cumsum)."""
    ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr


class _Coarse:
    """One blocking's coarse count matrix, shared by its consumers.

    ``mat[I, J]`` is the number of matrix nonzeros falling in block
    ``(I, J)`` — a CSR over block coordinates produced by one sparse
    matmat.  Its indices are unsorted within rows until :meth:`sorted`
    is first needed; the in-place sort reorders the counts alongside, so
    eager consumers (cardinalities, full-block counts per row) read the
    matmul order and lazy ones the converters' sorted order.  Both
    orders agree on everything row-granular.
    """

    __slots__ = ("mat", "_sorted")

    def __init__(self, mat) -> None:
        self.mat = mat
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None

    def sorted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted is None:
            self.mat.sort_indices()
            self._sorted = (self.mat.indices, self.mat.data)
        return self._sorted

    def block_rows(self) -> np.ndarray:
        """Block-row index of every block, in sorted == matmul order."""
        m = self.mat
        return np.repeat(
            np.arange(m.shape[0], dtype=np.int64), np.diff(m.indptr)
        )


def _full_rows(co: _Coarse, full_count: int) -> tuple[int, np.ndarray]:
    """(number, per-block-row count) of exactly-full blocks.

    Counted by differencing a running sum of the full-block mask at the
    row-pointer boundaries — no per-block row lookup.
    """
    m = co.mat
    csum = np.zeros(m.data.shape[0] + 1, dtype=np.int64)
    np.cumsum(m.data == full_count, out=csum[1:])
    per_row = csum[m.indptr[1:]] - csum[m.indptr[:-1]]
    return int(csum[-1]), per_row


def _sorted_bcol_thunk(co: _Coarse) -> Callable[[], np.ndarray]:
    def thunk() -> np.ndarray:
        return co.sorted()[0]

    return thunk


def _full_bcol_thunk(co: _Coarse, full_count: int) -> Callable[[], np.ndarray]:
    def thunk() -> np.ndarray:
        idx, cnt = co.sorted()
        return idx[cnt == full_count]

    return thunk


def _diag_j0_thunk(
    co: _Coarse, b: int, nrows: int, full_count: int | None = None
) -> Callable[[], np.ndarray]:
    """BCSD block start columns: ``j0 = d + seg*b`` with ``d`` the stored,
    shifted diagonal index.  Sorted-by-(seg, d) equals the converter's
    sorted-by-(seg, j0) because ``j0`` is monotone in ``d`` within a
    segment."""

    def thunk() -> np.ndarray:
        idx, cnt = co.sorted()
        j0 = idx.astype(np.int64) + (co.block_rows() * b - (nrows - 1))
        return j0 if full_count is None else j0[cnt == full_count]

    return thunk


def _rect_rest_thunk(
    co: _Coarse, rows: np.ndarray, cols: np.ndarray, r: int, c: int
) -> Callable[[], np.ndarray]:
    """Columns of the nonzeros outside full ``r x c`` blocks, in canonical
    order: each element looks up its own block's count by binary search on
    the (block row, block col) key, which is globally sorted."""

    def thunk() -> np.ndarray:
        idx, cnt = co.sorted()
        n_bcols = np.int64(co.mat.shape[1])
        bkey = co.block_rows() * n_bcols + idx
        ekey = (rows // r) * n_bcols + cols // c
        return cols[cnt[np.searchsorted(bkey, ekey)] != r * c]

    return thunk


def _diag_rest_thunk(
    co: _Coarse, rows: np.ndarray, cols: np.ndarray, b: int,
    nrows: int, ncols: int,
) -> Callable[[], np.ndarray]:
    def thunk() -> np.ndarray:
        idx, cnt = co.sorted()
        span = np.int64(nrows + ncols - 1)
        bkey = co.block_rows() * span + idx
        ekey = (rows // b) * span + (cols - rows + (nrows - 1))
        return cols[cnt[np.searchsorted(bkey, ekey)] != b]

    return thunk


class _LazyIndexValues:
    """Deferred column-index values for the fused planning pass.

    The x-resident evaluation path never reads index *values* — every
    cost it consumes is pointer-diff / count arithmetic — so the fused
    pass stores only a thunk that reproduces the per-call converter's
    array bit-for-bit and materializes it on first access (the x-miss
    estimator of out-of-cache matrices, the kernels, the equivalence
    tests)."""

    _thunk: Callable[[], np.ndarray] | None

    def _materialize(self, expected_len: int) -> np.ndarray:
        cached = self.__dict__.get("_lazy_values")
        if cached is None:
            cached = np.asarray(self._thunk(), dtype=np.int64)
            if cached.shape[0] != expected_len:
                raise ModelError(
                    f"lazy index materialization produced "
                    f"{cached.shape[0]} entries, expected {expected_len}"
                )
            self.__dict__["_lazy_values"] = cached
            self._thunk = None
        return cached


class _LazyCSR(CSRMatrix, _LazyIndexValues):
    """Structure-only CSR whose ``col_ind`` materializes on first read.

    Bypasses the parent constructor (its bracket checks read ``col_ind``);
    the planning arithmetic guarantees ``row_ptr[-1] == nnz`` exactly.
    """

    def __init__(self, nrows, ncols, row_ptr, nnz, thunk) -> None:
        SparseFormat.__init__(self, int(nrows), int(ncols), int(nnz))
        self.row_ptr = row_ptr
        self.values = None
        self._thunk = thunk

    @property
    def col_ind(self) -> np.ndarray:
        return self._materialize(self.nnz)


class _LazyBCSR(BCSRMatrix, _LazyIndexValues):
    """Structure-only BCSR whose ``bcol_ind`` materializes on first read."""

    def __init__(
        self, nrows, ncols, block, brow_ptr, nnz, n_blocks, thunk
    ) -> None:
        SparseFormat.__init__(self, int(nrows), int(ncols), int(nnz))
        self.block = block
        self.brow_ptr = brow_ptr
        self.bval = None
        self._n_blocks = int(n_blocks)
        self._thunk = thunk

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def bcol_ind(self) -> np.ndarray:
        return self._materialize(self._n_blocks)


class _LazyBCSD(BCSDMatrix, _LazyIndexValues):
    """Structure-only BCSD whose ``bcol_ind`` materializes on first read."""

    def __init__(self, nrows, ncols, b, brow_ptr, nnz, n_blocks, thunk) -> None:
        SparseFormat.__init__(self, int(nrows), int(ncols), int(nnz))
        self.b = int(b)
        self.brow_ptr = brow_ptr
        self.bval = None
        self._n_blocks = int(n_blocks)
        self._thunk = thunk

    @property
    def n_blocks(self) -> int:
        return self._n_blocks

    @property
    def bcol_ind(self) -> np.ndarray:
        return self._materialize(self._n_blocks)


def _vbl_fused(
    coo: COOMatrix, nnz_per_row: np.ndarray, row_ptr: np.ndarray
) -> VBLMatrix:
    """``VBLMatrix.from_coo(coo, with_values=False)``, with the 255-element
    run splitting done per *run* instead of per element (identical arrays;
    the converter remains the spec, pinned by the equivalence tests)."""
    rows, cols, n = coo.rows, coo.cols, coo.nnz
    brk = np.empty(n, dtype=bool)
    brk[0] = True
    np.not_equal(rows[1:], rows[:-1], out=brk[1:])
    brk[1:] |= cols[1:] != (cols[:-1] + 1)
    run_first = np.flatnonzero(brk)
    sizes0 = np.diff(run_first, append=n)
    if sizes0.max() > VBL_MAX_BLOCK:
        nsplit = -(-sizes0 // VBL_MAX_BLOCK)
        total = int(nsplit.sum())
        base = np.repeat(run_first, nsplit)
        k = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(nsplit) - nsplit, nsplit
        )
        first_idx = base + k * VBL_MAX_BLOCK
    else:
        first_idx = run_first
    bcol_ind = cols[first_idx]
    sizes = np.diff(first_idx, append=n).astype(np.uint8)
    block_row_ptr = _ptr_from_counts(
        np.bincount(rows[first_idx], minlength=coo.nrows), coo.nrows
    )
    return VBLMatrix(
        coo.nrows, coo.ncols, row_ptr, bcol_ind, sizes, block_row_ptr, None
    )


def plan_structures(
    coo: COOMatrix,
    structures: Iterable[tuple[str, tuple[int, int] | int | None]],
    *,
    timings: dict | None = None,
    clock: Callable[[], float] | None = None,
) -> dict[tuple, SparseFormat]:
    """Build every requested ``(kind, block)`` structure in one fused pass.

    Returns a dict usable as the sweep's ``fmt_cache``.  Array-for-array
    identical to :func:`repro.core.selection.build_candidate` run per
    structure (the equivalence tests pin this).  ``timings``/``clock``
    charge the coarsening to ``"stats"`` and the object assembly to
    ``"convert"``, mirroring the per-call path's phase accounting.
    """
    structures = list(dict.fromkeys(structures))
    out: dict[tuple, SparseFormat] = {}
    if coo.nnz == 0 or max(coo.nrows, coo.ncols, coo.nnz) >= _INT32_LIMIT:
        # Degenerate or >int32 patterns: nothing to coarsen (or scipy's
        # 32-bit fast path is off the table); defer to the per-structure
        # builders (identical by construction).
        for kind, block in structures:
            out[(kind, block)] = build_candidate(
                coo, Candidate(kind, block, Impl.SCALAR)
            )
        return out

    now = clock if (clock is not None and timings is not None) else None

    def charge(phase: str, t0: float) -> float:
        t1 = now()
        timings[phase] = timings.get(phase, 0.0) + t1 - t0
        return t1

    rows, cols, n = coo.rows, coo.cols, coo.nnz
    nrows, ncols = coo.nrows, coo.ncols

    t0 = now() if now else 0.0
    nnz_per_row = np.bincount(rows, minlength=nrows)
    row_ptr = _ptr_from_counts(nnz_per_row, nrows)

    rect_shapes = {b for k, b in structures if k in ("bcsr", "bcsr_dec")}
    diag_sizes = {b for k, b in structures if k in ("bcsd", "bcsd_dec")}

    # ---- coarsen: one sparse matmat per blocking, R_r @ A shared ---------- #
    coarse: dict[tuple, _Coarse] = {}
    if rect_shapes or diag_sizes:
        ones = np.ones(n, dtype=np.int32)
        indptr32 = row_ptr.astype(np.int32)
        A = _sp.csr_matrix(
            (ones, cols.astype(np.int32), indptr32),
            shape=(nrows, ncols), copy=False,
        )
        heights = {r for r, _ in rect_shapes if r > 1} | {
            b for b in diag_sizes if b > 1
        }
        row_ones = np.ones(nrows, dtype=np.int32)
        row_idx = np.arange(nrows, dtype=np.int32)
        aggregate = {}
        for h in heights:
            n_h = -(-nrows // h)
            ptr = np.minimum(
                np.arange(n_h + 1, dtype=np.int64) * h, nrows
            ).astype(np.int32)
            aggregate[h] = _sp.csr_matrix(
                (row_ones, row_idx, ptr), shape=(n_h, nrows), copy=False
            )
        if rect_shapes:
            col_ones = np.ones(ncols, dtype=np.int32)
            col_ptr = np.arange(ncols + 1, dtype=np.int32)
            group = {}
            for c in {c for _, c in rect_shapes if c > 1}:
                group[c] = _sp.csr_matrix(
                    (col_ones, (np.arange(ncols, dtype=np.int32) // c), col_ptr),
                    shape=(ncols, -(-ncols // c)), copy=False,
                )
            for r in sorted({r for r, _ in rect_shapes}):
                coarse_rows = (aggregate[r] @ A) if r > 1 else A
                for c in sorted({c for rr, c in rect_shapes if rr == r}):
                    mat = (coarse_rows @ group[c]) if c > 1 else coarse_rows
                    coarse[("rect", (r, c))] = _Coarse(mat)
        if diag_sizes:
            # Shift columns so every diagonal gets its own coarse column:
            # block (segment s, diagonal d) <-> entry (s, d + nrows - 1).
            shifted = _sp.csr_matrix(
                (ones, (cols - rows + (nrows - 1)).astype(np.int32), indptr32),
                shape=(nrows, nrows + ncols - 1), copy=False,
            )
            for b in sorted(diag_sizes):
                mat = (aggregate[b] @ shifted) if b > 1 else shifted
                coarse[("diag", b)] = _Coarse(mat)
    if now:
        t0 = charge("stats", t0)

    # ---- assemble the format objects -------------------------------------- #
    for kind, block in structures:
        if kind == "csr":
            out[(kind, block)] = CSRMatrix(nrows, ncols, row_ptr, cols, None)
        elif kind == "vbl":
            out[(kind, block)] = _vbl_fused(coo, nnz_per_row, row_ptr)
        elif kind == "bcsr":
            r, c = block
            co = coarse[("rect", block)]
            out[(kind, block)] = _LazyBCSR(
                nrows, ncols, BlockShape(r, c),
                co.mat.indptr.astype(np.int64), n,
                co.mat.indices.shape[0], _sorted_bcol_thunk(co),
            )
        elif kind == "bcsd":
            b = block
            co = coarse[("diag", b)]
            out[(kind, block)] = _LazyBCSD(
                nrows, ncols, b, co.mat.indptr.astype(np.int64), n,
                co.mat.indices.shape[0], _diag_j0_thunk(co, b, nrows),
            )
        elif kind == "bcsr_dec":
            r, c = block
            co = coarse[("rect", block)]
            rc = r * c
            n_brows = co.mat.shape[0]
            n_full, full_per_brow = _full_rows(co, rc)
            parts: list[SparseFormat] = []
            if n_full:
                parts.append(_LazyBCSR(
                    nrows, ncols, BlockShape(r, c),
                    _ptr_from_counts(full_per_brow, n_brows),
                    n_full * rc, n_full, _full_bcol_thunk(co, rc),
                ))
            n_rest = n - n_full * rc
            if n_rest or not parts:
                if n_full:
                    # A full r x c block holds c elements of each of its
                    # r rows, so the remainder's per-row counts are plain
                    # integer arithmetic.
                    rest_per_row = (
                        nnz_per_row - c * np.repeat(full_per_brow, r)[:nrows]
                    )
                    parts.append(_LazyCSR(
                        nrows, ncols, _ptr_from_counts(rest_per_row, nrows),
                        n_rest, _rect_rest_thunk(co, rows, cols, r, c),
                    ))
                else:
                    parts.append(CSRMatrix(nrows, ncols, row_ptr, cols, None))
            out[(kind, block)] = DecomposedMatrix(
                nrows, ncols, parts, "bcsr_dec", "BCSR-DEC"
            )
        elif kind == "bcsd_dec":
            b = block
            co = coarse[("diag", b)]
            n_segs = co.mat.shape[0]
            n_full, full_per_seg = _full_rows(co, b)
            parts = []
            if n_full:
                parts.append(_LazyBCSD(
                    nrows, ncols, b,
                    _ptr_from_counts(full_per_seg, n_segs),
                    n_full * b, n_full,
                    _diag_j0_thunk(co, b, nrows, full_count=b),
                ))
            n_rest = n - n_full * b
            if n_rest or not parts:
                if n_full:
                    # A full diagonal block holds 1 element of each of its
                    # b segment rows.
                    rest_per_row = (
                        nnz_per_row - np.repeat(full_per_seg, b)[:nrows]
                    )
                    parts.append(_LazyCSR(
                        nrows, ncols, _ptr_from_counts(rest_per_row, nrows),
                        n_rest, _diag_rest_thunk(co, rows, cols, b, nrows, ncols),
                    ))
                else:
                    parts.append(CSRMatrix(nrows, ncols, row_ptr, cols, None))
            out[(kind, block)] = DecomposedMatrix(
                nrows, ncols, parts, "bcsd_dec", "BCSD-DEC"
            )
        else:
            raise ModelError(f"cannot plan structure kind {kind!r}")
    if now:
        charge("convert", t0)
    return out


# --------------------------------------------------------------------------- #
# The batched cell evaluator
# --------------------------------------------------------------------------- #

def _x_span(cand: Candidate) -> int | None:
    """Upper bound on how far past the matrix's largest column index the
    candidate's x-access streams can reach, or ``None`` for kinds without
    a known bound.

    Every stream start is anchored at (or below) some stored element's
    column: CSR/CSR-DU starts *are* element columns, a 1D-VBL run ends on
    its last element's column, an aligned ``r x c`` block starts at
    ``(col // c) * c`` and touches ``c`` columns, and a diagonal block of
    size ``b`` starts at the column of its first stored element or
    earlier and touches ``b``.  So the largest line id any part's stream
    can reach is ``(max_col + span - 1) // line_elems``.
    """
    if cand.kind in ("csr", "csr_du", "vbl"):
        return 1
    if cand.kind in ("bcsr", "bcsr_dec", "ubcsr"):
        return int(cand.block[1])  # (r, c) tuple or BlockShape
    if cand.kind in ("bcsd", "bcsd_dec"):
        return int(cand.block)
    return None


class MatrixProgram:
    """All sweep cells of one matrix as a vectorized array program.

    Built once per matrix: the fused planning pass constructs every
    candidate structure, and :meth:`evaluate` batch-evaluates one
    (precision, threads) plane of cells — the candidate loop is an array
    axis.  The per-structure :class:`SimPlan` memos (row costs, partitions,
    ``cumsum`` segment sums, x-miss estimates) are shared with the per-call
    path, so the two paths agree bit-for-bit by construction everywhere the
    arithmetic is order-sensitive.
    """

    def __init__(
        self,
        coo: COOMatrix,
        machine: MachineModel,
        candidates: Sequence[Candidate],
        *,
        profile_cache=None,
        timings: dict | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.coo = coo
        self.machine = machine
        self.profile_cache = profile_cache
        self._timings = timings
        self._clock = clock if timings is not None else None
        self.fmt_cache = plan_structures(
            coo, unique_structures(candidates), timings=timings, clock=clock
        )
        # Largest column index any candidate structure can anchor an
        # x access at — feeds the whole-matrix x-miss shortcut below.
        self._max_col = int(coo.cols.max()) if coo.nnz else -1

    def _charge(self, phase: str, t0: float) -> None:
        if self._clock is not None:
            self._timings[phase] = (
                self._timings.get(phase, 0.0) + self._clock() - t0
            )

    def _plan(self, cand: Candidate, precision: Precision) -> SimPlan:
        return get_plan(
            self.fmt_cache[(cand.kind, cand.block)], self.machine, precision
        )

    def _zero_misses(self, cand: Candidate, plan: SimPlan) -> bool:
        """Whole-matrix form of the plan's exact x-miss shortcuts.

        ``_estimate_part_misses`` returns 0 for every part whenever the
        budget is non-positive, the stream is empty, or the largest
        reachable cache line fits the budget — and :func:`_x_span` bounds
        that largest line for *all* parts of the candidate at once from
        the matrix's max column.  When the bound holds,
        ``plan.total_misses()`` is provably 0, so returning 0 without
        calling it is bit-identical — and never forces a lazily-planned
        structure to materialize its index values.  When it does not
        hold (or the kind is unknown), the caller falls back to
        ``total_misses()`` itself.
        """
        if self._max_col < 0 or plan.budget <= 0:
            return True
        span = _x_span(cand)
        if span is None:
            return False
        max_line = (self._max_col + span - 1) // plan.line_elems
        return max_line + 1 <= plan.budget

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        precision: Precision | str,
        nthreads: int,
        candidates: Sequence[Candidate],
        *,
        models: Iterable[str] = (),
    ) -> list[CandidateResult]:
        """Evaluate one (precision, threads) plane of cells, vectorized.

        Returns one :class:`~repro.core.selection.CandidateResult` per
        candidate, in candidate order; ``models`` names the predictors to
        attach (MEMCOMP/OVERLAP skip candidates they do not cover, as in
        the paper).  Bit-identical to per-cell ``SimPlan.run`` plus
        ``MODELS[...].predict``.
        """
        machine = self.machine
        precision = Precision.coerce(precision)
        if nthreads < 1 or nthreads > machine.max_threads:
            raise ModelError(
                f"nthreads={nthreads} outside 1..{machine.max_threads} "
                f"for machine {machine.name!r}"
            )
        t0 = self._clock() if self._clock else 0.0
        plans = [self._plan(cand, precision) for cand in candidates]
        ncells = len(plans)
        costs = machine.costs

        # --- the memory axis: ws / stream bandwidth (+ streaming loss) --- #
        ws_int = np.array([p.ws for p in plans], dtype=np.int64)
        ws_f = ws_int.astype(np.float64)
        bw = np.where(
            ws_int <= machine.l1.size_bytes,
            machine.l1.bandwidth_bps,
            np.where(
                ws_int <= machine.l2.size_bytes,
                machine.l2.bandwidth_bps,
                machine.memory_bandwidth(nthreads),
            ),
        )
        t_mem = ws_f / bw
        factor = np.array(
            [1.0 if p.mem_factor is None else p.mem_factor for p in plans]
        )
        has_factor = np.array([p.mem_factor is not None for p in plans])
        t_mem = np.where(has_factor, t_mem * factor, t_mem)

        # --- the compute axis: per-part exposure, stacked over cells ----- #
        overlappable = np.zeros((ncells, nthreads))
        exposed = np.zeros((ncells, nthreads))
        max_parts = max((len(p.parts) for p in plans), default=0)
        for slot in range(max_parts):
            idx, etas, per_thread = [], [], []
            for j, (cand, plan) in enumerate(zip(candidates, plans)):
                if slot >= len(plan.parts):
                    continue
                part = plan.parts[slot]
                part_impl = costs.effective_impl(part, cand.impl)
                idx.append(j)
                etas.append(machine.eta(part_impl))
                per_thread.append(
                    plan.segment_sums(slot, part, part_impl, nthreads)
                )
            sel = np.array(idx, dtype=np.int64)
            eta = np.array(etas, dtype=np.float64)[:, None]
            pt = np.stack(per_thread)
            overlappable[sel] += (1.0 - eta) * pt
            exposed[sel] += eta * pt

        startup = np.array([p.startup for p in plans], dtype=np.float64)
        exposed = exposed + startup[:, None]
        t_overlappable = overlappable.max(axis=1) / machine.clock_hz
        exposed_s = exposed.max(axis=1) / machine.clock_hz

        # --- the latency axis -------------------------------------------- #
        misses = np.array(
            [
                0
                if p.x_resident or self._zero_misses(cand, p)
                else p.total_misses()
                for cand, p in zip(candidates, plans)
            ],
            dtype=np.int64,
        )
        t_lat = misses / nthreads * machine.effective_latency_s()

        t_total = np.maximum(t_mem, t_overlappable) + exposed_s + t_lat
        t_comp = t_overlappable + exposed_s
        self._charge("simulate", t0)

        cells = [
            CandidateResult(
                candidate=cand,
                ws_bytes=plan.ws,
                padding_ratio=plan.fmt.padding_ratio,
                n_blocks=plan.fmt.n_blocks,
                sim=SimResult(
                    t_total=float(t_total[j]),
                    t_mem=float(t_mem[j]),
                    t_comp=float(t_comp[j]),
                    t_comp_exposed=float(exposed_s[j]),
                    t_latency=float(t_lat[j]),
                    ws_bytes=plan.ws,
                    x_misses=int(misses[j]),
                    nthreads=nthreads,
                    precision=precision,
                    impl=cand.impl,
                ),
            )
            for j, (cand, plan) in enumerate(zip(candidates, plans))
        ]
        models = tuple(models)
        if models:
            self._predict(cells, plans, precision, nthreads, models, ws_f)
        return cells

    # ------------------------------------------------------------------ #
    def _predict(
        self,
        cells: list[CandidateResult],
        plans: list[SimPlan],
        precision: Precision,
        nthreads: int,
        models: tuple[str, ...],
        ws_f: np.ndarray,
    ) -> None:
        """Attach MEM/MEMCOMP/OVERLAP predictions, vectorized over cells."""
        machine = self.machine
        unknown = set(models) - set(_MODEL_NAMES)
        if unknown:
            raise ModelError(f"no batched predictor for models {sorted(unknown)}")
        profiled = tuple(m for m in models if m in _PROFILED_MODELS)
        # Fetched before the phase timer starts: the per-cell path
        # calibrates outside its phase windows too.
        profile = self._profile(precision) if profiled else None
        t0 = self._clock() if self._clock else 0.0
        bw = machine.memory_bandwidth(nthreads)
        if "mem" in models:
            pred_mem = ws_f / bw
        covered: list[int] = []
        if profiled:
            # MEMCOMP/OVERLAP only cover fixed-size blockings (the paper
            # excludes 1D-VBL); a missing or mismatched profile omits their
            # predictions, exactly like the per-cell ModelError path.
            if profile is not None and profile.precision is precision:
                covered = [
                    j for j, p in enumerate(plans)
                    if all(
                        part.block_descriptor()[0] not in ("vbl", "vbr")
                        for part in p.parts
                    )
                ]
        if covered:
            acc = {m: np.zeros(len(covered)) for m in profiled}
            max_parts = max(len(plans[j].parts) for j in covered)
            for slot in range(max_parts):
                sel, ws_i, nb, t_b, nof = [], [], [], [], []
                for i, j in enumerate(covered):
                    plan = plans[j]
                    if slot >= len(plan.parts):
                        continue
                    part = plan.parts[slot]
                    part_impl = machine.costs.effective_impl(
                        part, cells[j].candidate.impl
                    )
                    sel.append(i)
                    ws_i.append(
                        part.working_set_matrix_only(precision)
                        + part.vector_bytes(precision)
                    )
                    nb.append(part.n_blocks)
                    t_b.append(profile.block_time(part, part_impl))
                    if "overlap" in profiled:
                        nof.append(profile.nof_factor(part, part_impl))
                sel_a = np.array(sel, dtype=np.int64)
                ws_a = np.array(ws_i, dtype=np.float64)
                nb_a = np.array(nb, dtype=np.float64)
                tb_a = np.array(t_b, dtype=np.float64)
                if "memcomp" in acc:
                    acc["memcomp"][sel_a] += ws_a / bw + nb_a * tb_a
                if "overlap" in acc:
                    nof_a = np.array(nof, dtype=np.float64)
                    acc["overlap"][sel_a] += ws_a / bw + nof_a * nb_a * tb_a
        for m in models:
            if m == "mem":
                for j, cell in enumerate(cells):
                    cell.predictions[m] = float(pred_mem[j])
            elif covered:
                for i, j in enumerate(covered):
                    cells[j].predictions[m] = float(acc[m][i])
        self._charge("models", t0)

    def _profile(self, precision: Precision):
        from ..core.profiling import DEFAULT_PROFILE_CACHE

        cache = (
            self.profile_cache
            if self.profile_cache is not None
            else DEFAULT_PROFILE_CACHE
        )
        return cache.get(self.machine, precision)
