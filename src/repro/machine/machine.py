"""The machine description consumed by the execution simulator.

A :class:`MachineModel` bundles everything the simulator knows about the
hardware: the cache hierarchy with residency-dependent streaming bandwidth,
the memory bandwidth saturation curve across cores, the latency of a cache
miss that hardware prefetching failed to hide, the fraction of kernel
compute that cannot overlap with memory transfers, and the per-kernel cost
tables of :class:`~repro.machine.costs.KernelCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from ..errors import ModelError
from ..types import Impl
from .costs import KernelCostModel

__all__ = ["CacheLevel", "MachineModel"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data-cache hierarchy."""

    size_bytes: int
    line_bytes: int
    #: Sustainable streaming bandwidth when the working set is resident.
    bandwidth_bps: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ModelError("cache sizes must be positive")
        if self.bandwidth_bps <= 0:
            raise ModelError("cache bandwidth must be positive")


@dataclass(frozen=True)
class MachineModel:
    """A complete analytic description of the simulated platform."""

    name: str
    clock_hz: float
    l1: CacheLevel
    l2: CacheLevel
    #: Aggregate main-memory streaming bandwidth per active core count.
    #: Missing counts fall back to the largest configured count (saturation).
    mem_bandwidth_bps: Mapping[int, float]
    #: Full cost of one unprefetched main-memory access.
    mem_latency_s: float
    #: Fraction of miss latency hidden by out-of-order overlap of misses.
    latency_hide: float
    #: Fraction of kernel compute that cannot overlap with memory transfers
    #: (dependency stalls, address generation), per implementation.
    eta_exposed: Mapping[Impl, float]
    #: Fraction of the L2 available for input-vector reuse while the matrix
    #: streams through the cache.
    x_cache_fraction: float
    #: Peak fraction of streaming efficiency a decomposed method loses to
    #: its multiple passes ("no temporal or spatial locality between the
    #: different k SpMV operations" — paper Section III).  Scaled by how
    #: balanced the decomposition is: a degenerate split (one pass holds
    #: nearly everything) interleaves almost nothing and loses almost
    #: nothing.
    dec_overlap_loss: float = 0.04
    costs: KernelCostModel = field(default_factory=KernelCostModel)
    max_threads: int = 4

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ModelError("clock must be positive")
        if not self.mem_bandwidth_bps:
            raise ModelError("mem_bandwidth_bps must define at least 1 thread")
        if not 0.0 <= self.latency_hide <= 1.0:
            raise ModelError("latency_hide must be in [0, 1]")
        for impl in (Impl.SCALAR, Impl.SIMD):
            eta = self.eta_exposed.get(impl)
            if eta is None or not 0.0 <= eta <= 1.0:
                raise ModelError(f"eta_exposed[{impl}] must be in [0, 1]")
        if not 0.0 < self.x_cache_fraction <= 1.0:
            raise ModelError("x_cache_fraction must be in (0, 1]")
        if not 0.0 <= self.dec_overlap_loss < 1.0:
            raise ModelError("dec_overlap_loss must be in [0, 1)")

    # ------------------------------------------------------------------ #
    def memory_bandwidth(self, nthreads: int = 1) -> float:
        """Aggregate main-memory bandwidth with ``nthreads`` active cores."""
        if nthreads < 1:
            raise ModelError("nthreads must be >= 1")
        table = self.mem_bandwidth_bps
        if nthreads in table:
            return table[nthreads]
        # Saturation: fall back to the largest configured count below, or
        # the overall maximum for oversubscription.
        below = [k for k in table if k <= nthreads]
        key = max(below) if below else max(table)
        return table[key]

    def stream_bandwidth(self, ws_bytes: int, nthreads: int = 1) -> float:
        """Streaming bandwidth for a working set of ``ws_bytes``.

        Warm steady state: a working set resident in L1/L2 streams at that
        cache's bandwidth instead of main memory's.  This is what makes the
        paper's profiling methodology work — the small dense profiling
        matrix "fits in the L1 cache", so its t_mem is negligible and the
        measured time is (almost) pure compute.
        """
        if ws_bytes <= self.l1.size_bytes:
            return self.l1.bandwidth_bps
        if ws_bytes <= self.l2.size_bytes:
            return self.l2.bandwidth_bps
        return self.memory_bandwidth(nthreads)

    def decomposition_mem_factor(self, ws_shares: "list[float]") -> float:
        """Streaming slowdown of a k-pass decomposed SpMV.

        ``ws_shares`` are the per-pass fractions of the total working set.
        The loss peaks for balanced splits; even a lopsided decomposition
        pays a small floor (streams restart, x/y are re-walked between passes).
        """
        k = len(ws_shares)
        if k <= 1:
            return 1.0
        concentration = sum(s * s for s in ws_shares)
        balance = (1.0 - concentration) / (1.0 - 1.0 / k)
        balance = max(min(balance, 1.0), 0.0)
        return 1.0 + self.dec_overlap_loss * (0.15 + 0.85 * balance)

    def effective_latency_s(self) -> float:
        """Latency charged per unhidden input-vector miss."""
        return self.mem_latency_s * (1.0 - self.latency_hide)

    def eta(self, impl: Impl | str) -> float:
        return self.eta_exposed[Impl.coerce(impl)]

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    # ------------------------------------------------------------------ #
    def with_overrides(self, **kwargs) -> "MachineModel":
        """A copy with some fields replaced (ablation studies)."""
        return replace(self, **kwargs)
