"""STREAM-style bandwidth measurement, simulated and real.

The paper calibrates its MEM model with the STREAM benchmark (3.36 GiB/s on
the testbed).  :func:`simulated_stream` reads the machine model's bandwidth
curve back out through a triad-shaped workload, verifying the simulator is
self-consistent; :func:`measure_host_stream` runs an actual NumPy triad on
the host — used by an example to show how a real machine would be
calibrated, *not* by the reproduction (pure-Python kernel timing is not
architecture-representative; see DESIGN.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .machine import MachineModel

__all__ = ["StreamResult", "simulated_stream", "measure_host_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Bandwidth of a triad ``a = b + s * c`` over arrays of ``n`` doubles."""

    bytes_moved: int
    seconds: float

    @property
    def bandwidth_bps(self) -> float:
        return self.bytes_moved / self.seconds if self.seconds > 0 else 0.0

    @property
    def bandwidth_gib(self) -> float:
        return self.bandwidth_bps / 1024**3


def simulated_stream(
    machine: MachineModel, n: int = 4_000_000, nthreads: int = 1
) -> StreamResult:
    """Triad bandwidth the machine model would report (3 arrays, 24 B/elem)."""
    bytes_moved = 3 * 8 * n
    bw = machine.stream_bandwidth(bytes_moved, nthreads)
    return StreamResult(bytes_moved=bytes_moved, seconds=bytes_moved / bw)


def measure_host_stream(n: int = 4_000_000, repeats: int = 5) -> StreamResult:
    """Measure a NumPy triad on the host machine (best of ``repeats``)."""
    rng = np.random.default_rng(1234)
    b = rng.standard_normal(n)
    c = rng.standard_normal(n)
    a = np.empty_like(b)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(c, 3.0, out=a)
        a += b
        best = min(best, time.perf_counter() - t0)
    return StreamResult(bytes_moved=3 * 8 * n, seconds=best)
