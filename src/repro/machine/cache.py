"""Cache models for the input-vector access stream.

Three models live here:

* :func:`estimate_stream_misses` — the fast *working-set window* estimator
  the execution simulator uses.  It walks the access stream in windows of
  roughly one cache's worth of lines and counts, per window, the lines that
  were not touched in the previous window.  Regular (banded, blocked)
  streams revisit a small set of lines per window and miss almost never;
  uniformly random or power-law streams touch fresh lines constantly and
  miss heavily — exactly the distinction the paper draws between matrices
  that are bandwidth-bound and the latency-bound ones (#12, #14, #15, #28).
  The stream is treated as cyclic (steady state over 100 iterations, as the
  paper measures): the "previous window" of the first window is the last
  window of the stream.  The implementation is a single vectorized
  sort-based sweep over ``(window, line)`` incidence pairs — no Python loop
  over windows.

* :func:`estimate_stream_misses_windowed` — the original per-window Python
  loop (``np.unique`` per window, ``np.isin`` per window pair), kept as the
  executable specification.  The test suite asserts the vectorized
  estimator agrees with it exactly on randomized streams, and the sweep
  benchmark uses it as the pre-optimization baseline.

* :class:`LRUCache` — an exact, tiny, deliberately slow fully-associative
  LRU simulator used by the test suite to sanity-check the estimators'
  ordering properties on small streams.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = [
    "estimate_stream_misses",
    "estimate_stream_misses_windowed",
    "LRUCache",
    "x_budget_lines",
]


def x_budget_lines(
    cache_bytes: int, line_bytes: int, x_cache_fraction: float
) -> int:
    """Number of cache lines the streaming SpMV leaves available to x."""
    return max(int(cache_bytes * x_cache_fraction) // line_bytes, 1)


def estimate_stream_misses(
    line_ids: np.ndarray,
    budget_lines: int,
    *,
    cyclic: bool = True,
    discount_compulsory: bool = True,
) -> int:
    """Estimate *latency-costing* cache misses of a cyclic access stream.

    Parameters
    ----------
    line_ids:
        Cache-line id of every access, in execution order.
    budget_lines:
        Lines of cache capacity available to this stream.
    cyclic:
        Treat the stream as repeating (steady-state SpMV).  When False the
        first window is charged its compulsory misses.
    discount_compulsory:
        Subtract one miss per distinct line.  Touching each line of x once
        per iteration is ordinary streaming traffic — it is already counted
        in the working set and a forward sweep is prefetch-friendly.  What
        costs latency is *re-fetching* lines that irregular accesses keep
        evicting, i.e. the misses beyond the footprint.
    """
    line_ids = np.asarray(line_ids)
    n = line_ids.shape[0]
    if n == 0 or budget_lines <= 0:
        return 0
    unique_lines = np.unique(line_ids)
    distinct_total = unique_lines.shape[0]
    if distinct_total <= budget_lines:
        # The whole x footprint is cache-resident in steady state.
        return 0
    window = max(int(budget_lines), 1)
    n_windows = -(-n // window)
    # Dense-rank the line ids so a (window, line) pair packs into one int64
    # key without overflow: window < n_windows <= n and rank < distinct <= n.
    ranks = np.searchsorted(unique_lines, line_ids)
    k = np.int64(distinct_total)
    keys = (np.arange(n, dtype=np.int64) // window) * k + ranks
    pairs = np.unique(keys)  # sorted distinct (window, line) incidences
    pair_window = pairs // k
    pair_rank = pairs - pair_window * k
    # A pair misses iff its line was absent from the previous window, i.e.
    # (window - 1, line) is not itself a pair.  The cyclic steady state
    # wraps window 0's predecessor around to the last window.
    prev_keys = (pair_window - 1) * k + pair_rank
    first = pair_window == 0
    if cyclic:
        prev_keys[first] = np.int64(n_windows - 1) * k + pair_rank[first]
    pos = np.searchsorted(pairs, prev_keys)
    present = pairs[np.minimum(pos, pairs.shape[0] - 1)] == prev_keys
    if cyclic:
        misses = int(np.count_nonzero(~present))
    else:
        # The first window is charged its compulsory misses wholesale.
        misses = int(np.count_nonzero(first)) + int(
            np.count_nonzero(~present[~first])
        )
    if discount_compulsory:
        misses = max(misses - distinct_total, 0)
    return misses


def estimate_stream_misses_windowed(
    line_ids: np.ndarray,
    budget_lines: int,
    *,
    cyclic: bool = True,
    discount_compulsory: bool = True,
) -> int:
    """Reference implementation of :func:`estimate_stream_misses`.

    The original per-window Python loop, kept verbatim as the executable
    specification: ``tests/test_cache.py`` asserts the vectorized sweep
    returns exactly the same count on randomized streams, and
    ``benchmarks/bench_sweep.py`` measures against it as the pre-SimPlan
    baseline.  Do not optimize this function.
    """
    line_ids = np.asarray(line_ids)
    n = line_ids.shape[0]
    if n == 0 or budget_lines <= 0:
        return 0
    distinct_total = np.unique(line_ids).shape[0]
    if distinct_total <= budget_lines:
        # The whole x footprint is cache-resident in steady state.
        return 0
    window = max(int(budget_lines), 1)
    n_windows = -(-n // window)
    bounds = [min(k * window, n) for k in range(n_windows + 1)]
    uniques = [
        np.unique(line_ids[bounds[k] : bounds[k + 1]]) for k in range(n_windows)
    ]
    misses = 0
    for k in range(n_windows):
        cur = uniques[k]
        if k == 0:
            if not cyclic:
                misses += cur.shape[0]
                continue
            prev = uniques[-1]
        else:
            prev = uniques[k - 1]
        # Lines touched now but absent from the previous window → misses.
        misses += int(cur.shape[0] - np.isin(cur, prev, assume_unique=True).sum())
    if discount_compulsory:
        misses = max(misses - distinct_total, 0)
    return misses


class LRUCache:
    """Exact fully-associative LRU cache of ``capacity`` lines (test oracle)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Touch ``line``; returns True on hit."""
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        self._lines[line] = None
        if len(self._lines) > self.capacity:
            self._lines.popitem(last=False)
        return False

    def run(self, line_ids: np.ndarray) -> int:
        """Feed a whole stream; returns the miss count."""
        for line in np.asarray(line_ids).tolist():
            self.access(int(line))
        return self.misses
