"""The execution simulator: 'measured' SpMV time on a MachineModel.

This is the substituted testbed.  For a format F on machine M the simulated
steady-state time of one SpMV is assembled from first principles:

    t_real = max(t_mem, (1 - eta) * t_comp) + eta * t_comp + t_lat

* ``t_mem`` — the working set streamed at the residency-appropriate
  bandwidth (L1 / L2 / memory; multicore uses the saturation curve).
* ``t_comp`` — the kernel cost tables summed over blocks and rows.  The
  hardware prefetcher overlaps the fraction ``1 - eta`` of it with memory
  transfers; the exposed fraction ``eta`` (dependency stalls) always adds.
* ``t_lat`` — unhidden latency of input-vector cache misses, from the
  windowed cache model over the format's x-access stream.  This is the
  term *none* of the paper's models account for, which is why the
  latency-bound matrices defeat them (paper Fig. 3 discussion).

Multithreaded runs partition block rows with the paper's padding-aware
static balancing; compute parallelizes, the memory bus saturates, and the
slowest thread sets the pace.

``zero_col_ind=True`` reproduces the paper's custom benchmark that zeroes
the column indices of CSR so every x access hits the same cache line.

:func:`simulate` delegates to the per-candidate plan layer
(:mod:`repro.machine.plan`), which factors everything structure-dependent
out of the per-(impl, threads) call; :func:`simulate_reference` preserves
the original unfactored computation verbatim as the executable
specification — the test suite asserts both produce bit-identical results.
"""

from __future__ import annotations

from ..errors import ModelError
from ..formats.base import SparseFormat
from ..parallel.partition import balanced_partition, stored_per_block_row
from ..types import Impl, Precision
from .cache import estimate_stream_misses_windowed, x_budget_lines
from .machine import MachineModel
from .plan import SimResult, get_plan

__all__ = ["SimResult", "simulate", "simulate_reference"]


def simulate(
    fmt: SparseFormat,
    machine: MachineModel,
    precision: Precision | str = Precision.DP,
    impl: Impl | str = Impl.SCALAR,
    nthreads: int = 1,
    *,
    zero_col_ind: bool = False,
) -> SimResult:
    """Simulated steady-state time of one ``y = A @ x`` with ``fmt``."""
    return get_plan(fmt, machine, precision).run(
        impl, nthreads, zero_col_ind=zero_col_ind
    )


def simulate_reference(
    fmt: SparseFormat,
    machine: MachineModel,
    precision: Precision | str = Precision.DP,
    impl: Impl | str = Impl.SCALAR,
    nthreads: int = 1,
    *,
    zero_col_ind: bool = False,
) -> SimResult:
    """The original per-call simulation path, preserved verbatim.

    Recomputes every structure-dependent quantity on each call and runs the
    windowed-loop miss estimator — exactly the code :func:`simulate` ran
    before the plan layer existed.  Kept as the executable specification
    for the bit-identity tests and as the baseline for
    ``benchmarks/bench_sweep.py``; production code should call
    :func:`simulate`.  Uses a separate x-miss memo key so its timing never
    benefits from plan-path caching (and vice versa).
    """
    precision = Precision.coerce(precision)
    impl = Impl.coerce(impl)
    if nthreads < 1 or nthreads > machine.max_threads:
        raise ModelError(
            f"nthreads={nthreads} outside 1..{machine.max_threads} "
            f"for machine {machine.name!r}"
        )
    costs = machine.costs

    ws = fmt.working_set(precision)
    parts = fmt.submatrices()
    t_mem = ws / machine.stream_bandwidth(ws, nthreads)
    if len(parts) > 1:
        # Decomposed methods lose streaming efficiency to their multiple
        # passes (paper Section III); the loss scales with how balanced the
        # decomposition is.
        shares = [
            (p.working_set_matrix_only(precision) + p.vector_bytes(precision))
            / ws
            for p in parts
        ]
        t_mem *= machine.decomposition_mem_factor(shares)

    # Per-thread compute cycles, part by part; x-miss latency per part.
    overlappable_cycles = [0.0] * nthreads
    exposed_cycles = [0.0] * nthreads
    total_misses = 0
    x_resident = ws <= machine.l2.size_bytes
    line_elems = machine.l2.line_bytes // precision.itemsize
    budget = x_budget_lines(
        machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
    )

    # Pass start-up work (pointer setup, prefetch retrain) cannot overlap.
    startup = costs.pass_startup_cycles * max(len(parts) - 1, 0)
    for part in parts:
        # The exposure fraction belongs to the kernel that actually runs:
        # a CSR remainder of a SIMD decomposition still runs scalar code.
        part_impl = costs.effective_impl(part, impl)
        eta_part = machine.eta(part_impl)
        row_cycles = costs.block_row_cycles(part, part_impl, precision)
        partition = balanced_partition(stored_per_block_row(part), nthreads)
        per_thread = partition.segment_sums(row_cycles)
        for t in range(nthreads):
            overlappable_cycles[t] += (1.0 - eta_part) * float(per_thread[t])
            exposed_cycles[t] += eta_part * float(per_thread[t])
        if x_resident or zero_col_ind:
            continue
        cache = part.__dict__.setdefault("_x_miss_cache_ref", {})
        misses = cache.get((line_elems, budget))
        if misses is None:
            lines = part.x_access_stream().line_ids(line_elems)
            misses = estimate_stream_misses_windowed(lines, budget)
            cache[(line_elems, budget)] = misses
        total_misses += misses

    exposed_cycles = [c + startup for c in exposed_cycles]
    t_overlappable = machine.cycles_to_seconds(max(overlappable_cycles))
    exposed = machine.cycles_to_seconds(max(exposed_cycles))
    t_comp_max = t_overlappable + exposed
    t_lat_max = total_misses / nthreads * machine.effective_latency_s()

    t_total = max(t_mem, t_overlappable) + exposed + t_lat_max
    return SimResult(
        t_total=t_total,
        t_mem=t_mem,
        t_comp=t_comp_max,
        t_comp_exposed=exposed,
        t_latency=t_lat_max,
        ws_bytes=ws,
        x_misses=total_misses,
        nthreads=nthreads,
        precision=precision,
        impl=impl,
    )
