"""Machine presets.

:data:`CORE2_XEON` models the paper's testbed: a dual Intel Core 2 Duo Xeon
at 2.66 GHz — two chips, two cores each, 32 KiB L1D per core, a 4 MiB L2
shared by the two cores of a chip, hardware prefetching on, and 3.36 GiB/s
of STREAM bandwidth.  Single-core streaming cannot quite saturate the FSB;
two cores do, and four cores gain almost nothing — which is what makes the
multicore experiment (Fig. 2) shift wins further toward the blocked
formats.

:data:`GENERIC_MODERN` is a present-day commodity part for the examples:
more bandwidth, bigger last-level cache, 256-bit SIMD.
"""

from __future__ import annotations

from ..types import Impl
from .costs import KernelCostModel
from .machine import CacheLevel, MachineModel

__all__ = ["CORE2_XEON", "GENERIC_MODERN", "PRESETS", "get_preset"]

_GiB = 1024**3

CORE2_XEON = MachineModel(
    name="core2-xeon-2.66",
    clock_hz=2.66e9,
    l1=CacheLevel(size_bytes=32 * 1024, line_bytes=64, bandwidth_bps=35e9),
    l2=CacheLevel(size_bytes=4 * 1024 * 1024, line_bytes=64, bandwidth_bps=12e9),
    mem_bandwidth_bps={
        1: 3.36 * _GiB,  # STREAM figure the paper quotes
        2: 3.80 * _GiB,  # FSB nearly saturated
        4: 3.95 * _GiB,  # saturation
    },
    mem_latency_s=95e-9,
    latency_hide=0.62,
    eta_exposed={Impl.SCALAR: 0.35, Impl.SIMD: 0.30},
    x_cache_fraction=0.5,
    costs=KernelCostModel(),
    max_threads=4,
)

GENERIC_MODERN = MachineModel(
    name="generic-modern",
    clock_hz=3.5e9,
    l1=CacheLevel(size_bytes=48 * 1024, line_bytes=64, bandwidth_bps=180e9),
    l2=CacheLevel(size_bytes=32 * 1024 * 1024, line_bytes=64, bandwidth_bps=60e9),
    mem_bandwidth_bps={1: 20 * _GiB, 2: 32 * _GiB, 4: 42 * _GiB, 8: 46 * _GiB},
    mem_latency_s=70e-9,
    latency_hide=0.75,
    eta_exposed={Impl.SCALAR: 0.30, Impl.SIMD: 0.25},
    x_cache_fraction=0.5,
    costs=KernelCostModel(simd_bytes=32),
    max_threads=8,
)

PRESETS = {m.name: m for m in (CORE2_XEON, GENERIC_MODERN)}


def get_preset(name: str) -> MachineModel:
    """Look up a preset machine by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
