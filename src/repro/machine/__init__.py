"""The simulated testbed: machine description, cost tables, cache model,
execution simulator and STREAM calibration.

See DESIGN.md ("Substitutions") for why the paper's Core 2 Xeon testbed is
replaced by an analytic simulator and how the analytic performance models
remain honestly separated from it.
"""

from .cache import (
    LRUCache,
    estimate_stream_misses,
    estimate_stream_misses_windowed,
    x_budget_lines,
)
from .costs import KernelCostModel
from .executor import SimResult, simulate, simulate_reference
from .machine import CacheLevel, MachineModel
from .plan import SimPlan, get_plan
from .presets import CORE2_XEON, GENERIC_MODERN, PRESETS, get_preset
from .stream import StreamResult, measure_host_stream, simulated_stream

__all__ = [
    "CacheLevel",
    "MachineModel",
    "KernelCostModel",
    "SimResult",
    "simulate",
    "simulate_reference",
    "SimPlan",
    "get_plan",
    "LRUCache",
    "estimate_stream_misses",
    "estimate_stream_misses_windowed",
    "x_budget_lines",
    "CORE2_XEON",
    "GENERIC_MODERN",
    "PRESETS",
    "get_preset",
    "StreamResult",
    "simulated_stream",
    "measure_host_stream",
]
