"""Kernel compute-cost tables: cycles per block for every kernel variant.

This module is the *microarchitectural* side of the testbed substitution.
The paper compiled one specialised multiplication routine per (format,
block, implementation); here each routine's steady-state cost in cycles is
expressed as a small analytic formula whose terms mirror what the generated
code actually does:

* a per-block overhead (index load, address arithmetic),
* one fused multiply-add per stored element for scalar code,
* for SIMD code, one vector op per ``ceil(width / lanes)`` group, plus a
  horizontal-add to reduce a row's partial products and penalties for
  unaligned leftovers — which is why wide blocks pay off more in single
  precision (4 lanes) than in double (2 lanes), reproducing the sp/dp win
  shift of Table II,
* per-(block-)row loop overheads — which is why matrices with very short
  rows are slow in CSR (paper Section III),
* a fixed start-up cost per extra pass of a decomposed method.

The performance models never read these tables directly: they only see the
``t_b`` and ``nof`` values obtained by *profiling* the simulator on dense
matrices, exactly as the paper profiles real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..formats.base import SparseFormat
from ..types import Impl, Precision

__all__ = ["KernelCostModel"]


@dataclass(frozen=True)
class KernelCostModel:
    """Cycle costs of the block-specific SpMV kernels.

    All values are in CPU cycles.  Defaults model a Core-2-class x86 with
    128-bit SIMD (2 dp / 4 sp lanes).
    """

    #: Scalar fused multiply-add (load + mul + add) per element.
    fma_cycles: dict[str, float] = field(
        default_factory=lambda: {"sp": 2.0, "dp": 2.2}
    )
    #: CSR pays an extra indirection per element (per-element column index).
    csr_elem_cycles: dict[str, float] = field(
        default_factory=lambda: {"sp": 3.0, "dp": 3.2}
    )
    #: CSR-DU decodes a delta per element on top of the fma (shift+add).
    csrdu_elem_cycles: dict[str, float] = field(
        default_factory=lambda: {"sp": 3.8, "dp": 4.0}
    )
    #: Per-unit header decode (flags, count, base column).
    csrdu_unit_overhead: float = 12.0
    #: One packed vector op (load + mul + add on a full SIMD register).
    vecop_cycles: float = 2.4
    #: Horizontal reduction of a SIMD register into one scalar lane.
    hadd_cycles: float = 2.5
    #: Vector store/accumulate into y (column-vector and diagonal blocks).
    vstore_cycles: float = 1.2
    #: Penalty when the block width is not a multiple of the SIMD width.
    align_penalty_cycles: float = 1.5
    #: Per-block overheads: index fetch + address arithmetic.
    block_overhead_scalar: float = 5.0
    block_overhead_simd: float = 6.0
    diag_overhead_scalar: float = 6.0
    diag_overhead_simd: float = 6.5
    #: 1D-VBL blocks have unknown trip counts: each block costs a dependent
    #: size-byte decode plus (typically) a branch misprediction — the
    #: "extra level of indirection" the paper blames for 1D-VBL's losses.
    vbl_block_overhead: float = 25.0
    ubcsr_extra_overhead: float = 0.5
    vbr_block_overhead: float = 8.0
    #: Outer-loop overhead per (block-)row.
    row_overhead_cycles: float = 9.0
    #: Fixed start-up cost of each additional pass of a decomposed method.
    pass_startup_cycles: float = 2000.0
    #: SIMD register width in bytes (SSE2: 16).
    simd_bytes: int = 16

    # ------------------------------------------------------------------ #
    def lanes(self, precision: Precision | str) -> int:
        """SIMD lanes available at ``precision``."""
        return self.simd_bytes // Precision.coerce(precision).itemsize

    def rect_block_cycles(
        self, r: int, c: int, impl: Impl | str, precision: Precision | str
    ) -> float:
        """Cycles for one ``r x c`` rectangular (BCSR-family) block."""
        impl = Impl.coerce(impl)
        precision = Precision.coerce(precision)
        if impl is Impl.SCALAR:
            return self.block_overhead_scalar + r * c * self.fma_cycles[precision.value]
        w = self.lanes(precision)
        if c == 1:
            # Column-vector block: vectorize down the rows; the result is a
            # contiguous vector accumulated straight into y.
            body = -(-r // w) * self.vecop_cycles + self.vstore_cycles
            if r % w:
                body += self.align_penalty_cycles
        else:
            # Row-major block: each of the r rows reduces c products.
            per_row = -(-c // w) * self.vecop_cycles + self.hadd_cycles
            body = r * per_row
            if c % w:
                body += self.align_penalty_cycles
        return self.block_overhead_simd + body

    def diag_block_cycles(
        self, b: int, impl: Impl | str, precision: Precision | str
    ) -> float:
        """Cycles for one size-``b`` diagonal (BCSD-family) block."""
        impl = Impl.coerce(impl)
        precision = Precision.coerce(precision)
        if impl is Impl.SCALAR:
            return self.diag_overhead_scalar + b * self.fma_cycles[precision.value]
        # Diagonal blocks vectorize cleanly: x and y slices are contiguous
        # and no horizontal reduction is needed.
        w = self.lanes(precision)
        body = -(-b // w) * self.vecop_cycles + self.vstore_cycles
        if b % w:
            body += self.align_penalty_cycles
        return self.diag_overhead_simd + body

    # ------------------------------------------------------------------ #
    def block_row_cycles(
        self,
        part: SparseFormat,
        impl: Impl | str,
        precision: Precision | str,
    ) -> np.ndarray:
        """Compute cycles of each block row of a *non-decomposed* part.

        Returns an array of length ``part.n_block_rows``; its sum is the
        part's total compute cost.  Used both for whole-matrix simulation
        and for load-balanced multicore partitioning.
        """
        impl = Impl.coerce(impl)
        precision = Precision.coerce(precision)
        kind = part.block_descriptor()[0]
        n_rows = part.n_block_rows
        cycles = np.full(n_rows, self.row_overhead_cycles, dtype=np.float64)
        if kind == "csr":
            if impl is not Impl.SCALAR:
                raise ModelError("CSR has no SIMD kernel in this study")
            per_row_elems = np.diff(part.row_ptr)
            cycles += per_row_elems * self.csr_elem_cycles[precision.value]
        elif kind == "csr_du":
            if impl is not Impl.SCALAR:
                raise ModelError("CSR-DU has no SIMD kernel in this study")
            elems_per_row = np.bincount(
                part.rows_of_elements(), minlength=n_rows
            )
            units_per_row = np.bincount(part.unit_row, minlength=n_rows)
            cycles += (
                elems_per_row * self.csrdu_elem_cycles[precision.value]
                + units_per_row * self.csrdu_unit_overhead
            )
        elif kind == "bcsr":
            r, c = part.block
            per = self.rect_block_cycles(r, c, impl, precision)
            cycles += np.diff(part.brow_ptr) * per
        elif kind == "ubcsr":
            r, c = part.block
            per = (
                self.rect_block_cycles(r, c, impl, precision)
                + self.ubcsr_extra_overhead
            )
            cycles += np.diff(part.brow_ptr) * per
        elif kind == "bcsd":
            per = self.diag_block_cycles(part.b, impl, precision)
            cycles += np.diff(part.brow_ptr) * per
        elif kind == "vbl":
            if impl is not Impl.SCALAR:
                raise ModelError("1D-VBL has no SIMD kernel in this study")
            # Per element, 1D-VBL pays CSR-like indirect-access cost (the
            # value stream is walked through a second level of indexing).
            elem = self.csr_elem_cycles[Precision.coerce(precision).value]
            blocks_per_row = np.diff(part.block_row_ptr)
            elems_per_row = np.diff(part.row_ptr)
            cycles += (
                blocks_per_row * self.vbl_block_overhead + elems_per_row * elem
            )
        elif kind == "vbr":
            fma = self.fma_cycles[Precision.coerce(precision).value]
            blocks_per_row = np.diff(part.bpntr)
            # Stored elements per block row, from the block value offsets.
            elems = np.diff(part.indx)
            elems_per_row = np.zeros(n_rows)
            np.add.at(elems_per_row, part.block_rows_of_blocks(), elems)
            cycles += blocks_per_row * self.vbr_block_overhead + elems_per_row * fma
        else:
            raise ModelError(f"no cost model for format kind {kind!r}")
        return cycles

    def compute_cycles(
        self,
        fmt: SparseFormat,
        impl: Impl | str,
        precision: Precision | str,
    ) -> float:
        """Total compute cycles for one SpMV with ``fmt``.

        For decomposed formats, CSR parts always run the scalar kernel (the
        paper only vectorizes the fixed-size blocked kernels).
        """
        parts = fmt.submatrices()
        total = self.pass_startup_cycles * max(len(parts) - 1, 0)
        for part in parts:
            part_impl = self.effective_impl(part, impl)
            total += float(self.block_row_cycles(part, part_impl, precision).sum())
        return total

    @staticmethod
    def effective_impl(part: SparseFormat, impl: Impl | str) -> Impl:
        """The implementation a part actually runs (CSR/VBL stay scalar)."""
        impl = Impl.coerce(impl)
        if part.block_descriptor()[0] in ("csr", "csr_du", "vbl"):
            return Impl.SCALAR
        return impl
