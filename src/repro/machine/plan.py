"""Per-candidate simulation plans: factor ``simulate()``'s invariants.

The sweep calls the execution simulator once per (candidate, precision,
impl, threads) cell — up to 12 calls per candidate under the full config —
and most of what each call computes depends only on the format structure
and at most the precision:

* the per-part row-cost vectors (``costs.block_row_cycles``) depend on
  (structure, effective impl, precision), not the thread count;
* the balanced row partition depends on (structure, thread count) only, and
  its per-thread segment sums on (partition, row costs);
* the decomposition working-set shares and the streaming-loss factor depend
  on (structure, precision) only;
* the x-access cache-miss estimate depends on (structure, precision) only.

A :class:`SimPlan` is built once per (format, machine, precision) and
memoizes all of the above, so batch-evaluating every (impl, threads) cell
only redoes the genuinely per-cell arithmetic.  The plan is cached on the
format object itself (``fmt._sim_plans``), which is how the sweep's shared
``fmt_cache`` — one structure reused across scalar/SIMD candidates,
precisions and thread counts — turns into cross-cell reuse.

The plan is **bit-identical** to the historical per-call path: every float
operation happens with the same operands in the same order, memoization
only removes recomputation of identical intermediate arrays.  The x-miss
term additionally short-circuits through two *exact* structural bounds
before touching the element stream:

1. if even the largest reachable cache line fits inside the budget, the
   distinct-line count trivially does too (``estimate_stream_misses``
   returns 0 whenever ``distinct <= budget``), and
2. otherwise the exact distinct-line count — computed from the (cached)
   unique columns, far smaller than the element stream — decides residency.

Only genuinely latency-bound parts ever expand their element stream.
``repro.machine.executor.simulate`` is a thin wrapper over this module;
``simulate_reference`` there preserves the original unfactored path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..formats.base import SparseFormat, XAccessStream
from ..parallel.partition import balanced_partition, stored_per_block_row
from ..types import Impl, Precision
from .cache import estimate_stream_misses, x_budget_lines
from .machine import MachineModel

__all__ = ["SimResult", "SimPlan", "get_plan", "MAX_PLANS_PER_FORMAT"]

#: Per-format cap on cached plans.  One sweep touches at most a few
#: (machine, precision) pairs per structure, but long-lived advisor/fleet
#: processes see many machines over time; the memo is LRU-bounded so format
#: objects cannot grow without bound.
MAX_PLANS_PER_FORMAT = 8


@dataclass(frozen=True)
class SimResult:
    """Breakdown of one simulated SpMV execution."""

    t_total: float
    t_mem: float
    t_comp: float
    t_comp_exposed: float
    t_latency: float
    ws_bytes: int
    x_misses: int
    nthreads: int
    precision: Precision
    impl: Impl

    @property
    def bound(self) -> str:
        """Which resource dominates: ``"memory"``, ``"compute"`` or ``"latency"``."""
        overlap_part = max(self.t_mem, self.t_comp - self.t_comp_exposed)
        if self.t_latency >= overlap_part:
            return "latency"
        if self.t_mem >= self.t_comp - self.t_comp_exposed:
            return "memory"
        return "compute"


def _stream_max_line(stream: XAccessStream, line_elems: int) -> int:
    """Largest cache-line id the stream can touch, without expanding it."""
    if stream.widths is not None:
        max_col = int((stream.starts + stream.widths - 1).max())
    else:
        max_col = int(stream.starts.max()) + stream.width - 1
    return max(max_col, 0) // line_elems


def _unique_columns(part: SparseFormat) -> np.ndarray:
    """Sorted unique x columns the part touches (cached on the part).

    Derived from the unique *starts* where the access width is fixed, so
    wide-block formats never expand their full element stream here.
    """
    cols = part.__dict__.get("_x_unique_cols")
    if cols is None:
        stream = part.x_access_stream()
        if stream.widths is not None:
            cols = np.unique(stream.element_columns())
        elif stream.width == 1:
            cols = np.unique(stream.starts)
        else:
            starts = np.unique(stream.starts)
            cols = np.unique(
                (
                    starts[:, None] + np.arange(stream.width, dtype=np.int64)
                ).ravel()
            )
        part.__dict__["_x_unique_cols"] = cols
    return cols


def _estimate_part_misses(
    part: SparseFormat, line_elems: int, budget: int
) -> int:
    if budget <= 0:
        return 0
    stream = part.x_access_stream()
    if len(stream) == 0:
        return 0
    # Exact structural shortcuts: estimate_stream_misses returns 0 whenever
    # the distinct-line count fits the budget, and both bounds below decide
    # exactly that without materialising the element-granularity stream.
    if _stream_max_line(stream, line_elems) + 1 <= budget:
        return 0
    cols = _unique_columns(part)
    distinct = np.unique(np.maximum(cols, 0) // line_elems).shape[0]
    if distinct <= budget:
        return 0
    return int(estimate_stream_misses(stream.line_ids(line_elems), budget))


def _part_misses(part: SparseFormat, line_elems: int, budget: int) -> int:
    """The part's memoised x-miss estimate (same memo the old path used)."""
    cache = part.__dict__.setdefault("_x_miss_cache", {})
    key = (line_elems, budget)
    misses = cache.get(key)
    if misses is None:
        misses = _estimate_part_misses(part, line_elems, budget)
        cache[key] = misses
    return misses


class SimPlan:
    """Everything ``simulate`` needs for one (format, machine, precision).

    Build once, then :meth:`run` every (impl, nthreads) cell; structure-
    dependent intermediates are computed on first use and shared across
    cells.  Not thread-safe (the sweep is process-parallel, not
    thread-parallel); plans hold a reference to the machine and the format
    and are never pickled.
    """

    def __init__(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str = Precision.DP,
    ) -> None:
        self.fmt = fmt
        self.machine = machine
        self.precision = Precision.coerce(precision)
        self.ws = fmt.working_set(self.precision)
        self.parts = tuple(fmt.submatrices())
        if len(self.parts) > 1:
            # Decomposed methods lose streaming efficiency to their multiple
            # passes (paper Section III); the loss scales with how balanced
            # the decomposition is.
            shares = [
                (
                    p.working_set_matrix_only(self.precision)
                    + p.vector_bytes(self.precision)
                )
                / self.ws
                for p in self.parts
            ]
            self.mem_factor: float | None = machine.decomposition_mem_factor(
                shares
            )
        else:
            self.mem_factor = None
        self.x_resident = self.ws <= machine.l2.size_bytes
        self.line_elems = machine.l2.line_bytes // self.precision.itemsize
        self.budget = x_budget_lines(
            machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
        )
        # Pass start-up work (pointer setup, prefetch retrain) cannot overlap.
        self.startup = machine.costs.pass_startup_cycles * max(
            len(self.parts) - 1, 0
        )
        self._row_cycles: dict[tuple[int, Impl], np.ndarray] = {}
        self._weights: list[np.ndarray | None] = [None] * len(self.parts)
        self._partitions: dict[tuple[int, int], object] = {}
        self._per_thread: dict[tuple[int, Impl, int], np.ndarray] = {}
        self._misses: int | None = None

    # ------------------------------------------------------------------ #
    def segment_sums(
        self, i: int, part: SparseFormat, part_impl: Impl, nthreads: int
    ) -> np.ndarray:
        """Per-thread compute cycles of part ``i`` under ``part_impl``.

        Public because :mod:`repro.machine.batch` stacks these per-cell
        vectors across the candidate axis; the order-sensitive ``cumsum``
        stays in here, per (structure, impl, threads).
        """
        key = (i, part_impl, nthreads)
        out = self._per_thread.get(key)
        if out is None:
            row_cycles = self._row_cycles.get((i, part_impl))
            if row_cycles is None:
                row_cycles = self.machine.costs.block_row_cycles(
                    part, part_impl, self.precision
                )
                self._row_cycles[(i, part_impl)] = row_cycles
            partition = self._partitions.get((i, nthreads))
            if partition is None:
                weights = self._weights[i]
                if weights is None:
                    weights = stored_per_block_row(part)
                    self._weights[i] = weights
                partition = balanced_partition(weights, nthreads)
                self._partitions[(i, nthreads)] = partition
            out = partition.segment_sums(row_cycles)
            self._per_thread[key] = out
        return out

    def total_misses(self) -> int:
        """x-miss estimate summed over parts (precision-fixed per plan)."""
        if self._misses is None:
            self._misses = sum(
                _part_misses(part, self.line_elems, self.budget)
                for part in self.parts
            )
        return self._misses

    # ------------------------------------------------------------------ #
    def run(
        self,
        impl: Impl | str = Impl.SCALAR,
        nthreads: int = 1,
        *,
        zero_col_ind: bool = False,
    ) -> SimResult:
        """One (impl, nthreads) cell — bit-identical to the unfactored path."""
        machine = self.machine
        impl = Impl.coerce(impl)
        if nthreads < 1 or nthreads > machine.max_threads:
            raise ModelError(
                f"nthreads={nthreads} outside 1..{machine.max_threads} "
                f"for machine {machine.name!r}"
            )
        costs = machine.costs

        t_mem = self.ws / machine.stream_bandwidth(self.ws, nthreads)
        if self.mem_factor is not None:
            t_mem *= self.mem_factor

        overlappable_cycles = [0.0] * nthreads
        exposed_cycles = [0.0] * nthreads
        for i, part in enumerate(self.parts):
            # The exposure fraction belongs to the kernel that actually
            # runs: a CSR remainder of a SIMD decomposition stays scalar.
            part_impl = costs.effective_impl(part, impl)
            eta_part = machine.eta(part_impl)
            per_thread = self.segment_sums(i, part, part_impl, nthreads)
            for t in range(nthreads):
                overlappable_cycles[t] += (1.0 - eta_part) * float(per_thread[t])
                exposed_cycles[t] += eta_part * float(per_thread[t])
        if self.x_resident or zero_col_ind:
            total_misses = 0
        else:
            total_misses = self.total_misses()

        exposed_cycles = [c + self.startup for c in exposed_cycles]
        t_overlappable = machine.cycles_to_seconds(max(overlappable_cycles))
        exposed = machine.cycles_to_seconds(max(exposed_cycles))
        t_comp_max = t_overlappable + exposed
        t_lat_max = total_misses / nthreads * machine.effective_latency_s()

        t_total = max(t_mem, t_overlappable) + exposed + t_lat_max
        return SimResult(
            t_total=t_total,
            t_mem=t_mem,
            t_comp=t_comp_max,
            t_comp_exposed=exposed,
            t_latency=t_lat_max,
            ws_bytes=self.ws,
            x_misses=total_misses,
            nthreads=nthreads,
            precision=self.precision,
            impl=impl,
        )

    def run_cells(
        self, cells: "list[tuple[Impl | str, int]]"
    ) -> list[SimResult]:
        """Batch-evaluate ``[(impl, nthreads), ...]`` sharing every memo."""
        return [self.run(impl, nthreads) for impl, nthreads in cells]


def get_plan(
    fmt: SparseFormat,
    machine: MachineModel,
    precision: Precision | str = Precision.DP,
) -> SimPlan:
    """The (cached) simulation plan for ``fmt`` on ``machine``.

    Plans are memoised on the format object keyed by (machine identity,
    precision) — the same lifetime as the format's x-miss memo, so the
    sweep's shared ``fmt_cache`` automatically shares plans across cells.
    The memo is LRU-bounded to :data:`MAX_PLANS_PER_FORMAT` entries (dict
    insertion order is the recency order) so long-lived processes that see
    many machines do not grow format objects without bound.
    """
    plans = fmt.__dict__.setdefault("_sim_plans", {})
    key = (id(machine), Precision.coerce(precision))
    plan = plans.pop(key, None)
    if plan is None:
        plan = SimPlan(fmt, machine, key[1])
        if len(plans) >= MAX_PLANS_PER_FORMAT:
            del plans[next(iter(plans))]
    plans[key] = plan
    return plan
