"""The paper's three performance models (Section IV).

Given a sparse matrix already converted to a candidate storage format, each
model predicts the execution time of one SpMV:

* **MEM** (Gropp et al., eq. 1) — pure streaming:
  ``t = ws / BW``.  Applicable to any format, ignorant of compute and of
  the kernel implementation.

* **MEMCOMP** (eq. 2) — memory plus compute, no overlap:
  ``t = sum_i ( ws_i / BW + nb_i * t_b_i )`` over the k submatrices of a
  decomposition (k = 1 for the padded formats, CSR is a 1x1 blocking with
  nb = nnz).  ``t_b`` comes from profiling a small in-L1 dense matrix.

* **OVERLAP** (eq. 3) — memory plus the *non-overlapped* part of compute:
  ``t = sum_i ( ws_i / BW + nof_i * nb_i * t_b_i )`` where the
  non-overlapping factor ``nof`` (eq. 4) comes from profiling a large
  out-of-cache dense matrix.

All three deliberately ignore memory latency (irregular x accesses) — the
paper calls this out as their shared blind spot, visible on the
latency-bound matrices of Fig. 3.
"""

from __future__ import annotations

import abc

from ..errors import ModelError
from ..formats.base import SparseFormat
from ..machine.machine import MachineModel
from ..types import Impl, Precision
from .profiling import BlockProfile

__all__ = [
    "PerformanceModel",
    "MemModel",
    "MemCompModel",
    "OverlapModel",
    "MODELS",
    "get_model",
]


class PerformanceModel(abc.ABC):
    """Interface shared by the MEM / MEMCOMP / OVERLAP predictors."""

    #: Machine-readable name ("mem", "memcomp", "overlap").
    name: str = "abstract"
    #: Whether :meth:`predict` needs a calibrated :class:`BlockProfile`.
    requires_profile: bool = False
    #: Whether the prediction depends on the kernel implementation.  The MEM
    #: model cannot tell scalar from SIMD apart — the paper defaults its
    #: selection to the non-SIMD kernel for this reason.
    impl_aware: bool = False

    @abc.abstractmethod
    def predict(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str,
        impl: Impl | str = Impl.SCALAR,
        profile: BlockProfile | None = None,
        nthreads: int = 1,
    ) -> float:
        """Predicted seconds for one SpMV with ``fmt`` on ``machine``."""

    def _check_profile(
        self, profile: BlockProfile | None, precision: Precision
    ) -> BlockProfile:
        if profile is None:
            raise ModelError(f"the {self.name} model requires a block profile")
        if profile.precision is not precision:
            raise ModelError(
                f"profile precision {profile.precision} does not match "
                f"requested {precision}"
            )
        return profile

    @staticmethod
    def _reject_variable_blocks(fmt: SparseFormat, name: str) -> None:
        for part in fmt.submatrices():
            if part.block_descriptor()[0] in ("vbl", "vbr"):
                raise ModelError(
                    f"the {name} model only covers fixed-size blockings; "
                    f"got {part.block_descriptor()[0]}"
                )


class MemModel(PerformanceModel):
    """Streaming model of Gropp et al. — eq. (1)."""

    name = "mem"
    requires_profile = False
    impl_aware = False

    def predict(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str,
        impl: Impl | str = Impl.SCALAR,
        profile: BlockProfile | None = None,
        nthreads: int = 1,
    ) -> float:
        precision = Precision.coerce(precision)
        return fmt.working_set(precision) / machine.memory_bandwidth(nthreads)


class MemCompModel(PerformanceModel):
    """Memory + compute, assumed sequential — eq. (2)."""

    name = "memcomp"
    requires_profile = True
    impl_aware = True

    def predict(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str,
        impl: Impl | str = Impl.SCALAR,
        profile: BlockProfile | None = None,
        nthreads: int = 1,
    ) -> float:
        precision = Precision.coerce(precision)
        impl = Impl.coerce(impl)
        profile = self._check_profile(profile, precision)
        self._reject_variable_blocks(fmt, self.name)
        bw = machine.memory_bandwidth(nthreads)
        total = 0.0
        for part in fmt.submatrices():
            part_impl = machine.costs.effective_impl(part, impl)
            ws_i = part.working_set_matrix_only(precision) + part.vector_bytes(
                precision
            )
            total += ws_i / bw + part.n_blocks * profile.block_time(
                part, part_impl
            )
        return total


class OverlapModel(PerformanceModel):
    """Memory + non-overlapped compute — eq. (3)."""

    name = "overlap"
    requires_profile = True
    impl_aware = True

    def predict(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str,
        impl: Impl | str = Impl.SCALAR,
        profile: BlockProfile | None = None,
        nthreads: int = 1,
    ) -> float:
        precision = Precision.coerce(precision)
        impl = Impl.coerce(impl)
        profile = self._check_profile(profile, precision)
        self._reject_variable_blocks(fmt, self.name)
        bw = machine.memory_bandwidth(nthreads)
        total = 0.0
        for part in fmt.submatrices():
            part_impl = machine.costs.effective_impl(part, impl)
            ws_i = part.working_set_matrix_only(precision) + part.vector_bytes(
                precision
            )
            total += ws_i / bw + (
                profile.nof_factor(part, part_impl)
                * part.n_blocks
                * profile.block_time(part, part_impl)
            )
        return total


MODELS: dict[str, PerformanceModel] = {
    m.name: m for m in (MemModel(), MemCompModel(), OverlapModel())
}


def get_model(name: str) -> PerformanceModel:
    """Look up a model by name ("mem", "memcomp", "overlap")."""
    try:
        return MODELS[name.lower()]
    except KeyError:
        raise ModelError(
            f"unknown model {name!r}; available: {sorted(MODELS)}"
        ) from None
