"""The paper's primary contribution: performance models and autotuning.

* :mod:`repro.core.models` — MEM (eq. 1), MEMCOMP (eq. 2), OVERLAP (eq. 3-4),
* :mod:`repro.core.profiling` — t_b / nof calibration via dense-matrix
  profiling, exactly as the paper prescribes,
* :mod:`repro.core.candidates` — the (format, block, implementation) space,
* :mod:`repro.core.selection` — evaluation, ranking, and the
  :class:`AutoTuner` public API.
"""

from .candidates import (
    FIXED_BLOCK_KINDS,
    Candidate,
    candidate_space,
    diag_sizes,
    rect_shapes,
)
from .models import (
    MODELS,
    MemCompModel,
    MemModel,
    OverlapModel,
    PerformanceModel,
    get_model,
)
from .learned import DecisionTree, LearnedSelector, extract_features
from .models_ext import (
    OverlapLatencyModel,
    estimate_format_misses,
    register_extended_models,
)
from .profiling import BlockProfile, ProfileCache, dense_coo, profile_machine
from .selection import (
    AutoTuner,
    CandidateResult,
    StatsCache,
    build_candidate,
    evaluate_candidates,
    oracle_best,
    select_with_model,
)

__all__ = [
    "Candidate",
    "candidate_space",
    "rect_shapes",
    "diag_sizes",
    "FIXED_BLOCK_KINDS",
    "PerformanceModel",
    "MemModel",
    "MemCompModel",
    "OverlapModel",
    "MODELS",
    "get_model",
    "OverlapLatencyModel",
    "estimate_format_misses",
    "register_extended_models",
    "DecisionTree",
    "LearnedSelector",
    "extract_features",
    "BlockProfile",
    "ProfileCache",
    "profile_machine",
    "dense_coo",
    "AutoTuner",
    "CandidateResult",
    "StatsCache",
    "build_candidate",
    "evaluate_candidates",
    "select_with_model",
    "oracle_best",
]
