"""Learned format selection (the paper's future work, Section VI).

"Finally, we plan to develop more intelligent and adaptive performance
models for the execution of sparse kernels based on machine learning."

This module implements that direction with no external ML dependency:

* :func:`extract_features` — cheap structural features of a sparse pattern
  (the quantities Section III identifies as deciding blocked-SpMV
  behaviour: row lengths, run lengths, per-shape block fill, diagonal
  fill, input-vector footprint vs. cache);
* :class:`DecisionTree` — a small CART classifier (Gini impurity, axis
  splits) written from scratch;
* :class:`LearnedSelector` — trains a tree on sweep data to predict the
  winning *format kind* for a matrix, then delegates the block-shape and
  implementation choice within that kind to the OVERLAP model.  The hybrid
  mirrors production autotuners: learning prunes the search space, the
  analytic model ranks inside it.

``benchmarks/bench_learned_selection.py`` evaluates it leave-one-out over
the 30-matrix suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from ..formats.blockstats import bcsd_block_stats, bcsr_block_stats
from ..formats.coo import COOMatrix
from ..machine.cache import x_budget_lines
from ..machine.machine import MachineModel
from ..types import Precision

__all__ = [
    "FEATURE_NAMES",
    "extract_features",
    "DecisionTree",
    "LearnedSelector",
]

FEATURE_NAMES = (
    "log_nnz_per_row",
    "row_length_cv",
    "mean_run_length",
    "fill_1x2",
    "fill_2x1",
    "fill_2x2",
    "fill_3x3",
    "diag_fill_4",
    "x_footprint_ratio",
    "density_log10",
)


def extract_features(
    coo: COOMatrix,
    machine: MachineModel,
    precision: Precision | str = Precision.DP,
) -> np.ndarray:
    """Structural feature vector of a sparse pattern (see FEATURE_NAMES)."""
    precision = Precision.coerce(precision)
    counts = coo.row_counts().astype(np.float64)
    mean_row = counts.mean() if counts.size else 0.0
    row_cv = counts.std() / mean_row if mean_row > 0 else 0.0

    if coo.nnz:
        starts = np.empty(coo.nnz, dtype=bool)
        starts[0] = True
        starts[1:] = (coo.rows[1:] != coo.rows[:-1]) | (
            coo.cols[1:] != coo.cols[:-1] + 1
        )
        mean_run = coo.nnz / max(int(starts.sum()), 1)
    else:
        mean_run = 0.0

    def fill(r: int, c: int) -> float:
        stats = bcsr_block_stats(coo, r, c)
        return stats.nnz / stats.nnz_stored if stats.n_blocks else 1.0

    dstats = bcsd_block_stats(coo, 4)
    diag_fill = dstats.nnz / dstats.nnz_stored if dstats.n_blocks else 1.0

    budget_bytes = x_budget_lines(
        machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
    ) * machine.l2.line_bytes
    x_ratio = (coo.ncols * precision.itemsize) / budget_bytes
    density = coo.nnz / max(coo.nrows * coo.ncols, 1)

    return np.array([
        np.log10(max(mean_row, 1e-3)),
        row_cv,
        mean_run,
        fill(1, 2),
        fill(2, 1),
        fill(2, 2),
        fill(3, 3),
        diag_fill,
        x_ratio,
        np.log10(max(density, 1e-12)),
    ])


# --------------------------------------------------------------------- #
# A small CART classifier
# --------------------------------------------------------------------- #
@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    label: object = None  # leaf payload

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def to_payload(self) -> dict:
        if self.is_leaf:
            return {"label": self.label}
        return {
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left.to_payload(),
            "right": self.right.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "_Node":
        if "feature" not in payload:
            return cls(label=payload["label"])
        return cls(
            feature=int(payload["feature"]),
            threshold=float(payload["threshold"]),
            left=cls.from_payload(payload["left"]),
            right=cls.from_payload(payload["right"]),
        )


@dataclass
class DecisionTree:
    """CART classifier with Gini impurity and axis-aligned splits."""

    max_depth: int = 4
    min_samples_leaf: int = 1
    _root: _Node | None = field(default=None, repr=False)
    _classes: list = field(default_factory=list, repr=False)

    def fit(self, X: np.ndarray, y: list) -> "DecisionTree":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != len(y):
            raise ModelError("X must be 2-D with one row per label")
        if X.shape[0] == 0:
            raise ModelError("cannot fit on an empty dataset")
        self._classes = sorted(set(y))
        codes = np.array([self._classes.index(v) for v in y])
        self._root = self._build(X, codes, depth=0)
        return self

    def predict(self, x: np.ndarray):
        if self._root is None:
            raise ModelError("tree is not fitted")
        node = self._root
        x = np.asarray(x, dtype=np.float64)
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node.label

    # --------------------------- serialization ------------------------- #
    def to_payload(self) -> dict:
        """JSON-safe encoding of a fitted tree (the model artifact body).

        The round trip is exact: thresholds survive via JSON's float
        round-tripping, so a deserialized tree predicts identically.
        """
        if self._root is None:
            raise ModelError("tree is not fitted")
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "classes": list(self._classes),
            "root": self._root.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DecisionTree":
        tree = cls(
            max_depth=int(payload["max_depth"]),
            min_samples_leaf=int(payload["min_samples_leaf"]),
        )
        tree._classes = list(payload["classes"])
        tree._root = _Node.from_payload(payload["root"])
        return tree

    # ------------------------------------------------------------------ #
    def _build(self, X: np.ndarray, codes: np.ndarray, depth: int) -> _Node:
        majority = self._classes[np.bincount(codes).argmax()]
        if (
            depth >= self.max_depth
            or codes.shape[0] < 2 * self.min_samples_leaf
            or np.unique(codes).shape[0] == 1
        ):
            return _Node(label=majority)
        feature, threshold = self._best_split(X, codes)
        if feature < 0:
            return _Node(label=majority)
        mask = X[:, feature] <= threshold
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(X[mask], codes[mask], depth + 1),
            right=self._build(X[~mask], codes[~mask], depth + 1),
        )

    def _best_split(self, X: np.ndarray, codes: np.ndarray) -> tuple[int, float]:
        n, d = X.shape
        best = (-1, 0.0)
        best_gini = _gini(codes)
        for f in range(d):
            values = np.unique(X[:, f])
            if values.shape[0] < 2:
                continue
            midpoints = (values[1:] + values[:-1]) / 2
            for t in midpoints:
                mask = X[:, f] <= t
                nl = int(mask.sum())
                if nl < self.min_samples_leaf or n - nl < self.min_samples_leaf:
                    continue
                g = (
                    nl * _gini(codes[mask]) + (n - nl) * _gini(codes[~mask])
                ) / n
                # Prefer strict improvements, but accept a tie when nothing
                # improves: parity-style labelings (XOR) need a first cut
                # that only pays off one level deeper.
                if g < best_gini - 1e-12 or (
                    best[0] == -1 and g <= best_gini + 1e-12
                ):
                    best_gini = g
                    best = (f, float(t))
        return best


def _gini(codes: np.ndarray) -> float:
    if codes.shape[0] == 0:
        return 0.0
    _, counts = np.unique(codes, return_counts=True)
    p = counts / codes.shape[0]
    return float(1.0 - (p * p).sum())


# --------------------------------------------------------------------- #
# The hybrid selector
# --------------------------------------------------------------------- #
class LearnedSelector:
    """Tree-predicted format kind + OVERLAP-ranked block within it."""

    def __init__(
        self,
        machine: MachineModel,
        *,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
    ) -> None:
        self.machine = machine
        self.tree = DecisionTree(
            max_depth=max_depth, min_samples_leaf=min_samples_leaf
        )
        self._fitted = False

    def fit(self, features: np.ndarray, winning_kinds: list[str]) -> "LearnedSelector":
        """Train on (feature vector, winning format kind) pairs."""
        self.tree.fit(features, winning_kinds)
        self._fitted = True
        return self

    def predict_kind(self, coo: COOMatrix, precision: Precision | str = "dp") -> str:
        if not self._fitted:
            raise ModelError("selector is not fitted")
        return self.tree.predict(
            extract_features(coo, self.machine, precision)
        )

    def select(
        self,
        coo: COOMatrix,
        precision: Precision | str = "dp",
        *,
        profile_cache=None,
    ):
        """Full selection: predicted kind, OVERLAP-ranked block within it.

        Returns the winning :class:`~repro.core.selection.CandidateResult`.
        """
        from .candidates import candidate_space
        from .selection import evaluate_candidates, select_with_model

        kind = self.predict_kind(coo, precision)
        pool = [
            c for c in candidate_space() if c.kind == kind
        ]
        if not pool:
            raise ModelError(f"no candidates of predicted kind {kind!r}")
        results = evaluate_candidates(
            coo,
            self.machine,
            precision,
            candidates=pool,
            models=("overlap",) if kind != "vbl" else ("mem",),
            profile_cache=profile_cache,
            run_simulation=False,
        )
        model = "overlap" if kind != "vbl" else "mem"
        # select_with_model excludes vbl for fixed-size models; handle here.
        if kind == "vbl":
            return results[0]
        return select_with_model(results, model)
