"""Enumeration of the (format, block, implementation) candidate space.

The paper's tuning space (Section V): CSR as the degenerate 1x1 baseline;
BCSR / BCSR-DEC with every rectangular block of 2..8 elements (larger
blocks "cannot offer any speedup over standard CSR"); BCSD / BCSD-DEC with
diagonal sizes 2..8; 1D-VBL with no parameter.  The fixed-size blocked
kernels exist in scalar and SIMD flavours; CSR and 1D-VBL are scalar only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import ModelError
from ..types import DEFAULT_MAX_BLOCK_ELEMS, BlockShape, Impl

__all__ = [
    "Candidate",
    "rect_shapes",
    "diag_sizes",
    "candidate_space",
    "unique_structures",
    "restrict_to_structures",
    "FIXED_BLOCK_KINDS",
]

#: Kinds with fixed-size blocks — the ones the MEMCOMP/OVERLAP models cover.
FIXED_BLOCK_KINDS = ("csr", "bcsr", "bcsr_dec", "bcsd", "bcsd_dec")

#: Presentation order for the win tables (matches the paper's Table II).
KIND_ORDER = ("csr", "bcsr", "bcsr_dec", "bcsd", "bcsd_dec", "vbl")


@dataclass(frozen=True, order=True)
class Candidate:
    """One point of the tuning space: a format kind + block + implementation."""

    kind: str
    block: tuple[int, int] | int | None
    impl: Impl

    def __post_init__(self) -> None:
        if self.kind in ("csr", "vbl"):
            if self.block is not None:
                raise ModelError(f"{self.kind} takes no block parameter")
            if self.impl is not Impl.SCALAR:
                raise ModelError(f"{self.kind} has no SIMD kernel")
        elif self.kind in ("bcsr", "bcsr_dec", "ubcsr"):
            if not (isinstance(self.block, tuple) and len(self.block) == 2):
                raise ModelError(f"{self.kind} needs an (r, c) block")
        elif self.kind in ("bcsd", "bcsd_dec"):
            if not isinstance(self.block, int):
                raise ModelError(f"{self.kind} needs an integer diagonal size")
        else:
            raise ModelError(f"unknown candidate kind {self.kind!r}")

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"BCSR 2x4 simd"``."""
        from ..formats.convert import display_name

        parts = [display_name(self.kind)]
        if isinstance(self.block, tuple):
            parts.append(f"{self.block[0]}x{self.block[1]}")
        elif isinstance(self.block, int):
            parts.append(str(self.block))
        if self.impl is Impl.SIMD:
            parts.append("simd")
        return " ".join(parts)

    @property
    def is_blocked(self) -> bool:
        return self.kind != "csr"


def rect_shapes(max_elems: int = DEFAULT_MAX_BLOCK_ELEMS) -> list[BlockShape]:
    """All ``r x c`` shapes with ``2 <= r*c <= max_elems`` (1x1 is CSR)."""
    shapes = [
        BlockShape(r, c)
        for e in range(2, max_elems + 1)
        for r in range(1, e + 1)
        if e % r == 0
        for c in (e // r,)
    ]
    return sorted(shapes, key=lambda s: (s.elems, s.r))


def diag_sizes(max_elems: int = DEFAULT_MAX_BLOCK_ELEMS) -> list[int]:
    """Diagonal block sizes 2..max_elems."""
    return list(range(2, max_elems + 1))


def candidate_space(
    *,
    max_block_elems: int = DEFAULT_MAX_BLOCK_ELEMS,
    include_csr: bool = True,
    include_vbl: bool = True,
    include_decomposed: bool = True,
    impls: Iterable[Impl | str] = (Impl.SCALAR, Impl.SIMD),
) -> tuple[Candidate, ...]:
    """Enumerate the paper's tuning space.

    ``impls`` restricts the fixed-size blocked kernels; CSR and 1D-VBL are
    always scalar regardless.
    """
    impls = tuple(Impl.coerce(i) for i in impls)
    out: list[Candidate] = []
    if include_csr:
        out.append(Candidate("csr", None, Impl.SCALAR))
    rect_kinds = ["bcsr"] + (["bcsr_dec"] if include_decomposed else [])
    diag_kinds = ["bcsd"] + (["bcsd_dec"] if include_decomposed else [])
    for kind in rect_kinds:
        for shape in rect_shapes(max_block_elems):
            for impl in impls:
                out.append(Candidate(kind, (shape.r, shape.c), impl))
    for kind in diag_kinds:
        for b in diag_sizes(max_block_elems):
            for impl in impls:
                out.append(Candidate(kind, b, impl))
    if include_vbl:
        out.append(Candidate("vbl", None, Impl.SCALAR))
    return tuple(out)


def unique_structures(
    candidates: Iterable[Candidate],
) -> tuple[tuple[str, tuple[int, int] | int | None], ...]:
    """The distinct ``(kind, block)`` storage structures behind a candidate
    list, in first-seen order.

    Scalar and SIMD flavours of the same blocking share one converted
    structure, so this is the unit the conversion cost — and therefore any
    structure-only pruning — operates on.
    """
    seen: dict[tuple, None] = {}
    for cand in candidates:
        seen.setdefault((cand.kind, cand.block), None)
    return tuple(seen)


def restrict_to_structures(
    candidates: Iterable[Candidate],
    structures: Iterable[tuple[str, tuple[int, int] | int | None]],
) -> tuple[Candidate, ...]:
    """Filter a candidate list down to the given ``(kind, block)`` structures,
    preserving order (the structure-level inverse of
    :func:`unique_structures`)."""
    keep = set(structures)
    return tuple(c for c in candidates if (c.kind, c.block) in keep)
