"""Extended performance models (the paper's future work, Section VI).

The paper closes: "we intend to extend these models to also account for
memory latencies, which in some cases consist the main performance
bottleneck of SpMV".  This module implements that extension:

* :class:`OverlapLatencyModel` (``overlap+lat``) — OVERLAP (eq. 3) plus a
  latency term ``misses(A, F) * lat_cost``:

  - ``misses(A, F)`` comes from a structural reuse analysis of the
    candidate format's input-vector access stream against the machine's
    published cache geometry (the same windowed working-set analysis the
    package uses elsewhere; a model may analyse the matrix it is asked to
    tune — it already walks the structure to build the format);
  - ``lat_cost`` — the effective seconds per unhidden miss — is
    *calibrated by profiling*, in the same spirit as eq. (4): one large
    uniformly random matrix is measured, its OVERLAP prediction and its
    structural miss estimate are computed, and the residual per miss is
    the machine's latency cost.

EXPERIMENTS.md quantifies what this buys: the latency-bound matrices that
defeat all three of the paper's models (Fig. 3: #11/#12/#15/#28-class)
are predicted within a few percent, while the regular matrices are
unchanged.
"""

from __future__ import annotations

from ..errors import ModelError
from ..formats.base import SparseFormat
from ..machine.cache import estimate_stream_misses, x_budget_lines
from ..machine.machine import MachineModel
from ..types import Impl, Precision
from .models import MODELS, OverlapModel, PerformanceModel
from .profiling import BlockProfile

__all__ = ["OverlapLatencyModel", "estimate_format_misses", "register_extended_models"]


def estimate_format_misses(
    fmt: SparseFormat, machine: MachineModel, precision: Precision | str
) -> int:
    """Structural estimate of non-streaming input-vector misses.

    Uses the machine's public cache geometry only; memoised on the format
    object (shared with the simulator's identical analysis, so a sweep
    computes it once).
    """
    precision = Precision.coerce(precision)
    if fmt.working_set(precision) <= machine.l2.size_bytes:
        return 0
    line_elems = machine.l2.line_bytes // precision.itemsize
    budget = x_budget_lines(
        machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
    )
    total = 0
    for part in fmt.submatrices():
        cache = part.__dict__.setdefault("_x_miss_cache", {})
        misses = cache.get((line_elems, budget))
        if misses is None:
            lines = part.x_access_stream().line_ids(line_elems)
            misses = estimate_stream_misses(lines, budget)
            cache[(line_elems, budget)] = misses
        total += misses
    return total


class OverlapLatencyModel(PerformanceModel):
    """OVERLAP plus a calibrated memory-latency term."""

    name = "overlap+lat"
    requires_profile = True
    impl_aware = True

    def __init__(self) -> None:
        self._overlap = OverlapModel()

    def predict(
        self,
        fmt: SparseFormat,
        machine: MachineModel,
        precision: Precision | str,
        impl: Impl | str = Impl.SCALAR,
        profile: BlockProfile | None = None,
        nthreads: int = 1,
    ) -> float:
        precision = Precision.coerce(precision)
        base = self._overlap.predict(
            fmt, machine, precision, impl, profile, nthreads
        )
        profile = self._check_profile(profile, precision)
        if profile.latency_cost_s is None:
            raise ModelError(
                "profile lacks latency calibration; re-profile with "
                "calibrate_latency=True"
            )
        misses = estimate_format_misses(fmt, machine, precision)
        return base + misses / nthreads * profile.latency_cost_s


def register_extended_models() -> None:
    """Make the extended models available through ``get_model``/``MODELS``."""
    MODELS.setdefault("overlap+lat", OverlapLatencyModel())
