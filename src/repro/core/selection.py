"""Candidate evaluation and format selection (the paper's tuning loop).

:func:`evaluate_candidates` converts a matrix into every candidate format
(structure-only — no value arrays are materialised), asks each performance
model for a prediction, and optionally runs the execution simulator for the
"measured" time.  Conversions share the block-structure analysis between a
padded format and its decomposed sibling, halving the dominant cost.

:class:`AutoTuner` is the high-level public API: profile once, then select
the best (format, block, implementation) for any matrix and build it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ModelError
from ..formats.base import SparseFormat
from ..formats.bcsd import BCSDMatrix
from ..formats.bcsr import BCSRMatrix
from ..formats.blockstats import bcsd_block_stats, bcsr_block_stats
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.decomposed import decompose_bcsd, decompose_bcsr
from ..formats.vbl import VBLMatrix
from ..machine.executor import SimResult, simulate
from ..machine.machine import MachineModel
from ..types import Impl, Precision
from .candidates import Candidate, candidate_space
from .models import MODELS, PerformanceModel
from .profiling import DEFAULT_PROFILE_CACHE, BlockProfile, ProfileCache

__all__ = [
    "CandidateResult",
    "StatsCache",
    "build_candidate",
    "evaluate_candidates",
    "select_with_model",
    "oracle_best",
    "AutoTuner",
]


class StatsCache:
    """Per-matrix cache of block-structure analyses, shared across kinds.

    Pass a ``timings`` dict to accumulate the seconds spent in the
    structural analyses under its ``"stats"`` key (the sweep's ``--profile``
    phase breakdown).
    """

    def __init__(
        self, coo: COOMatrix, *, timings: dict | None = None
    ) -> None:
        self.coo = coo
        self._rect: dict[tuple[int, int], object] = {}
        self._diag: dict[int, object] = {}
        self._timings = timings

    def _charge(self, t0: float) -> None:
        if self._timings is not None:
            self._timings["stats"] = (
                self._timings.get("stats", 0.0) + time.perf_counter() - t0
            )

    def rect(self, r: int, c: int):
        if (r, c) not in self._rect:
            t0 = time.perf_counter()
            self._rect[(r, c)] = bcsr_block_stats(self.coo, r, c)
            self._charge(t0)
        return self._rect[(r, c)]

    def diag(self, b: int):
        if b not in self._diag:
            t0 = time.perf_counter()
            self._diag[b] = bcsd_block_stats(self.coo, b)
            self._charge(t0)
        return self._diag[b]


def build_candidate(
    coo: COOMatrix,
    candidate: Candidate,
    *,
    with_values: bool = False,
    stats_cache: StatsCache | None = None,
) -> SparseFormat:
    """Convert ``coo`` to ``candidate``'s storage format."""
    cache = stats_cache if stats_cache is not None else StatsCache(coo)
    kind, block = candidate.kind, candidate.block
    if kind == "csr":
        return CSRMatrix.from_coo(coo, with_values=with_values)
    if kind == "vbl":
        return VBLMatrix.from_coo(coo, with_values=with_values)
    if kind == "bcsr":
        return BCSRMatrix.from_coo(
            coo, block, with_values=with_values, stats=cache.rect(*block)
        )
    if kind == "bcsr_dec":
        return decompose_bcsr(
            coo, block, with_values=with_values, stats=cache.rect(*block)
        )
    if kind == "bcsd":
        return BCSDMatrix.from_coo(
            coo, block, with_values=with_values, stats=cache.diag(block)
        )
    if kind == "bcsd_dec":
        return decompose_bcsd(
            coo, block, with_values=with_values, stats=cache.diag(block)
        )
    raise ModelError(f"cannot build candidate kind {kind!r}")


@dataclass
class CandidateResult:
    """Everything learnt about one candidate on one matrix."""

    candidate: Candidate
    ws_bytes: int
    padding_ratio: float
    n_blocks: int
    predictions: dict[str, float] = field(default_factory=dict)
    sim: SimResult | None = None

    @property
    def t_real(self) -> float:
        if self.sim is None:
            raise ModelError("candidate was evaluated without simulation")
        return self.sim.t_total


def evaluate_candidates(
    coo: COOMatrix,
    machine: MachineModel,
    precision: Precision | str,
    *,
    candidates: Sequence[Candidate] | None = None,
    models: Iterable[PerformanceModel | str] = ("mem", "memcomp", "overlap"),
    profile: BlockProfile | None = None,
    profile_cache: ProfileCache | None = None,
    run_simulation: bool = True,
    nthreads: int = 1,
    fmt_cache: dict | None = None,
    timings: dict | None = None,
    simulate_fn: Callable | None = None,
) -> list[CandidateResult]:
    """Evaluate every candidate on ``coo``: predictions and simulated time.

    Models that do not cover a candidate (MEMCOMP/OVERLAP on 1D-VBL) simply
    omit a prediction for it, as in the paper.

    Pass a (caller-owned) ``fmt_cache`` dict to reuse the converted
    structures — and their memoised simulation plans and cache-miss
    analyses — across repeated calls for the same matrix (different
    precisions / thread counts).

    Pass a ``timings`` dict to accumulate per-phase seconds into its
    ``"convert"`` / ``"stats"`` / ``"simulate"`` / ``"models"`` keys.
    ``simulate_fn`` overrides the execution simulator (the bit-identity
    tests pass :func:`repro.machine.executor.simulate_reference`).
    """
    precision = Precision.coerce(precision)
    if candidates is None:
        candidates = candidate_space()
    model_objs = [m if isinstance(m, PerformanceModel) else MODELS[m] for m in models]
    needs_profile = any(m.requires_profile for m in model_objs)
    if profile is None and needs_profile:
        cache = profile_cache if profile_cache is not None else DEFAULT_PROFILE_CACHE
        profile = cache.get(machine, precision)
    sim_fn = simulate if simulate_fn is None else simulate_fn

    stats_cache = StatsCache(coo, timings=timings)
    # Build each structure once and share it across scalar/SIMD candidates:
    # the format object memoises its simulation plan and x-miss analysis.
    if fmt_cache is None:
        fmt_cache = {}
    results: list[CandidateResult] = []
    for cand in candidates:
        fmt_key = (cand.kind, cand.block)
        fmt = fmt_cache.get(fmt_key)
        if fmt is None:
            t0 = time.perf_counter()
            stats_s = timings.get("stats", 0.0) if timings is not None else 0.0
            fmt = build_candidate(coo, cand, stats_cache=stats_cache)
            fmt_cache[fmt_key] = fmt
            if timings is not None:
                # Conversion time net of the shared structural analysis,
                # which StatsCache already charged to "stats".
                timings["convert"] = (
                    timings.get("convert", 0.0)
                    + (time.perf_counter() - t0)
                    - (timings.get("stats", 0.0) - stats_s)
                )
        res = CandidateResult(
            candidate=cand,
            ws_bytes=fmt.working_set(precision),
            padding_ratio=fmt.padding_ratio,
            n_blocks=fmt.n_blocks,
        )
        t0 = time.perf_counter()
        for model in model_objs:
            try:
                res.predictions[model.name] = model.predict(
                    fmt, machine, precision, cand.impl, profile, nthreads
                )
            except ModelError:
                continue  # model does not cover this candidate
        if timings is not None:
            timings["models"] = (
                timings.get("models", 0.0) + time.perf_counter() - t0
            )
        if run_simulation:
            t0 = time.perf_counter()
            res.sim = sim_fn(
                fmt, machine, precision, cand.impl, nthreads
            )
            if timings is not None:
                timings["simulate"] = (
                    timings.get("simulate", 0.0) + time.perf_counter() - t0
                )
        results.append(res)
    return results


def select_with_model(
    results: Sequence[CandidateResult], model_name: str
) -> CandidateResult:
    """The candidate a model selects: its own minimum prediction.

    As in the paper, the models tune over the *fixed-size* blocking space
    only (Section IV: "we do not consider variable size blocking methods"),
    and the MEM model — blind to kernel implementations — defaults to the
    non-SIMD kernels.
    """
    from .candidates import FIXED_BLOCK_KINDS

    model = MODELS[model_name]
    pool = [
        r
        for r in results
        if model_name in r.predictions and r.candidate.kind in FIXED_BLOCK_KINDS
    ]
    if not model.impl_aware:
        pool = [r for r in pool if r.candidate.impl is Impl.SCALAR]
    if not pool:
        raise ModelError(f"model {model_name!r} covered no candidate")
    return min(pool, key=lambda r: r.predictions[model_name])


def oracle_best(results: Sequence[CandidateResult]) -> CandidateResult:
    """The candidate with the best *simulated* (measured) time."""
    pool = [r for r in results if r.sim is not None]
    if not pool:
        raise ModelError("no simulated results to take the oracle over")
    return min(pool, key=lambda r: r.t_real)


class AutoTuner:
    """High-level selection API.

    >>> tuner = AutoTuner(CORE2_XEON)
    >>> choice = tuner.select(coo, precision="dp", model="overlap")
    >>> fmt = tuner.build(coo, choice.candidate)   # with values, ready to spmv
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        profile_cache: ProfileCache | None = None,
    ) -> None:
        self.machine = machine
        self.profile_cache = (
            profile_cache if profile_cache is not None else ProfileCache()
        )

    def profile(self, precision: Precision | str) -> BlockProfile:
        """Calibrate (or fetch the cached) block profile."""
        return self.profile_cache.get(self.machine, precision)

    def select(
        self,
        coo: COOMatrix,
        *,
        precision: Precision | str = Precision.DP,
        model: str = "overlap",
        candidates: Sequence[Candidate] | None = None,
        nthreads: int = 1,
        batch: bool = False,
    ) -> CandidateResult:
        """Pick the best candidate for ``coo`` according to ``model``.

        ``batch=True`` evaluates through the whole-matrix array program
        (:class:`repro.machine.batch.MatrixProgram`) — same selection,
        bit-identical predictions, one fused planning pass instead of a
        per-candidate conversion loop.
        """
        if batch:
            # Imported lazily: machine.batch sits above this module.
            from ..machine.batch import MatrixProgram

            if candidates is None:
                candidates = candidate_space()
            program = MatrixProgram(
                coo,
                self.machine,
                candidates,
                profile_cache=self.profile_cache,
            )
            results = program.evaluate(
                precision, nthreads, candidates, models=(model,)
            )
        else:
            results = evaluate_candidates(
                coo,
                self.machine,
                precision,
                candidates=candidates,
                models=(model,),
                profile_cache=self.profile_cache,
                run_simulation=False,
                nthreads=nthreads,
            )
        return select_with_model(results, model)

    def build(
        self, coo: COOMatrix, candidate: Candidate
    ) -> SparseFormat:
        """Materialise the selected format with values, ready for spmv."""
        return build_candidate(coo, candidate, with_values=True)
