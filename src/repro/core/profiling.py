"""Profiling-based model calibration (paper Section IV).

The MEMCOMP and OVERLAP models need two machine-specific inputs per
(block type, implementation, precision):

* ``t_b`` — the execution time of a *single block*, "obtained by profiling
  the execution of a very small dense matrix, which is stored using every
  blocking method and block under consideration and fits in the L1 cache of
  the target machine";
* ``nof`` — the non-overlapping factor of eq. (4), "obtained ... by
  profiling a large dense matrix that exceeds the highest level of cache":

      nof_b = (t_real_b - t_MEM) / (nb * t_b)

Profiling here runs the execution simulator on exactly those two dense
matrices.  The models therefore only ever observe the simulator through the
same narrow aperture the paper's models observe real hardware through —
two dense-matrix profiles — keeping prediction accuracy an honest result.
"""

from __future__ import annotations

import dataclasses
import json
import logging
from dataclasses import dataclass, field, replace
from enum import Enum
from hashlib import sha256
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import ProfileError
from ..formats.base import SparseFormat
from ..formats.bcsd import BCSDMatrix
from ..formats.bcsr import BCSRMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..durability.report import quarantine_artifact, report_write_failure
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    CacheWriteError,
    read_envelope,
    remove_stale_tmp_files,
    write_envelope,
)
from ..machine.executor import simulate
from ..machine.machine import MachineModel
from ..types import DEFAULT_MAX_BLOCK_ELEMS, Impl, Precision
from .candidates import diag_sizes, rect_shapes

__all__ = [
    "BlockProfile",
    "profile_machine",
    "ProfileCache",
    "ProfileStore",
    "dense_coo",
    "machine_token",
    "profile_to_payload",
    "profile_from_payload",
]

logger = logging.getLogger(__name__)

#: Row/column count of the small (in-L1) and large (out-of-L2) dense
#: profiling matrices.  40x40 in CSR double precision is ~21 KiB (< 32 KiB
#: L1); 1024x1024 is ~12-20 MiB (> 4 MiB L2).
SMALL_DENSE_N = 40
LARGE_DENSE_N = 1024


def dense_coo(n: int) -> COOMatrix:
    """A structure-only dense ``n x n`` pattern."""
    idx = np.arange(n, dtype=np.int64)
    rows = np.repeat(idx, n)
    cols = np.tile(idx, n)
    return COOMatrix(n, n, rows, cols, None, canonical=True)


@dataclass(frozen=True)
class BlockProfile:
    """Calibrated per-block times and non-overlapping factors.

    Keyed by ``(block_descriptor, impl)`` where ``block_descriptor`` is the
    format part's ``block_descriptor()`` value, e.g. ``("bcsr", (2, 3))``
    or ``("csr", None)``.
    """

    machine_name: str
    precision: Precision
    t_b: dict[tuple, float] = field(default_factory=dict)
    nof: dict[tuple, float] = field(default_factory=dict)
    #: Calibrated seconds per unhidden input-vector miss (None unless the
    #: profile was taken with ``calibrate_latency=True``); used by the
    #: extended ``overlap+lat`` model (paper Section VI future work).
    latency_cost_s: float | None = None

    def key(self, part: SparseFormat, impl: Impl) -> tuple:
        return (part.block_descriptor(), impl)

    def block_time(self, part: SparseFormat, impl: Impl) -> float:
        try:
            return self.t_b[self.key(part, impl)]
        except KeyError:
            raise ProfileError(
                f"no t_b profiled for {part.block_descriptor()} / {impl}"
            ) from None

    def nof_factor(self, part: SparseFormat, impl: Impl) -> float:
        try:
            return self.nof[self.key(part, impl)]
        except KeyError:
            raise ProfileError(
                f"no nof profiled for {part.block_descriptor()} / {impl}"
            ) from None


def _profiled_builds(max_block_elems: int):
    """(descriptor, impl, builder) triples covering the fixed-size space."""
    builds = []
    builds.append(
        (
            ("csr", None),
            (Impl.SCALAR,),
            lambda coo: CSRMatrix.from_coo(coo, with_values=False),
        )
    )
    for shape in rect_shapes(max_block_elems):
        builds.append(
            (
                ("bcsr", (shape.r, shape.c)),
                (Impl.SCALAR, Impl.SIMD),
                lambda coo, s=shape: BCSRMatrix.from_coo(
                    coo, s, with_values=False
                ),
            )
        )
    for b in diag_sizes(max_block_elems):
        builds.append(
            (
                ("bcsd", b),
                (Impl.SCALAR, Impl.SIMD),
                lambda coo, b=b: BCSDMatrix.from_coo(coo, b, with_values=False),
            )
        )
    return builds


def _dense_csr_ws(n: int, precision: Precision) -> int:
    """Working set of an n x n dense matrix in CSR at ``precision``."""
    e = precision.itemsize
    return (e + 4) * n * n + 4 * (n + 1) + 2 * e * n


def default_profile_sizes(
    machine: MachineModel, precision: Precision
) -> tuple[int, int]:
    """Auto-size the two dense profiling matrices for ``machine``.

    The small matrix must fit comfortably in L1 (the paper's t_b premise),
    the large one must clearly exceed L2 (the nof premise).
    """
    small_n = SMALL_DENSE_N
    while small_n > 4 and _dense_csr_ws(small_n, precision) > int(
        machine.l1.size_bytes * 0.85
    ):
        small_n -= 4
    large_n = LARGE_DENSE_N
    while _dense_csr_ws(large_n, precision) < 3 * machine.l2.size_bytes:
        large_n += 256
    return small_n, large_n


def profile_machine(
    machine: MachineModel,
    precision: Precision | str,
    *,
    max_block_elems: int = DEFAULT_MAX_BLOCK_ELEMS,
    small_n: int | None = None,
    large_n: int | None = None,
    calibrate_latency: bool = False,
) -> BlockProfile:
    """Run the paper's two dense-matrix profiling passes on ``machine``.

    With ``calibrate_latency=True`` a third pass measures a large uniformly
    random matrix and attributes the residual over the OVERLAP prediction
    to input-vector miss latency — the calibration the extended
    ``overlap+lat`` model needs.
    """
    precision = Precision.coerce(precision)
    auto_small, auto_large = default_profile_sizes(machine, precision)
    small_n = auto_small if small_n is None else small_n
    large_n = auto_large if large_n is None else large_n
    small = dense_coo(small_n)
    large = dense_coo(large_n)
    profile = BlockProfile(machine_name=machine.name, precision=precision)

    # Sanity of the methodology's premises (paper Section IV).
    small_ws = CSRMatrix.from_coo(small, with_values=False).working_set(precision)
    if small_ws > machine.l1.size_bytes:
        raise ProfileError(
            f"small dense profile ws ({small_ws} B) exceeds L1 "
            f"({machine.l1.size_bytes} B); decrease small_n"
        )
    large_ws = CSRMatrix.from_coo(large, with_values=False).working_set(precision)
    if large_ws <= machine.l2.size_bytes:
        raise ProfileError(
            f"large dense profile ws ({large_ws} B) does not exceed L2 "
            f"({machine.l2.size_bytes} B); increase large_n"
        )

    for desc, impls, builder in _profiled_builds(max_block_elems):
        fmt_small = builder(small)
        fmt_large = builder(large)
        ws_large = fmt_large.working_set(precision)
        t_mem_large = ws_large / machine.memory_bandwidth(1)
        for impl in impls:
            t_small = simulate(fmt_small, machine, precision, impl).t_total
            t_b = t_small / fmt_small.n_blocks
            t_real_large = simulate(fmt_large, machine, precision, impl).t_total
            nof = (t_real_large - t_mem_large) / (fmt_large.n_blocks * t_b)
            key = (desc, impl)
            profile.t_b[key] = t_b
            profile.nof[key] = max(nof, 0.0)
    if calibrate_latency:
        profile = replace(
            profile, latency_cost_s=_calibrate_latency(machine, precision, profile)
        )
    return profile


def _calibrate_latency(
    machine: MachineModel, precision: Precision, profile: BlockProfile
) -> float:
    """Seconds per unhidden x miss, from one random-matrix measurement.

    Mirrors the nof methodology (eq. 4): measure a workload that isolates
    the effect, subtract what the calibrated model already explains, and
    normalise by the structural estimate of the effect's magnitude.
    """
    from ..machine.cache import estimate_stream_misses, x_budget_lines

    rng = np.random.default_rng(20090701)
    line_elems = machine.l2.line_bytes // precision.itemsize
    budget = x_budget_lines(
        machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
    )
    n = 3 * budget * line_elems
    nnz = 4 * n
    coo = COOMatrix(n, n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), None)
    csr = CSRMatrix.from_coo(coo, with_values=False)

    t_real = simulate(csr, machine, precision, Impl.SCALAR).t_total
    # Inline OVERLAP prediction (eq. 3) for the CSR candidate.
    key = (("csr", None), Impl.SCALAR)
    predicted = csr.working_set(precision) / machine.memory_bandwidth(1) + (
        profile.nof[key] * csr.n_blocks * profile.t_b[key]
    )
    misses = estimate_stream_misses(
        csr.x_access_stream().line_ids(line_elems), budget
    )
    if misses <= 0:
        raise ProfileError(
            "latency calibration matrix produced no estimated misses; "
            "the cache geometry makes the calibration ill-posed"
        )
    return max(t_real - predicted, 0.0) / misses


class ProfileCache:
    """Caches :func:`profile_machine` results per (machine, precision)."""

    def __init__(self) -> None:
        self._cache: dict[tuple, BlockProfile] = {}

    def get(
        self,
        machine: MachineModel,
        precision: Precision | str,
        *,
        calibrate_latency: bool = False,
    ) -> BlockProfile:
        precision = Precision.coerce(precision)
        key = (id(machine), precision, calibrate_latency)
        if key not in self._cache:
            self._cache[key] = profile_machine(
                machine, precision, calibrate_latency=calibrate_latency
            )
        return self._cache[key]

    def seed(
        self,
        machine: MachineModel,
        profile: BlockProfile,
        *,
        calibrate_latency: bool = False,
    ) -> None:
        """Pre-populate with an externally calibrated (or shipped) profile.

        This is the sweep engine's warm-start hook: the parent process
        calibrates once, serializes the profile into each
        :class:`~repro.engine.tasks.ShardTask`, and workers seed their
        per-process cache instead of re-running the ~2.3–3.7 s calibration.
        A profile already cached for the key is kept (first seed wins).
        """
        key = (id(machine), profile.precision, calibrate_latency)
        self._cache.setdefault(key, profile)


#: Module-level default cache used by the selection helpers.
DEFAULT_PROFILE_CACHE = ProfileCache()


# ---------------------------------------------------------------------- #
# Disk persistence of calibrated profiles
# ---------------------------------------------------------------------- #

#: Bump when the profile payload layout *or the calibration methodology*
#: changes (profiling matrix sizes, the nof formula, the simulator's
#: observable behaviour) — stale on-disk profiles are then ignored.
PROFILE_SCHEMA = 1


def _normalize(obj):
    """A JSON-serializable, deterministic view of a (nested) dataclass."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _normalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, Mapping):
        return sorted((str(_normalize(k)), _normalize(v)) for k, v in obj.items())
    if isinstance(obj, (list, tuple)):
        return [_normalize(o) for o in obj]
    return obj


def machine_token(machine: MachineModel) -> str:
    """Content hash of the full machine description.

    Two machines with identical descriptions profile identically (profiling
    is deterministic), so this token — unlike the in-memory caches' ``id()``
    key — is a valid *cross-process* cache key.
    """
    payload = json.dumps(_normalize(machine), sort_keys=True)
    return sha256(payload.encode()).hexdigest()[:16]


def _encode_key(key: tuple) -> list:
    (kind, block), impl = key
    return [kind, list(block) if isinstance(block, tuple) else block, impl.value]


def _decode_key(entry: list) -> tuple:
    kind, block, impl = entry
    block = tuple(block) if isinstance(block, list) else block
    return ((kind, block), Impl(impl))


def profile_to_payload(profile: BlockProfile) -> dict:
    """A JSON-safe encoding of a profile.

    Floats survive the JSON round trip exactly (shortest-repr encoding
    parses back to the same double), so a profile loaded from disk produces
    bit-identical predictions to the freshly calibrated one.
    """
    return {
        "machine_name": profile.machine_name,
        "precision": profile.precision.value,
        "t_b": sorted(
            (_encode_key(k) + [v] for k, v in profile.t_b.items()),
            key=lambda e: json.dumps(e[:3]),
        ),
        "nof": sorted(
            (_encode_key(k) + [v] for k, v in profile.nof.items()),
            key=lambda e: json.dumps(e[:3]),
        ),
        "latency_cost_s": profile.latency_cost_s,
    }


def profile_from_payload(payload: Mapping) -> BlockProfile:
    """Rebuild a :class:`BlockProfile` from :func:`profile_to_payload`."""
    return BlockProfile(
        machine_name=payload["machine_name"],
        precision=Precision(payload["precision"]),
        t_b={_decode_key(e[:3]): e[3] for e in payload["t_b"]},
        nof={_decode_key(e[:3]): e[3] for e in payload["nof"]},
        latency_cost_s=payload["latency_cost_s"],
    )


class ProfileStore(ProfileCache):
    """A :class:`ProfileCache` backed by ``<cache_dir>/profiles/`` on disk.

    Entries are keyed by a content hash of the machine description plus the
    calibration parameters, so a changed preset, simulator or profiling
    methodology (via :data:`PROFILE_SCHEMA`) never serves a stale profile.
    The JSON round trip is float-exact: a disk-served profile is
    indistinguishable from a fresh calibration, keeping every downstream
    output byte-identical.
    """

    def __init__(self, cache_dir: str | Path) -> None:
        super().__init__()
        self.cache_root = Path(cache_dir)
        self.root = self.cache_root / "profiles"
        remove_stale_tmp_files(self.root)

    def path(
        self,
        machine: MachineModel,
        precision: Precision,
        calibrate_latency: bool,
    ) -> Path:
        token_src = "|".join(
            (
                machine_token(machine),
                precision.value,
                f"lat{int(calibrate_latency)}",
                f"s{PROFILE_SCHEMA}",
                f"b{DEFAULT_MAX_BLOCK_ELEMS}",
            )
        )
        token = sha256(token_src.encode()).hexdigest()[:16]
        return self.root / f"profile_{token}.json"

    def get(
        self,
        machine: MachineModel,
        precision: Precision | str,
        *,
        calibrate_latency: bool = False,
    ) -> BlockProfile:
        profile, _ = self.get_with_source(
            machine, precision, calibrate_latency=calibrate_latency
        )
        return profile

    def get_with_source(
        self,
        machine: MachineModel,
        precision: Precision | str,
        *,
        calibrate_latency: bool = False,
    ) -> tuple[BlockProfile, str]:
        """The profile plus where it came from: memory / disk / calibrated."""
        precision = Precision.coerce(precision)
        key = (id(machine), precision, calibrate_latency)
        if key in self._cache:
            return self._cache[key], "memory"
        profile = self.load_cached(
            machine, precision, calibrate_latency=calibrate_latency
        )
        if profile is not None:
            self._cache[key] = profile
            return profile, "disk"
        profile = profile_machine(
            machine, precision, calibrate_latency=calibrate_latency
        )
        self._cache[key] = profile
        self.store_profile(
            machine, precision, profile, calibrate_latency=calibrate_latency
        )
        return profile, "calibrated"

    def load_cached(
        self,
        machine: MachineModel,
        precision: Precision | str,
        *,
        calibrate_latency: bool = False,
    ) -> BlockProfile | None:
        """The on-disk profile, or ``None`` (absent, stale, or corrupt —
        a corrupt file is quarantined for ``repro fsck`` to report)."""
        precision = Precision.coerce(precision)
        path = self.path(machine, precision, calibrate_latency)
        if not path.exists():
            return None
        try:
            payload = read_envelope(path)
        except CACHE_DECODE_ERRORS as exc:
            quarantine_artifact(
                path, self.cache_root, owner="profiles", error=exc
            )
            return None
        try:
            if payload["schema"] != PROFILE_SCHEMA:
                raise ValueError("schema mismatch")
            return profile_from_payload(payload["profile"])
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "discarding stale profile cache %s (%s: %s); recalibrating",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)
            return None

    def store_profile(
        self,
        machine: MachineModel,
        precision: Precision | str,
        profile: BlockProfile,
        *,
        calibrate_latency: bool = False,
    ) -> bool:
        """Persist a calibrated profile; ``False`` when the write failed.

        Calibration is deterministic and repeatable, so a failed write
        (full disk) costs the *next* process a recalibration — it never
        crashes this one.
        """
        precision = Precision.coerce(precision)
        path = self.path(machine, precision, calibrate_latency)
        try:
            write_envelope(path, {
                "schema": PROFILE_SCHEMA,
                "machine": machine.name,
                "profile": profile_to_payload(profile),
            }, schema=PROFILE_SCHEMA)
        except CacheWriteError as exc:
            report_write_failure(owner="profiles", path=path, error=exc)
            return False
        return True
