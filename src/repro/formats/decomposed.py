"""Decomposed blocking formats (BCSR-DEC and BCSD-DEC).

A decomposed format avoids padding by splitting the input matrix A into
k = 2 submatrices (paper Section II-B): A = A_blocked + A_rest, where
A_blocked holds only *completely full* blocks (no padding needed) in the
base blocked format, and A_rest holds every remaining nonzero in plain CSR.

SpMV runs one pass per submatrix, accumulating into the same output vector;
the working set therefore charges the x and y vectors once per (non-empty)
pass, which is exactly the extra traffic the paper identifies as the cost of
decomposition ("additional operations are needed to accumulate the partial
results").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConversionError, FormatError
from ..types import BlockShape, Precision
from .base import SparseFormat, XAccessStream
from .bcsd import BCSDMatrix
from .bcsr import BCSRMatrix
from .blockstats import bcsd_block_stats, bcsr_block_stats
from .coo import COOMatrix
from .csr import CSRMatrix

__all__ = ["DecomposedMatrix", "decompose_bcsr", "decompose_bcsd"]


class DecomposedMatrix(SparseFormat):
    """A sum of k sparse submatrices, applied as k accumulating SpMV passes."""

    kind = "decomposed"
    display_name = "DEC"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        parts: Sequence[SparseFormat],
        kind: str,
        display_name: str,
    ) -> None:
        if not parts:
            raise FormatError("a decomposed matrix needs at least one part")
        for part in parts:
            if part.shape != (nrows, ncols):
                raise FormatError(
                    f"part shape {part.shape} != matrix shape ({nrows}, {ncols})"
                )
        super().__init__(nrows, ncols, sum(p.nnz for p in parts))
        self.parts = tuple(parts)
        self.kind = kind
        self.display_name = display_name

    # ------------------------------------------------------------------ #
    @property
    def nnz_stored(self) -> int:
        return sum(p.nnz_stored for p in self.parts)

    def index_bytes(self) -> int:
        return sum(p.index_bytes() for p in self.parts)

    def working_set(self, precision: Precision | str) -> int:
        # x and y are streamed once per pass (per non-empty submatrix), and
        # every pass after the first re-reads y to accumulate into it.
        p = Precision.coerce(precision)
        per_pass = sum(
            part.working_set_matrix_only(p) + part.vector_bytes(p)
            for part in self.parts
        )
        return per_pass + (len(self.parts) - 1) * p.itemsize * self.nrows

    @property
    def n_blocks(self) -> int:
        return sum(p.n_blocks for p in self.parts)

    @property
    def n_block_rows(self) -> int:
        return sum(p.n_block_rows for p in self.parts)

    def block_descriptor(self) -> tuple:
        return (self.kind, tuple(p.block_descriptor() for p in self.parts))

    def x_access_stream(self) -> XAccessStream:
        # Used only as a fallback; the simulator walks submatrices() and uses
        # each part's own stream, preserving per-pass access granularity.
        streams = [p.x_access_stream() for p in self.parts]
        starts = np.concatenate([s.starts for s in streams]) if streams else np.empty(0)
        width = max((s.width for s in streams), default=1)
        return XAccessStream(starts, width)

    def submatrices(self) -> Sequence[SparseFormat]:
        return self.parts

    @property
    def has_values(self) -> bool:
        return all(p.has_values for p in self.parts)

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        for part in self.parts:
            part.spmv(x, out=out)
        return out

    def to_coo(self) -> COOMatrix:
        """Merge the parts back into one COO matrix."""
        if not self.has_values:
            raise FormatError("structure-only decomposition cannot be exported")
        parts = [p.to_coo() for p in self.parts]
        return COOMatrix(
            self.nrows,
            self.ncols,
            np.concatenate([p.rows for p in parts]),
            np.concatenate([p.cols for p in parts]),
            np.concatenate([p.values for p in parts]),
        )

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only decomposition has no values")
        diag = np.zeros(min(self.nrows, self.ncols), dtype=np.float64)
        for part in self.parts:
            diag += part.diagonal()
        return diag

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only decomposition cannot be densified")
        dense = np.zeros(self.shape)
        for part in self.parts:
            dense = dense + part.to_dense()
        return dense


def decompose_bcsr(
    coo: COOMatrix,
    block: BlockShape | tuple[int, int],
    *,
    with_values: bool = True,
    stats=None,
) -> DecomposedMatrix:
    """Build BCSR-DEC: full ``r x c`` blocks + CSR remainder (k = 2).

    The blocked part is assembled straight from the parent's
    :class:`~repro.formats.blockstats.BlockStats` (full blocks are already
    enumerated in block order), avoiding a second structural analysis.
    """
    block = block if isinstance(block, BlockShape) else BlockShape(*block)
    if stats is None:
        stats = bcsr_block_stats(coo, block.r, block.c)
    full = stats.full_mask()
    in_full = full[stats.nnz_block]
    parts: list[SparseFormat] = []
    n_full = int(full.sum())
    if n_full:
        brow_ptr = _ptr_from_rows(stats.block_row[full], stats.n_block_rows)
        bcol_ind = stats.block_start_col[full] // block.c
        bval = None
        if with_values and coo.values is not None:
            new_index = np.cumsum(full, dtype=np.int64) - 1  # old block -> new
            bval = np.zeros((n_full, block.r, block.c), dtype=np.float64)
            flat = bval.reshape(n_full, block.elems)
            flat[
                new_index[stats.nnz_block[in_full]], stats.nnz_offset[in_full]
            ] = coo.values[in_full]
        parts.append(
            BCSRMatrix(
                coo.nrows,
                coo.ncols,
                block,
                brow_ptr,
                bcol_ind,
                bval,
                int(in_full.sum()),
            )
        )
    rest_coo = _subset(coo, ~in_full)
    if rest_coo.nnz or not parts:
        parts.append(CSRMatrix.from_coo(rest_coo, with_values=with_values))
    dec = DecomposedMatrix(coo.nrows, coo.ncols, parts, "bcsr_dec", "BCSR-DEC")
    if dec.padding:
        raise ConversionError("BCSR-DEC must be padding-free")  # pragma: no cover
    return dec


def decompose_bcsd(
    coo: COOMatrix,
    b: int,
    *,
    with_values: bool = True,
    stats=None,
) -> DecomposedMatrix:
    """Build BCSD-DEC: full size-``b`` diagonal blocks + CSR remainder."""
    if stats is None:
        stats = bcsd_block_stats(coo, b)
    full = stats.full_mask()
    in_full = full[stats.nnz_block]
    parts: list[SparseFormat] = []
    n_full = int(full.sum())
    if n_full:
        brow_ptr = _ptr_from_rows(stats.block_row[full], stats.n_block_rows)
        bcol_ind = stats.block_start_col[full]
        bval = None
        if with_values and coo.values is not None:
            new_index = np.cumsum(full, dtype=np.int64) - 1
            bval = np.zeros((n_full, b), dtype=np.float64)
            bval[
                new_index[stats.nnz_block[in_full]], stats.nnz_offset[in_full]
            ] = coo.values[in_full]
        parts.append(
            BCSDMatrix(
                coo.nrows,
                coo.ncols,
                b,
                brow_ptr,
                bcol_ind,
                bval,
                int(in_full.sum()),
            )
        )
    rest_coo = _subset(coo, ~in_full)
    if rest_coo.nnz or not parts:
        parts.append(CSRMatrix.from_coo(rest_coo, with_values=with_values))
    dec = DecomposedMatrix(coo.nrows, coo.ncols, parts, "bcsd_dec", "BCSD-DEC")
    if dec.padding:
        raise ConversionError("BCSD-DEC must be padding-free")  # pragma: no cover
    return dec


def _ptr_from_rows(block_row: np.ndarray, n_block_rows: int) -> np.ndarray:
    counts = np.bincount(block_row, minlength=n_block_rows)
    ptr = np.zeros(n_block_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr


def _subset(coo: COOMatrix, mask: np.ndarray) -> COOMatrix:
    values = coo.values[mask] if coo.values is not None else None
    return COOMatrix(
        coo.nrows, coo.ncols, coo.rows[mask], coo.cols[mask], values, canonical=True
    )
