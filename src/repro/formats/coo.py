"""Canonical coordinate (COO) container.

Every matrix in this package starts life as a :class:`COOMatrix`: the
synthetic generators emit COO, the Matrix Market reader emits COO and every
blocked-format converter consumes COO.  The container is *canonical*:
entries are sorted row-major, duplicates are summed, explicit zeros are kept
(they are legitimate nonzero *positions*; the paper's formats store
positions, not values).
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError, ShapeMismatchError
from ..types import INDEX_BYTES, Precision
from .base import SparseFormat, XAccessStream

__all__ = ["COOMatrix"]


class COOMatrix(SparseFormat):
    """An immutable, canonicalised coordinate-format sparse matrix."""

    kind = "coo"
    display_name = "COO"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray | None = None,
        *,
        canonical: bool = False,
    ) -> None:
        rows = np.asarray(rows, dtype=np.int64).ravel()
        cols = np.asarray(cols, dtype=np.int64).ravel()
        if rows.shape != cols.shape:
            raise ShapeMismatchError(
                f"rows and cols differ in length: {rows.shape} vs {cols.shape}"
            )
        if values is not None:
            values = np.asarray(values, dtype=np.float64).ravel()
            if values.shape != rows.shape:
                raise ShapeMismatchError(
                    f"values length {values.shape} != index length {rows.shape}"
                )
        if rows.size:
            if rows.min(initial=0) < 0 or cols.min(initial=0) < 0:
                raise FormatError("negative indices in COO data")
            if rows.max(initial=-1) >= nrows or cols.max(initial=-1) >= ncols:
                raise FormatError(
                    "indices exceed matrix shape "
                    f"({nrows}, {ncols}): max ({rows.max()}, {cols.max()})"
                )
        if not canonical:
            rows, cols, values = _canonicalise(nrows, ncols, rows, cols, values)
        super().__init__(nrows, ncols, rows.shape[0])
        self.rows = rows
        self.cols = cols
        self.values = values
        self.rows.setflags(write=False)
        self.cols.setflags(write=False)
        if self.values is not None:
            self.values.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeMismatchError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols])

    @classmethod
    def eye(cls, n: int) -> "COOMatrix":
        idx = np.arange(n, dtype=np.int64)
        return cls(n, n, idx, idx, np.ones(n), canonical=True)

    def with_values(self, values: np.ndarray) -> "COOMatrix":
        """Return a copy carrying ``values`` (same sparsity pattern)."""
        return COOMatrix(
            self.nrows, self.ncols, self.rows, self.cols, values, canonical=True
        )

    def pattern_only(self) -> "COOMatrix":
        """Return a structure-only copy (drops the value array)."""
        if self.values is None:
            return self
        return COOMatrix(
            self.nrows, self.ncols, self.rows, self.cols, None, canonical=True
        )

    # ------------------------------------------------------------------ #
    # SparseFormat interface
    # ------------------------------------------------------------------ #
    @property
    def nnz_stored(self) -> int:
        return self.nnz

    def index_bytes(self) -> int:
        # rows + cols, 4-byte entries (COO is never a candidate format in the
        # paper, but the accounting keeps it comparable).
        return 2 * INDEX_BYTES * self.nnz

    @property
    def n_blocks(self) -> int:
        return self.nnz

    @property
    def n_block_rows(self) -> int:
        return self.nrows

    def block_descriptor(self) -> tuple:
        return ("coo", None)

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.cols, 1)

    @property
    def has_values(self) -> bool:
        return self.values is not None

    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        np.add.at(out, self.rows, self.values * x[self.cols])
        return out

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only COO cannot be densified")
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        dense[self.rows, self.cols] = self.values
        return dense

    # ------------------------------------------------------------------ #
    # Analysis helpers used by converters and statistics
    # ------------------------------------------------------------------ #
    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only COO has no values to extract")
        diag = np.zeros(min(self.nrows, self.ncols), dtype=np.float64)
        mask = self.rows == self.cols
        diag[self.rows[mask]] = self.values[mask]
        return diag

    def to_coo(self) -> "COOMatrix":
        return self

    def row_counts(self) -> np.ndarray:
        """nnz per row (length nrows)."""
        return np.bincount(self.rows, minlength=self.nrows).astype(np.int64)

    def working_set(self, precision: Precision | str = Precision.DP) -> int:
        return super().working_set(precision)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, COOMatrix):
            return NotImplemented
        same_pattern = (
            self.shape == other.shape
            and np.array_equal(self.rows, other.rows)
            and np.array_equal(self.cols, other.cols)
        )
        if not same_pattern:
            return False
        if (self.values is None) != (other.values is None):
            return False
        return self.values is None or np.array_equal(self.values, other.values)

    __hash__ = None  # type: ignore[assignment]


def _canonicalise(
    nrows: int,
    ncols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Sort row-major and merge duplicate coordinates (summing values)."""
    if rows.size == 0:
        return rows, cols, values
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if values is not None:
        values = values[order]
    dup = np.empty(rows.shape[0], dtype=bool)
    dup[0] = False
    dup[1:] = (rows[1:] == rows[:-1]) & (cols[1:] == cols[:-1])
    if dup.any():
        keep = ~dup
        if values is not None:
            # Sum runs of duplicates into the first element of each run.
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, values)
            values = summed
        rows = rows[keep]
        cols = cols[keep]
    return rows, cols, values
