"""Binary serialization of converted formats (NumPy ``.npz`` containers).

Converting a large matrix into a blocked format costs a full structural
analysis; production autotuners cache the converted result.  These helpers
save any of this package's formats to a single ``.npz`` file and load it
back without re-running the converter.

The on-disk layout is versioned and self-describing: a ``__meta__`` JSON
blob (kind, shape, block parameters, nnz) plus one entry per index/value
array.  Decomposed formats nest their parts with prefixed keys.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import FormatError
from ..types import BlockShape
from .base import SparseFormat
from .bcsd import BCSDMatrix
from .bcsr import BCSRMatrix
from .coo import COOMatrix
from .csr import CSRMatrix
from .csrdu import CSRDUMatrix
from .decomposed import DecomposedMatrix
from .ubcsr import UBCSRMatrix
from .vbl import VBLMatrix
from .vbr import VBRMatrix

__all__ = ["save_format", "load_format"]

_VERSION = 1


def _collect(fmt: SparseFormat, prefix: str = "") -> tuple[dict, dict]:
    """(meta, arrays) for one non-decomposed format."""
    meta: dict = {"kind": fmt.kind, "nrows": fmt.nrows, "ncols": fmt.ncols,
                  "nnz": fmt.nnz}
    arrays: dict = {}

    def put(name: str, arr) -> None:
        if arr is not None:
            arrays[prefix + name] = np.asarray(arr)
            meta.setdefault("arrays", []).append(name)

    if isinstance(fmt, COOMatrix):
        put("rows", fmt.rows)
        put("cols", fmt.cols)
        put("values", fmt.values)
    elif isinstance(fmt, CSRMatrix):
        put("row_ptr", fmt.row_ptr)
        put("col_ind", fmt.col_ind)
        put("values", fmt.values)
    elif isinstance(fmt, CSRDUMatrix):
        put("ctl", fmt.ctl)
        put("values", fmt.values)
        put("unit_row", fmt.unit_row)
        put("unit_val_offset", fmt.unit_val_offset)
        put("unit_count", fmt.unit_count)
        put("unit_base", fmt.unit_base)
        put("unit_width", fmt.unit_width)
        put("unit_delta_offset", fmt.unit_delta_offset)
        put("deltas", fmt._deltas)
    elif isinstance(fmt, BCSRMatrix):
        meta["block"] = [fmt.block.r, fmt.block.c]
        put("brow_ptr", fmt.brow_ptr)
        put("bcol_ind", fmt.bcol_ind)
        put("bval", fmt.bval)
    elif isinstance(fmt, UBCSRMatrix):
        meta["block"] = [fmt.block.r, fmt.block.c]
        put("brow_ptr", fmt.brow_ptr)
        put("bcol_start", fmt.bcol_start)
        put("bval", fmt.bval)
    elif isinstance(fmt, BCSDMatrix):
        meta["b"] = fmt.b
        put("brow_ptr", fmt.brow_ptr)
        put("bcol_ind", fmt.bcol_ind)
        put("bval", fmt.bval)
    elif isinstance(fmt, VBLMatrix):
        put("row_ptr", fmt.row_ptr)
        put("bcol_ind", fmt.bcol_ind)
        put("blk_size", fmt.blk_size)
        put("block_row_ptr", fmt.block_row_ptr)
        put("values", fmt.values)
    elif isinstance(fmt, VBRMatrix):
        put("rpntr", fmt.rpntr)
        put("cpntr", fmt.cpntr)
        put("bpntr", fmt.bpntr)
        put("bindx", fmt.bindx)
        put("indx", fmt.indx)
        put("val", fmt.val)
    else:
        raise FormatError(f"cannot serialise format kind {fmt.kind!r}")
    return meta, arrays


def save_format(path: str | Path, fmt: SparseFormat) -> None:
    """Save any format to a ``.npz`` file."""
    arrays: dict = {}
    if isinstance(fmt, DecomposedMatrix):
        meta = {
            "version": _VERSION,
            "kind": fmt.kind,
            "display_name": fmt.display_name,
            "nrows": fmt.nrows,
            "ncols": fmt.ncols,
            "parts": [],
        }
        for i, part in enumerate(fmt.parts):
            part_meta, part_arrays = _collect(part, prefix=f"p{i}_")
            meta["parts"].append(part_meta)
            arrays.update(part_arrays)
    else:
        meta, arrays = _collect(fmt)
        meta["version"] = _VERSION
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(Path(path), **arrays)


def _rebuild(meta: dict, arrays: dict, prefix: str = "") -> SparseFormat:
    kind = meta["kind"]
    nrows, ncols, nnz = meta["nrows"], meta["ncols"], meta["nnz"]

    def get(name: str):
        return arrays.get(prefix + name)

    if kind == "coo":
        return COOMatrix(
            nrows, ncols, get("rows"), get("cols"), get("values"),
            canonical=True,
        )
    if kind == "csr":
        return CSRMatrix(nrows, ncols, get("row_ptr"), get("col_ind"),
                         get("values"))
    if kind == "csr_du":
        return CSRDUMatrix(
            nrows, ncols, get("ctl"), get("values"),
            unit_row=get("unit_row"),
            unit_val_offset=get("unit_val_offset"),
            unit_count=get("unit_count"),
            unit_base=get("unit_base"),
            unit_width=get("unit_width"),
            unit_delta_offset=get("unit_delta_offset"),
            deltas=get("deltas"),
            nnz=nnz,
        )
    if kind == "bcsr":
        return BCSRMatrix(
            nrows, ncols, BlockShape(*meta["block"]), get("brow_ptr"),
            get("bcol_ind"), get("bval"), nnz,
        )
    if kind == "ubcsr":
        return UBCSRMatrix(
            nrows, ncols, BlockShape(*meta["block"]), get("brow_ptr"),
            get("bcol_start"), get("bval"), nnz,
        )
    if kind == "bcsd":
        return BCSDMatrix(
            nrows, ncols, meta["b"], get("brow_ptr"), get("bcol_ind"),
            get("bval"), nnz,
        )
    if kind == "vbl":
        return VBLMatrix(
            nrows, ncols, get("row_ptr"), get("bcol_ind"), get("blk_size"),
            get("block_row_ptr"), get("values"),
        )
    if kind == "vbr":
        return VBRMatrix(
            nrows, ncols, get("rpntr"), get("cpntr"), get("bpntr"),
            get("bindx"), get("indx"), get("val"), nnz,
        )
    raise FormatError(f"cannot deserialise format kind {kind!r}")


def load_format(path: str | Path) -> SparseFormat:
    """Load a format saved by :func:`save_format`."""
    with np.load(Path(path)) as data:
        arrays = {k: data[k] for k in data.files}
    try:
        meta = json.loads(bytes(arrays.pop("__meta__")).decode())
    except (KeyError, json.JSONDecodeError) as exc:
        raise FormatError(f"{path} is not a repro format file") from None
    if meta.get("version") != _VERSION:
        raise FormatError(
            f"unsupported format file version {meta.get('version')!r}"
        )
    if "parts" in meta:
        parts = [
            _rebuild(pm, arrays, prefix=f"p{i}_")
            for i, pm in enumerate(meta["parts"])
        ]
        return DecomposedMatrix(
            meta["nrows"], meta["ncols"], parts, meta["kind"],
            meta["display_name"],
        )
    return _rebuild(meta, arrays)
