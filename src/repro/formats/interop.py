"""Interoperability with SciPy sparse matrices.

The reproduction implements every storage format from scratch (the point is
to own the byte-level layout the performance models reason about), but
downstream users live in the SciPy ecosystem: these converters bridge the
two worlds, so a ``scipy.sparse`` matrix can be autotuned and a tuned
format can be handed back for further SciPy processing.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConversionError
from .base import SparseFormat
from .coo import COOMatrix

__all__ = ["from_scipy", "to_scipy_coo", "to_scipy_csr"]


def from_scipy(matrix) -> COOMatrix:
    """Convert any ``scipy.sparse`` matrix (or array) to a COOMatrix."""
    try:
        coo = matrix.tocoo()
    except AttributeError:
        raise ConversionError(
            f"expected a scipy.sparse matrix, got {type(matrix).__name__}"
        ) from None
    return COOMatrix(
        int(coo.shape[0]),
        int(coo.shape[1]),
        np.asarray(coo.row, dtype=np.int64),
        np.asarray(coo.col, dtype=np.int64),
        np.asarray(coo.data, dtype=np.float64),
    )


def to_scipy_coo(fmt: SparseFormat):
    """Convert any of this package's formats to ``scipy.sparse.coo_matrix``.

    Goes through the format's own O(nnz) ``to_coo`` extraction; padding
    zeros of the padded formats are dropped (SciPy stores true nonzeros
    only), so the round trip is value-exact but not layout-exact.
    """
    from scipy import sparse

    if not fmt.has_values:
        raise ConversionError("structure-only formats carry no values")
    coo = fmt.to_coo()
    return sparse.coo_matrix(
        (coo.values, (coo.rows, coo.cols)), shape=coo.shape
    )


def to_scipy_csr(coo: COOMatrix):
    """Convert a COOMatrix to ``scipy.sparse.csr_matrix``."""
    from scipy import sparse

    if not coo.has_values:
        raise ConversionError("structure-only COO carries no values")
    return sparse.csr_matrix(
        (coo.values, (coo.rows, coo.cols)), shape=coo.shape
    )
