"""Blocked Compressed Sparse Diagonal (BCSD) — fixed diagonal blocks, padded.

BCSD is the diagonal analogue of BCSR (paper Section II-A): the matrix is
cut into row *segments* of height ``b`` (a size-``b`` block must start at a
row ``i`` with ``i mod b == 0``), and each block stores ``b`` elements along
a diagonal starting at ``(s*b, j0)``: positions ``(s*b + t, j0 + t)``.
Missing positions are padded with zeros; ``j0`` may run off the left or
right matrix edge for boundary diagonals, in which case the out-of-range
positions are padding as well.

Arrays: ``bval`` (one length-``b`` diagonal per block), ``bcol_ind`` (the
starting column ``j0`` of each block) and ``brow_ptr`` (pointers to the
first block of each segment).
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES
from .base import SparseFormat, XAccessStream
from .blockstats import BlockStats, bcsd_block_stats
from .coo import COOMatrix

__all__ = ["BCSDMatrix"]


class BCSDMatrix(SparseFormat):
    """Aligned fixed-size diagonal blocking with zero padding."""

    kind = "bcsd"
    display_name = "BCSD"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        b: int,
        brow_ptr: np.ndarray,
        bcol_ind: np.ndarray,
        bval: np.ndarray | None,
        nnz: int,
    ) -> None:
        if b < 1:
            raise FormatError(f"invalid BCSD block size {b}")
        brow_ptr = np.asarray(brow_ptr, dtype=np.int64)
        bcol_ind = np.asarray(bcol_ind, dtype=np.int64)
        n_segs = -(-nrows // b) if nrows else 0
        if brow_ptr.shape != (n_segs + 1,):
            raise FormatError(
                f"brow_ptr has length {brow_ptr.shape[0]}, expected {n_segs + 1}"
            )
        if brow_ptr[-1] != bcol_ind.shape[0]:
            raise FormatError("brow_ptr does not bracket bcol_ind")
        if bval is not None:
            bval = np.asarray(bval)
            if bval.shape != (bcol_ind.shape[0], b):
                raise FormatError(
                    f"bval has shape {bval.shape}, expected "
                    f"({bcol_ind.shape[0]}, {b})"
                )
        super().__init__(nrows, ncols, nnz)
        self.b = int(b)
        self.brow_ptr = brow_ptr
        self.bcol_ind = bcol_ind
        self.bval = bval

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        b: int,
        *,
        with_values: bool = True,
        stats: BlockStats | None = None,
    ) -> "BCSDMatrix":
        if stats is None:
            stats = bcsd_block_stats(coo, b)
        counts = np.bincount(stats.block_row, minlength=stats.n_block_rows)
        brow_ptr = np.zeros(stats.n_block_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=brow_ptr[1:])
        bval = None
        if with_values and coo.values is not None:
            bval = np.zeros((stats.n_blocks, b), dtype=np.float64)
            bval[stats.nnz_block, stats.nnz_offset] = coo.values
        return cls(
            coo.nrows, coo.ncols, b, brow_ptr, stats.block_start_col, bval, coo.nnz
        )

    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        return int(self.bcol_ind.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.n_blocks * self.b

    def index_bytes(self) -> int:
        return INDEX_BYTES * self.n_blocks + self._ptr_bytes(self.brow_ptr.shape[0])

    @property
    def n_block_rows(self) -> int:
        return int(self.brow_ptr.shape[0] - 1)

    def block_descriptor(self) -> tuple:
        return ("bcsd", self.b)

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.bcol_ind, self.b)

    @property
    def has_values(self) -> bool:
        return self.bval is not None

    def segments_of_blocks(self) -> np.ndarray:
        """Segment index of every block (length n_blocks)."""
        return np.repeat(
            np.arange(self.n_block_rows, dtype=np.int64), np.diff(self.brow_ptr)
        )

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only BCSD has no values to extract")
        n = min(self.nrows, self.ncols)
        diag = np.zeros(n, dtype=np.float64)
        segs = self.segments_of_blocks()
        # A block lies on the main diagonal iff it starts at column seg*b.
        on_diag = np.flatnonzero(self.bcol_ind == segs * self.b)
        for idx in on_diag.tolist():
            start = int(segs[idx]) * self.b
            stop = min(start + self.b, n)
            diag[start:stop] = self.bval[idx, : stop - start]
        return diag

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.bcsd_kernels import spmv_bcsd

        return spmv_bcsd(self, x, out)

    def to_coo(self) -> COOMatrix:
        """Extract the true nonzeros (padding zeros are dropped)."""
        if not self.has_values:
            raise FormatError("structure-only BCSD cannot be exported")
        t = np.arange(self.b, dtype=np.int64)[None, :]
        rows = self.segments_of_blocks()[:, None] * self.b + t
        cols = self.bcol_ind[:, None] + t
        mask = (
            (self.bval != 0)
            & (rows < self.nrows)
            & (cols >= 0)
            & (cols < self.ncols)
        )
        return COOMatrix(
            self.nrows, self.ncols, rows[np.broadcast_to(mask, rows.shape)],
            cols[mask], self.bval[mask]
        )

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only BCSD cannot be densified")
        dense = np.zeros(self.shape, dtype=self.bval.dtype)
        segs = self.segments_of_blocks()
        for idx in range(self.n_blocks):
            s = int(segs[idx])
            j0 = int(self.bcol_ind[idx])
            for t in range(self.b):
                i, j = s * self.b + t, j0 + t
                if 0 <= i < self.nrows and 0 <= j < self.ncols:
                    v = self.bval[idx, t]
                    if v != 0.0:
                        dense[i, j] = v
        return dense
