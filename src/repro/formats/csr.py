"""Compressed Sparse Row (CSR) — the baseline format of the paper.

CSR stores an ``n x m`` matrix with ``nnz`` nonzeros in three arrays:
``val`` (nnz values), ``col_ind`` (nnz column indices) and ``row_ptr``
(n + 1 pointers into ``val``).  The performance models treat CSR as a
degenerate blocking method with 1x1 blocks and ``nb = nnz``.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES
from .base import SparseFormat, XAccessStream
from .coo import COOMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix(SparseFormat):
    """Compressed Sparse Row storage."""

    kind = "csr"
    display_name = "CSR"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        col_ind: np.ndarray,
        values: np.ndarray | None = None,
    ) -> None:
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        col_ind = np.asarray(col_ind, dtype=np.int64)
        if row_ptr.shape != (nrows + 1,):
            raise FormatError(
                f"row_ptr has length {row_ptr.shape[0]}, expected {nrows + 1}"
            )
        if row_ptr[0] != 0 or row_ptr[-1] != col_ind.shape[0]:
            raise FormatError("row_ptr does not bracket col_ind")
        if np.any(np.diff(row_ptr) < 0):
            raise FormatError("row_ptr must be non-decreasing")
        if values is not None:
            values = np.asarray(values)
            if values.shape != col_ind.shape:
                raise FormatError("values and col_ind lengths differ")
        super().__init__(nrows, ncols, col_ind.shape[0])
        self.row_ptr = row_ptr
        self.col_ind = col_ind
        self.values = values

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, with_values: bool = True) -> "CSRMatrix":
        counts = np.bincount(coo.rows, minlength=coo.nrows)
        row_ptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        values = coo.values if (with_values and coo.values is not None) else None
        # COO is canonical (row-major sorted), so col_ind is already ordered.
        return cls(coo.nrows, coo.ncols, row_ptr, coo.cols, values)

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.row_ptr)
        )
        return COOMatrix(
            self.nrows, self.ncols, rows, self.col_ind, self.values, canonical=True
        )

    # ------------------------------------------------------------------ #
    @property
    def nnz_stored(self) -> int:
        return self.nnz

    def index_bytes(self) -> int:
        return INDEX_BYTES * self.nnz + self._ptr_bytes(self.nrows + 1)

    @property
    def n_blocks(self) -> int:
        # CSR as a degenerate 1x1 blocking: one "block" per element.
        return self.nnz

    @property
    def n_block_rows(self) -> int:
        return self.nrows

    def block_descriptor(self) -> tuple:
        return ("csr", None)

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.col_ind, 1)

    @property
    def has_values(self) -> bool:
        return self.values is not None

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only CSR has no values to extract")
        diag = np.zeros(min(self.nrows, self.ncols), dtype=np.float64)
        rows = np.repeat(np.arange(self.nrows, dtype=np.int64),
                         np.diff(self.row_ptr))
        mask = rows == self.col_ind
        diag[rows[mask]] = np.asarray(self.values)[mask]
        return diag

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.csr_kernels import spmv_csr

        return spmv_csr(self, x, out)

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only CSR cannot be densified")
        return self.to_coo().to_dense()
