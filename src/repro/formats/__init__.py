"""Sparse matrix storage formats (paper Section II), built from scratch.

Exported classes:

* :class:`COOMatrix` — canonical coordinate container, the lingua franca,
* :class:`CSRMatrix` — the baseline Compressed Sparse Row format,
* :class:`BCSRMatrix` — aligned fixed-size rectangular blocks with padding,
* :class:`BCSDMatrix` — aligned fixed-size diagonal blocks with padding,
* :class:`DecomposedMatrix` (+ :func:`decompose_bcsr`, :func:`decompose_bcsd`)
  — padding-free decompositions with a CSR remainder,
* :class:`VBLMatrix` — 1D variable-length horizontal blocks,
* :class:`UBCSRMatrix`, :class:`VBRMatrix` — extensions described but not
  benchmarked by the paper.

Use :func:`build_format` to construct any of them by kind name.
"""

from .base import SparseFormat, XAccessStream
from .bcsd import BCSDMatrix
from .bcsr import BCSRMatrix
from .blockstats import BlockStats, bcsd_block_stats, bcsr_block_stats
from .convert import FORMAT_KINDS, build_format, display_name
from .coo import COOMatrix
from .csrdu import CSRDUMatrix
from .interop import from_scipy, to_scipy_coo, to_scipy_csr
from .serialize import load_format, save_format
from .csr import CSRMatrix
from .decomposed import DecomposedMatrix, decompose_bcsd, decompose_bcsr
from .ubcsr import UBCSRMatrix
from .vbl import VBLMatrix
from .vbr import VBRMatrix

__all__ = [
    "SparseFormat",
    "XAccessStream",
    "COOMatrix",
    "CSRMatrix",
    "CSRDUMatrix",
    "BCSRMatrix",
    "BCSDMatrix",
    "DecomposedMatrix",
    "decompose_bcsr",
    "decompose_bcsd",
    "VBLMatrix",
    "UBCSRMatrix",
    "VBRMatrix",
    "BlockStats",
    "bcsr_block_stats",
    "bcsd_block_stats",
    "build_format",
    "display_name",
    "FORMAT_KINDS",
    "from_scipy",
    "to_scipy_coo",
    "to_scipy_csr",
    "save_format",
    "load_format",
]
