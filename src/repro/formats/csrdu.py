"""CSR-DU: delta-unit compressed CSR (index compression).

The paper's introduction lists *compression* as the other main class of
working-set-reducing SpMV optimizations, citing Kourtis, Goumas and
Koziris ("index and value compression", reference [10]).  This module
implements a CSR-DU-inspired format: the ``col_ind`` array is replaced by
a byte stream of *delta units*, each holding up to 255 column deltas at a
uniform width (1, 2 or 4 bytes).  Where blocking exploits dense
*structure*, delta compression exploits *locality of column indices* —
it shrinks the index bytes of any matrix whose columns are near each
other, padding-free and pattern-agnostic.

Layout of the ``ctl`` byte stream (this implementation's variant, chosen
for fully-vectorizable encode/decode; documented here normatively):

```
unit := flags(1B) | count(1B) | [skip(2B LE) when NR] | base_col(4B LE)
        | (count - 1) deltas, each `width` bytes LE
flags: bits 0-1 = width code (0 -> 1B, 1 -> 2B, 2 -> 4B); bit 2 = NR
```

Units appear in row-major element order.  An NR unit starts a new row,
advancing the current row by ``1 + skip``; a non-NR unit continues the
current row (after a width change or a 255-element overflow).  The unit's
first element is ``base_col`` (absolute); element ``i > 0`` is
``col_{i-1} + delta_i``.  There is **no row_ptr** — row information lives
in the stream, which is exactly where CSR-DU's savings beyond blocking
come from.

Working set: ``e * nnz + len(ctl) + x + y``.

The object keeps a handful of *derived* unit-table arrays (unit row, value
offset, base column, byte offset) so the NumPy kernel can decode the
stream vectorized; like 1D-VBL's derived ``block_row_ptr`` they are
reconstructible from ``ctl`` and excluded from the working-set accounting.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from .base import SparseFormat, XAccessStream
from .coo import COOMatrix

__all__ = ["CSRDUMatrix"]

_WIDTH_OF_CODE = {0: 1, 1: 2, 2: 4}
_NR_FLAG = 0x04
_MAX_UNIT = 255


class CSRDUMatrix(SparseFormat):
    """Delta-unit compressed CSR (index-compression extension)."""

    kind = "csr_du"
    display_name = "CSR-DU"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        ctl: np.ndarray,
        values: np.ndarray | None,
        *,
        unit_row: np.ndarray,
        unit_val_offset: np.ndarray,
        unit_count: np.ndarray,
        unit_base: np.ndarray,
        unit_width: np.ndarray,
        unit_delta_offset: np.ndarray,
        deltas: np.ndarray,
        nnz: int,
    ) -> None:
        super().__init__(nrows, ncols, nnz)
        self.ctl = np.asarray(ctl, dtype=np.uint8)
        self.values = values
        # Derived decode tables (not part of the ws accounting).
        self.unit_row = unit_row
        self.unit_val_offset = unit_val_offset
        self.unit_count = unit_count
        self.unit_base = unit_base
        self.unit_width = unit_width
        self.unit_delta_offset = unit_delta_offset
        self._deltas = deltas  # decoded int64 deltas, element order, no firsts

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, with_values: bool = True) -> "CSRDUMatrix":
        nnz = coo.nnz
        if nnz == 0:
            empty = np.empty(0, dtype=np.int64)
            return cls(
                coo.nrows, coo.ncols, np.empty(0, dtype=np.uint8),
                np.empty(0) if with_values and coo.values is not None else None,
                unit_row=empty, unit_val_offset=empty, unit_count=empty,
                unit_base=empty, unit_width=empty, unit_delta_offset=empty,
                deltas=empty, nnz=0,
            )
        rows, cols = coo.rows, coo.cols
        first = np.empty(nnz, dtype=bool)
        first[0] = True
        first[1:] = rows[1:] != rows[:-1]
        deltas = np.zeros(nnz, dtype=np.int64)
        deltas[1:] = cols[1:] - cols[:-1]
        deltas[first] = 0  # firsts are carried as absolute base_col

        # Width class of each non-first element's delta.
        width = np.full(nnz, 4, dtype=np.int64)
        width[deltas <= 0xFFFF] = 2
        width[deltas <= 0xFF] = 1
        width[first] = 1  # irrelevant; keeps boundaries clean

        # A unit breaks at a row start, a width change, or 255 elements.
        breaks = first.copy()
        breaks[1:] |= (width[1:] != width[:-1]) & ~first[1:]
        run_first = np.flatnonzero(breaks)
        run_id = np.cumsum(breaks) - 1
        pos = np.arange(nnz, dtype=np.int64) - run_first[run_id]
        breaks |= (pos > 0) & (pos % _MAX_UNIT == 0)

        unit_first = np.flatnonzero(breaks)
        n_units = unit_first.shape[0]
        unit_count = np.diff(np.append(unit_first, nnz))
        unit_row = rows[unit_first]
        unit_base = cols[unit_first]
        unit_is_nr = first[unit_first]
        # Width of a unit = width of its non-first elements (1 if none).
        unit_width = np.where(
            unit_count > 1, width[np.minimum(unit_first + 1, nnz - 1)], 1
        )
        # Row skip for NR units (empty rows jumped over).
        prev_row = np.concatenate(([unit_row[0]], unit_row[:-1]))
        skip = np.where(unit_is_nr, unit_row - prev_row - 1, 0)
        skip[0] = unit_row[0]  # first unit skips from row -1
        if skip.max(initial=0) > 0xFFFF:
            raise FormatError("row skip exceeds the 2-byte encoding")

        header = 2 + np.where(unit_is_nr, 2, 0) + 4
        body = (unit_count - 1) * unit_width
        unit_bytes = header + body
        byte_off = np.zeros(n_units + 1, dtype=np.int64)
        np.cumsum(unit_bytes, out=byte_off[1:])

        # ---------------- assemble the byte stream ---------------- #
        ctl = np.zeros(int(byte_off[-1]), dtype=np.uint8)
        width_code = np.select(
            [unit_width == 1, unit_width == 2], [0, 1], default=2
        )
        flags = width_code | np.where(unit_is_nr, _NR_FLAG, 0)
        ctl[byte_off[:-1]] = flags
        ctl[byte_off[:-1] + 1] = unit_count.astype(np.uint8)  # 255 fits; count<=255
        base_pos = byte_off[:-1] + 2
        nr_idx = np.flatnonzero(unit_is_nr)
        for shift in range(2):  # skip, 2 bytes LE (NR units only)
            ctl[base_pos[nr_idx] + shift] = (
                (skip[nr_idx] >> (8 * shift)) & 0xFF
            ).astype(np.uint8)
        base_pos = base_pos + np.where(unit_is_nr, 2, 0)
        for shift in range(4):  # base_col, 4 bytes LE
            ctl[base_pos + shift] = (
                (unit_base >> (8 * shift)) & 0xFF
            ).astype(np.uint8)

        # Delta bodies, grouped by width.
        elem_unit = np.cumsum(breaks) - 1
        in_unit = np.arange(nnz, dtype=np.int64) - unit_first[elem_unit]
        body_start = byte_off[:-1] + header
        nonfirst = in_unit > 0
        e_unit = elem_unit[nonfirst]
        e_pos = body_start[e_unit] + (in_unit[nonfirst] - 1) * unit_width[e_unit]
        e_delta = deltas[nonfirst]
        for w in (1, 2, 4):
            sel = unit_width[e_unit] == w
            for shift in range(w):
                ctl[e_pos[sel] + shift] = (
                    (e_delta[sel] >> (8 * shift)) & 0xFF
                ).astype(np.uint8)

        # Value offsets: elements are stored in the same canonical order.
        unit_val_offset = unit_first
        unit_delta_offset = np.zeros(n_units + 1, dtype=np.int64)
        np.cumsum(unit_count - 1, out=unit_delta_offset[1:])

        values = coo.values if (with_values and coo.values is not None) else None
        return cls(
            coo.nrows, coo.ncols, ctl, values,
            unit_row=unit_row,
            unit_val_offset=unit_val_offset.astype(np.int64),
            unit_count=unit_count,
            unit_base=unit_base,
            unit_width=unit_width,
            unit_delta_offset=unit_delta_offset,
            deltas=e_delta,
            nnz=nnz,
        )

    # ------------------------------------------------------------------ #
    @property
    def n_units(self) -> int:
        return int(self.unit_count.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.nnz  # compression never pads

    def index_bytes(self) -> int:
        # The whole indexing structure is the ctl stream — no row_ptr.
        return int(self.ctl.shape[0])

    @property
    def n_blocks(self) -> int:
        return self.n_units

    @property
    def n_block_rows(self) -> int:
        return self.nrows

    def block_descriptor(self) -> tuple:
        return ("csr_du", None)

    def decode_columns(self) -> np.ndarray:
        """Reconstruct the element columns from the unit tables (what the
        kernel does on every multiplication)."""
        if self.nnz == 0:
            return np.empty(0, dtype=np.int64)
        cols = np.empty(self.nnz, dtype=np.int64)
        firsts = self.unit_val_offset
        cols[firsts] = self.unit_base
        nonfirst = np.ones(self.nnz, dtype=bool)
        nonfirst[firsts] = False
        if self._deltas.shape[0]:
            # Segmented cumulative sum of the deltas per unit.
            csum = np.cumsum(self._deltas)
            unit_of_delta = np.repeat(
                np.arange(self.n_units), self.unit_count - 1
            )
            seg_start = self.unit_delta_offset[:-1]
            base_csum = np.concatenate(([0], csum))[seg_start[unit_of_delta]]
            cols[nonfirst] = (
                self.unit_base[unit_of_delta] + csum - base_csum
            )
        return cols

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.decode_columns(), 1)

    @property
    def has_values(self) -> bool:
        return self.values is not None

    def rows_of_elements(self) -> np.ndarray:
        return np.repeat(self.unit_row, self.unit_count)

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        if self.nnz == 0:
            return out
        cols = self.decode_columns()
        products = self.values * x[cols]
        rows = self.rows_of_elements()
        # Segment-reduce per row (rows of consecutive elements).
        boundary = np.empty(self.nnz, dtype=bool)
        boundary[0] = True
        boundary[1:] = rows[1:] != rows[:-1]
        starts = np.flatnonzero(boundary)
        sums = np.add.reduceat(products, starts)
        out[rows[starts]] += sums
        return out

    def to_coo(self) -> COOMatrix:
        if not self.has_values:
            raise FormatError("structure-only CSR-DU cannot be exported")
        return COOMatrix(
            self.nrows, self.ncols, self.rows_of_elements(),
            self.decode_columns(), self.values, canonical=True,
        )

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only CSR-DU has no values")
        return self.to_coo().diagonal()

    def compression_ratio(self) -> float:
        """Index bytes of plain CSR divided by this format's index bytes."""
        csr_bytes = 4 * self.nnz + 4 * (self.nrows + 1)
        return csr_bytes / max(self.index_bytes(), 1)
