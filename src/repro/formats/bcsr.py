"""Blocked Compressed Sparse Row (BCSR) — fixed ``r x c`` blocks, padded.

BCSR stores two-dimensional fixed-size blocks with at least one nonzero,
padding missing elements with explicit zeros.  Blocks are aligned: an
``r x c`` block always starts at ``(i, j)`` with ``i mod r == 0`` and
``j mod c == 0`` (paper Section II-A).  Three arrays:

* ``bval``  — the block values, one dense ``r x c`` tile per block,
* ``bcol_ind`` — the block-column index of each block,
* ``brow_ptr`` — pointers to the first block of each block row.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, BlockShape
from .base import SparseFormat, XAccessStream
from .blockstats import BlockStats, bcsr_block_stats
from .coo import COOMatrix

__all__ = ["BCSRMatrix"]


class BCSRMatrix(SparseFormat):
    """Aligned fixed-size rectangular blocking with zero padding."""

    kind = "bcsr"
    display_name = "BCSR"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        block: BlockShape,
        brow_ptr: np.ndarray,
        bcol_ind: np.ndarray,
        bval: np.ndarray | None,
        nnz: int,
    ) -> None:
        block = block if isinstance(block, BlockShape) else BlockShape(*block)
        brow_ptr = np.asarray(brow_ptr, dtype=np.int64)
        bcol_ind = np.asarray(bcol_ind, dtype=np.int64)
        n_brows = -(-nrows // block.r) if nrows else 0
        if brow_ptr.shape != (n_brows + 1,):
            raise FormatError(
                f"brow_ptr has length {brow_ptr.shape[0]}, expected {n_brows + 1}"
            )
        if brow_ptr[-1] != bcol_ind.shape[0]:
            raise FormatError("brow_ptr does not bracket bcol_ind")
        if bval is not None:
            bval = np.asarray(bval)
            if bval.shape != (bcol_ind.shape[0], block.r, block.c):
                raise FormatError(
                    f"bval has shape {bval.shape}, expected "
                    f"({bcol_ind.shape[0]}, {block.r}, {block.c})"
                )
        super().__init__(nrows, ncols, nnz)
        self.block = block
        self.brow_ptr = brow_ptr
        self.bcol_ind = bcol_ind
        self.bval = bval

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        block: BlockShape | tuple[int, int],
        *,
        with_values: bool = True,
        stats: BlockStats | None = None,
    ) -> "BCSRMatrix":
        block = block if isinstance(block, BlockShape) else BlockShape(*block)
        if stats is None:
            stats = bcsr_block_stats(coo, block.r, block.c)
        brow_ptr = _ptr_from_block_rows(stats.block_row, stats.n_block_rows)
        bcol_ind = stats.block_start_col // block.c
        bval = None
        if with_values and coo.values is not None:
            bval = np.zeros((stats.n_blocks, block.r, block.c), dtype=np.float64)
            flat = bval.reshape(stats.n_blocks, block.elems)
            flat[stats.nnz_block, stats.nnz_offset] = coo.values
        return cls(
            coo.nrows, coo.ncols, block, brow_ptr, bcol_ind, bval, coo.nnz
        )

    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        return int(self.bcol_ind.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.n_blocks * self.block.elems

    def index_bytes(self) -> int:
        return INDEX_BYTES * self.n_blocks + self._ptr_bytes(self.brow_ptr.shape[0])

    @property
    def n_block_rows(self) -> int:
        return int(self.brow_ptr.shape[0] - 1)

    def block_descriptor(self) -> tuple:
        return ("bcsr", (self.block.r, self.block.c))

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.bcol_ind * self.block.c, self.block.c)

    @property
    def has_values(self) -> bool:
        return self.bval is not None

    def block_rows_of_blocks(self) -> np.ndarray:
        """Block-row index of every block (length n_blocks)."""
        return np.repeat(
            np.arange(self.n_block_rows, dtype=np.int64), np.diff(self.brow_ptr)
        )

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only BCSR has no values to extract")
        r, c = self.block.r, self.block.c
        n = min(self.nrows, self.ncols)
        diag = np.zeros(n, dtype=np.float64)
        i0 = self.block_rows_of_blocks() * r
        j0 = self.bcol_ind * c
        # Within a block, (a, b) lies on the diagonal iff b = a + (i0 - j0).
        a = np.arange(r, dtype=np.int64)[None, :]
        b = a + (i0 - j0)[:, None]
        valid = (b >= 0) & (b < c)
        rows_all = i0[:, None] + a
        valid &= rows_all < n
        blk, aa = np.nonzero(valid)
        diag[rows_all[valid]] = self.bval[blk, aa, b[valid]]
        return diag

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.bcsr_kernels import spmv_bcsr

        return spmv_bcsr(self, x, out)

    def to_coo(self) -> COOMatrix:
        """Extract the true nonzeros (padding zeros are dropped)."""
        if not self.has_values:
            raise FormatError("structure-only BCSR cannot be exported")
        r, c = self.block.r, self.block.c
        brows = self.block_rows_of_blocks()
        rows = (
            brows[:, None, None] * r
            + np.arange(r, dtype=np.int64)[None, :, None]
        ) + np.zeros((1, 1, c), dtype=np.int64)
        cols = (
            self.bcol_ind[:, None, None] * c
            + np.arange(c, dtype=np.int64)[None, None, :]
        ) + np.zeros((1, r, 1), dtype=np.int64)
        mask = (self.bval != 0) & (rows < self.nrows) & (cols < self.ncols)
        return COOMatrix(
            self.nrows, self.ncols, rows[mask], cols[mask], self.bval[mask]
        )

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only BCSR cannot be densified")
        r, c = self.block.r, self.block.c
        n_brows = self.n_block_rows
        n_bcols = -(-self.ncols // c)
        dense = np.zeros((n_brows * r, n_bcols * c), dtype=self.bval.dtype)
        brows = self.block_rows_of_blocks()
        for idx in range(self.n_blocks):
            i0 = int(brows[idx]) * r
            j0 = int(self.bcol_ind[idx]) * c
            dense[i0 : i0 + r, j0 : j0 + c] = self.bval[idx]
        return dense[: self.nrows, : self.ncols]


def _ptr_from_block_rows(block_row: np.ndarray, n_block_rows: int) -> np.ndarray:
    counts = np.bincount(block_row, minlength=n_block_rows)
    ptr = np.zeros(n_block_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return ptr
