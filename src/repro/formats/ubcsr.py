"""Unaligned BCSR (UBCSR) — column-unaligned fixed-size blocks.

UBCSR (Vuduc & Moon; paper Section II-A) relaxes BCSR's alignment rule to
reduce padding.  This implementation relaxes the *column* alignment: rows
are still grouped into aligned bands of ``r`` (so ``brow_ptr`` keeps its
meaning), but within a band each ``r x c`` block may start at any column.
Blocks are placed greedily left-to-right: a new block is anchored at the
left-most column not covered by the previous block.

UBCSR is an extension beyond the five formats the paper evaluates; it is
exercised by tests and examples, not by the main reproduction sweep, so the
converter favours clarity (a per-band greedy scan using ``searchsorted``
jumps) over raw conversion speed.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, BlockShape
from .base import SparseFormat, XAccessStream
from .coo import COOMatrix

__all__ = ["UBCSRMatrix"]


class UBCSRMatrix(SparseFormat):
    """Fixed-size blocks, row-aligned but column-unaligned."""

    kind = "ubcsr"
    display_name = "UBCSR"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        block: BlockShape,
        brow_ptr: np.ndarray,
        bcol_start: np.ndarray,
        bval: np.ndarray | None,
        nnz: int,
    ) -> None:
        block = block if isinstance(block, BlockShape) else BlockShape(*block)
        brow_ptr = np.asarray(brow_ptr, dtype=np.int64)
        bcol_start = np.asarray(bcol_start, dtype=np.int64)
        n_brows = -(-nrows // block.r) if nrows else 0
        if brow_ptr.shape != (n_brows + 1,):
            raise FormatError("brow_ptr has wrong length")
        if brow_ptr[-1] != bcol_start.shape[0]:
            raise FormatError("brow_ptr does not bracket bcol_start")
        if bval is not None:
            bval = np.asarray(bval)
            if bval.shape != (bcol_start.shape[0], block.r, block.c):
                raise FormatError("bval has wrong shape")
        super().__init__(nrows, ncols, nnz)
        self.block = block
        self.brow_ptr = brow_ptr
        self.bcol_start = bcol_start
        self.bval = bval

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        block: BlockShape | tuple[int, int],
        *,
        with_values: bool = True,
    ) -> "UBCSRMatrix":
        block = block if isinstance(block, BlockShape) else BlockShape(*block)
        r, c = block.r, block.c
        n_brows = -(-coo.nrows // r) if coo.nrows else 0
        brow = coo.rows // r
        # Band boundaries in the canonical (row-major) nnz ordering.
        band_ptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.cumsum(np.bincount(brow, minlength=n_brows), out=band_ptr[1:])

        anchors_per_band: list[np.ndarray] = []
        block_of_nnz = np.empty(coo.nnz, dtype=np.int64)
        next_block = 0
        for band in range(n_brows):
            lo, hi = int(band_ptr[band]), int(band_ptr[band + 1])
            if lo == hi:
                anchors_per_band.append(np.empty(0, dtype=np.int64))
                continue
            cols_sorted = np.sort(coo.cols[lo:hi])
            anchors = []
            idx = 0
            while idx < cols_sorted.shape[0]:
                anchor = int(cols_sorted[idx])
                anchors.append(anchor)
                idx = int(np.searchsorted(cols_sorted, anchor + c, side="left"))
            anchors = np.asarray(anchors, dtype=np.int64)
            anchors_per_band.append(anchors)
            # Assign each nonzero of the band to its covering block.
            assign = np.searchsorted(anchors, coo.cols[lo:hi], side="right") - 1
            block_of_nnz[lo:hi] = next_block + assign
            next_block += anchors.shape[0]

        bcol_start = (
            np.concatenate(anchors_per_band)
            if anchors_per_band
            else np.empty(0, dtype=np.int64)
        )
        counts = np.asarray([a.shape[0] for a in anchors_per_band], dtype=np.int64)
        brow_ptr = np.zeros(n_brows + 1, dtype=np.int64)
        np.cumsum(counts, out=brow_ptr[1:])

        bval = None
        if with_values and coo.values is not None:
            nb = int(bcol_start.shape[0])
            bval = np.zeros((nb, r, c), dtype=np.float64)
            off_r = coo.rows - (coo.rows // r) * r
            off_c = coo.cols - bcol_start[block_of_nnz]
            bval[block_of_nnz, off_r, off_c] = coo.values
        return cls(coo.nrows, coo.ncols, block, brow_ptr, bcol_start, bval, coo.nnz)

    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        return int(self.bcol_start.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.n_blocks * self.block.elems

    def index_bytes(self) -> int:
        return INDEX_BYTES * self.n_blocks + self._ptr_bytes(self.brow_ptr.shape[0])

    @property
    def n_block_rows(self) -> int:
        return int(self.brow_ptr.shape[0] - 1)

    def block_descriptor(self) -> tuple:
        return ("ubcsr", (self.block.r, self.block.c))

    def x_access_stream(self) -> XAccessStream:
        return XAccessStream(self.bcol_start, self.block.c)

    @property
    def has_values(self) -> bool:
        return self.bval is not None

    def block_rows_of_blocks(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.n_block_rows, dtype=np.int64), np.diff(self.brow_ptr)
        )

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.bcsr_kernels import spmv_ubcsr

        return spmv_ubcsr(self, x, out)

    def to_coo(self) -> COOMatrix:
        """Extract the true nonzeros (padding zeros are dropped)."""
        if not self.has_values:
            raise FormatError("structure-only UBCSR cannot be exported")
        r, c = self.block.r, self.block.c
        brows = self.block_rows_of_blocks()
        rows = (
            brows[:, None, None] * r
            + np.arange(r, dtype=np.int64)[None, :, None]
        ) + np.zeros((1, 1, c), dtype=np.int64)
        cols = (
            self.bcol_start[:, None, None]
            + np.arange(c, dtype=np.int64)[None, None, :]
        ) + np.zeros((1, r, 1), dtype=np.int64)
        mask = (self.bval != 0) & (rows < self.nrows) & (cols < self.ncols)
        return COOMatrix(
            self.nrows, self.ncols, rows[mask], cols[mask], self.bval[mask]
        )

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only UBCSR cannot be densified")
        r, c = self.block.r, self.block.c
        dense = np.zeros((self.n_block_rows * r, self.ncols + c), dtype=self.bval.dtype)
        brows = self.block_rows_of_blocks()
        for idx in range(self.n_blocks):
            i0 = int(brows[idx]) * r
            j0 = int(self.bcol_start[idx])
            dense[i0 : i0 + r, j0 : j0 + c] += self.bval[idx]
        return dense[: self.nrows, : self.ncols]
