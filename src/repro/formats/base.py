"""Abstract base class shared by every sparse storage format.

A *format* in this package is a compiled, read-only representation of a
sparse matrix that knows three things:

1. how to multiply itself with a vector (``spmv``) — the functional side,
2. how many bytes of each kind it occupies (``working_set``) — the paper's
   ``ws`` quantity, which drives the MEM part of every performance model,
3. what its *compute structure* looks like (number of blocks, block
   descriptor, block-row count, input-vector access stream) — which drives
   the compute and latency parts of the machine simulator.

Formats can be built **structure-only** (``values is None``): conversions in
the autotuning sweep never materialise the value arrays, because neither the
performance models nor the simulator need them.  Calling :meth:`spmv` on a
structure-only format raises :class:`~repro.errors.FormatError`.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Sequence

import numpy as np

from ..errors import FormatError, ShapeMismatchError
from ..types import INDEX_BYTES, Precision

__all__ = ["SparseFormat", "XAccessStream"]


class XAccessStream:
    """The input-vector access pattern of a format, in execution order.

    ``starts`` holds the first column touched by each consecutive access and
    ``width`` how many consecutive columns each access covers (1 for CSR,
    ``c`` for an ``r x c`` BCSR block, ``b`` for a BCSD diagonal).  Formats
    with variable access widths (1D-VBL) pass a per-access ``widths`` array
    instead.  The cache model in :mod:`repro.machine.cache` consumes the
    *element-granularity* line stream, so the estimate depends on which x
    elements are gathered (padding included — padded blocks really do load
    those x lines) and in which order, not on how a format batches them.
    """

    __slots__ = ("starts", "width", "widths")

    def __init__(
        self,
        starts: np.ndarray,
        width: int,
        widths: np.ndarray | None = None,
    ) -> None:
        self.starts = np.asarray(starts, dtype=np.int64)
        self.width = int(width)
        self.widths = (
            None if widths is None else np.asarray(widths, dtype=np.int64)
        )
        if self.widths is not None and self.widths.shape != self.starts.shape:
            raise ValueError("widths must match starts in length")

    def __len__(self) -> int:
        return int(self.starts.shape[0])

    @property
    def n_elements(self) -> int:
        """Total x elements touched (accesses x widths)."""
        if self.widths is not None:
            return int(self.widths.sum())
        return len(self) * self.width

    def element_columns(self) -> np.ndarray:
        """The column of every x element touched, in execution order."""
        if self.widths is not None:
            # Variable widths: repeat starts and add the within-run offset.
            total = self.n_elements
            reps = np.repeat(self.starts, self.widths)
            first = np.concatenate(([0], np.cumsum(self.widths)[:-1]))
            offsets = np.arange(total, dtype=np.int64) - np.repeat(
                first, self.widths
            )
            return reps + offsets
        if self.width == 1:
            return self.starts
        return (
            self.starts[:, None] + np.arange(self.width, dtype=np.int64)
        ).ravel()

    def line_ids(self, line_elems: int) -> np.ndarray:
        """Cache-line id of every x *element* touched, in execution order.

        Negative columns (BCSD edge diagonals begin off-matrix) clip to
        line 0 — the kernel masks those lanes but the hardware gather of
        the surviving lanes starts at the first in-bounds line.
        """
        if line_elems < 1:
            raise ValueError("line_elems must be >= 1")
        return np.maximum(self.element_columns(), 0) // line_elems


class SparseFormat(abc.ABC):
    """Base class for all sparse matrix storage formats."""

    #: Short machine-readable kind, e.g. ``"csr"``, ``"bcsr"``; used as the
    #: key into kernel cost tables and profiles.
    kind: ClassVar[str] = "abstract"

    #: Human-readable name as used in the paper's tables.
    display_name: ClassVar[str] = "abstract"

    def __init__(self, nrows: int, ncols: int, nnz: int) -> None:
        if nrows < 0 or ncols < 0:
            raise ShapeMismatchError(f"negative matrix shape ({nrows}, {ncols})")
        if nnz < 0:
            raise FormatError(f"negative nnz {nnz}")
        self._nrows = int(nrows)
        self._ncols = int(ncols)
        self._nnz = int(nnz)

    # ------------------------------------------------------------------ #
    # Shape and population
    # ------------------------------------------------------------------ #
    @property
    def nrows(self) -> int:
        """Number of matrix rows."""
        return self._nrows

    @property
    def ncols(self) -> int:
        """Number of matrix columns."""
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nnz(self) -> int:
        """Number of *true* nonzero elements represented (excludes padding)."""
        return self._nnz

    @property
    @abc.abstractmethod
    def nnz_stored(self) -> int:
        """Number of stored value entries, *including* padding zeros."""

    @property
    def padding(self) -> int:
        """Number of explicit zero entries introduced by padding."""
        return self.nnz_stored - self.nnz

    @property
    def padding_ratio(self) -> float:
        """``nnz_stored / nnz`` (1.0 means no padding)."""
        if self.nnz == 0:
            return 1.0
        return self.nnz_stored / self.nnz

    # ------------------------------------------------------------------ #
    # Working set (the paper's ``ws``)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def index_bytes(self) -> int:
        """Bytes occupied by all index structures (4-byte entries)."""

    def value_bytes(self, precision: Precision | str) -> int:
        """Bytes occupied by the stored values at ``precision``."""
        return self.nnz_stored * Precision.coerce(precision).itemsize

    def vector_bytes(self, precision: Precision | str) -> int:
        """Bytes of the input (x) and output (y) vectors for one pass."""
        e = Precision.coerce(precision).itemsize
        return e * (self._ncols + self._nrows)

    def working_set(self, precision: Precision | str) -> int:
        """Total working set in bytes: values + indices + x + y.

        Matches the accounting of Table I in the paper (verified against the
        published MiB figures for the ``dense`` and ``random`` matrices).
        """
        p = Precision.coerce(precision)
        return self.value_bytes(p) + self.index_bytes() + self.vector_bytes(p)

    def working_set_matrix_only(self, precision: Precision | str) -> int:
        """Working set excluding the x/y vectors (values + indices)."""
        return self.value_bytes(precision) + self.index_bytes()

    # ------------------------------------------------------------------ #
    # Compute structure (consumed by cost tables and the simulator)
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def n_blocks(self) -> int:
        """Number of compute units nb (blocks; CSR: nnz)."""

    @property
    @abc.abstractmethod
    def n_block_rows(self) -> int:
        """Number of (block-)rows the kernel's outer loop iterates over."""

    @abc.abstractmethod
    def block_descriptor(self) -> tuple:
        """Hashable descriptor of the block type, e.g. ``("bcsr", (2, 3))``.

        Used as the key into kernel cost tables and block profiles
        (:class:`repro.core.profiling.BlockProfile`).
        """

    @abc.abstractmethod
    def x_access_stream(self) -> XAccessStream:
        """Input-vector accesses in execution order (for the cache model)."""

    def submatrices(self) -> Sequence["SparseFormat"]:
        """The k submatrices of the decomposition (just ``self`` if k = 1)."""
        return (self,)

    # ------------------------------------------------------------------ #
    # Functional side
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def has_values(self) -> bool:
        """Whether value arrays were materialised (False for sweep builds)."""

    @abc.abstractmethod
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y = A @ x`` (accumulating into ``out`` if given)."""

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Expand to a dense 2-D array (tests and tiny examples only)."""

    def diagonal(self) -> np.ndarray:
        """The main diagonal as a dense vector (needed by Jacobi-type
        solvers).  Subclasses override with O(nnz) extractions; the base
        implementation densifies and is only acceptable for tiny matrices."""
        return np.diagonal(self.to_dense()).copy()

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _check_spmv_operands(
        self, x: np.ndarray, out: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self.has_values:
            raise FormatError(
                f"{self.kind} instance is structure-only; rebuild with values "
                "to run spmv"
            )
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != self._ncols:
            raise ShapeMismatchError(
                f"x has shape {x.shape}, expected ({self._ncols},)"
            )
        if out is None:
            out = np.zeros(self._nrows, dtype=np.result_type(x.dtype, np.float32))
        elif out.shape != (self._nrows,):
            raise ShapeMismatchError(
                f"out has shape {out.shape}, expected ({self._nrows},)"
            )
        return x, out

    @staticmethod
    def _ptr_bytes(n_ptrs: int) -> int:
        return INDEX_BYTES * n_ptrs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self._nrows}x{self._ncols} "
            f"nnz={self._nnz} stored={self.nnz_stored}>"
        )
