"""Variable Block Row (VBR) storage — two-dimensional variable blocks.

VBR (Saad's SPARSKIT; paper Section II-B) partitions the matrix rows and
columns so that every resulting block is completely dense.  This
implementation derives the canonical partition: maximal runs of consecutive
rows with identical sparsity patterns, and likewise for columns.  Under that
partition every (row-group x column-group) intersection is either fully
populated or empty, so blocks store no padding at the cost of two extra
indexing arrays (the row/column partition vectors).

VBR is an extension beyond the five formats the paper benchmarks (the paper
describes it in Section II and excludes it from the model evaluation); it is
fully functional and tested but not part of the reproduction sweep.

Arrays (SPARSKIT naming):

* ``val``    — block values, blocks concatenated row-major,
* ``indx``   — offset of each block's values in ``val`` (nb + 1),
* ``bindx``  — block-column index of each block (nb),
* ``rpntr``  — row partition boundaries (nbr + 1),
* ``cpntr``  — column partition boundaries (nbc + 1),
* ``bpntr``  — first block of each block row (nbr + 1).
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES
from .base import SparseFormat, XAccessStream
from .coo import COOMatrix

__all__ = ["VBRMatrix", "pattern_partition"]


def pattern_partition(ptr: np.ndarray, idx: np.ndarray, n: int) -> np.ndarray:
    """Partition ``0..n`` into maximal runs with identical index patterns.

    ``ptr``/``idx`` describe a CSR-like structure (rows here; pass the
    transpose's structure for columns).  Returns the partition boundaries
    (first element of each group plus ``n``), as in VBR's rpntr/cpntr.

    Two rows are in the same group iff their index lists are identical; the
    comparison is exact (lengths first, then element-wise on the packed
    streams), not hash-based.
    """
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    lengths = np.diff(ptr)
    boundary = np.ones(n, dtype=bool)
    same_len = lengths[1:] == lengths[:-1]
    # Element-wise comparison of adjacent rows' index lists, vectorized over
    # the packed idx stream: row i occupies idx[ptr[i]:ptr[i+1]].
    if idx.shape[0]:
        # For each row i >= 1 with same_len, compare idx slices.
        cand = np.flatnonzero(same_len) + 1  # rows to compare with row-1
        equal = np.zeros(cand.shape[0], dtype=bool)
        for k, i in enumerate(cand):  # rows with equal lengths only
            a, b = int(ptr[i]), int(ptr[i + 1])
            pa = int(ptr[i - 1])
            equal[k] = np.array_equal(idx[a:b], idx[pa : pa + (b - a)])
        boundary[cand[equal]] = False
    starts = np.flatnonzero(boundary)
    return np.append(starts, n).astype(np.int64)


class VBRMatrix(SparseFormat):
    """Variable two-dimensional blocks, padding-free by construction."""

    kind = "vbr"
    display_name = "VBR"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        rpntr: np.ndarray,
        cpntr: np.ndarray,
        bpntr: np.ndarray,
        bindx: np.ndarray,
        indx: np.ndarray,
        val: np.ndarray | None,
        nnz: int,
    ) -> None:
        rpntr = np.asarray(rpntr, dtype=np.int64)
        cpntr = np.asarray(cpntr, dtype=np.int64)
        bpntr = np.asarray(bpntr, dtype=np.int64)
        bindx = np.asarray(bindx, dtype=np.int64)
        indx = np.asarray(indx, dtype=np.int64)
        if rpntr[0] != 0 or rpntr[-1] != nrows:
            raise FormatError("rpntr must span 0..nrows")
        if cpntr[0] != 0 or cpntr[-1] != ncols:
            raise FormatError("cpntr must span 0..ncols")
        if bpntr.shape[0] != rpntr.shape[0]:
            raise FormatError("bpntr must have one entry per block row + 1")
        if indx.shape[0] != bindx.shape[0] + 1:
            raise FormatError("indx must have nb + 1 entries")
        if val is not None and val.shape[0] != indx[-1]:
            raise FormatError("val length disagrees with indx")
        super().__init__(nrows, ncols, nnz)
        self.rpntr = rpntr
        self.cpntr = cpntr
        self.bpntr = bpntr
        self.bindx = bindx
        self.indx = indx
        self.val = val

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, with_values: bool = True) -> "VBRMatrix":
        from .csr import CSRMatrix

        csr = CSRMatrix.from_coo(coo, with_values=False)
        rpntr = pattern_partition(csr.row_ptr, csr.col_ind, coo.nrows)
        # Column patterns from the transpose structure.
        tcoo = COOMatrix(coo.ncols, coo.nrows, coo.cols, coo.rows, None)
        tcsr = CSRMatrix.from_coo(tcoo, with_values=False)
        cpntr = pattern_partition(tcsr.row_ptr, tcsr.col_ind, coo.ncols)

        # Map each nonzero to its (block-row, block-col).
        rg = np.searchsorted(rpntr, coo.rows, side="right") - 1
        cg = np.searchsorted(cpntr, coo.cols, side="right") - 1
        nbc = cpntr.shape[0] - 1
        key = rg * np.int64(nbc) + cg
        ukeys, inverse, counts = np.unique(
            key, return_inverse=True, return_counts=True
        )
        urg = ukeys // nbc
        ucg = ukeys - urg * nbc
        heights = np.diff(rpntr)[urg]
        widths = np.diff(cpntr)[ucg]
        sizes = heights * widths
        if np.any(counts != sizes):
            raise FormatError(
                "VBR partition produced non-dense blocks"
            )  # pragma: no cover - construction guarantees density
        indx = np.zeros(ukeys.shape[0] + 1, dtype=np.int64)
        np.cumsum(sizes, out=indx[1:])
        nbr = rpntr.shape[0] - 1
        bpntr = np.zeros(nbr + 1, dtype=np.int64)
        np.cumsum(np.bincount(urg, minlength=nbr), out=bpntr[1:])

        val = None
        if with_values and coo.values is not None:
            val = np.zeros(int(indx[-1]), dtype=np.float64)
            # Position of each nnz inside its (row-major dense) block.
            loc_r = coo.rows - rpntr[rg]
            loc_c = coo.cols - cpntr[cg]
            pos = indx[inverse] + loc_r * widths[inverse] + loc_c
            val[pos] = coo.values
        return cls(
            coo.nrows, coo.ncols, rpntr, cpntr, bpntr, ucg, indx, val, coo.nnz
        )

    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        return int(self.bindx.shape[0])

    @property
    def nnz_stored(self) -> int:
        return int(self.indx[-1])

    def index_bytes(self) -> int:
        return INDEX_BYTES * (
            self.bindx.shape[0]
            + self.indx.shape[0]
            + self.rpntr.shape[0]
            + self.cpntr.shape[0]
            + self.bpntr.shape[0]
        )

    @property
    def n_block_rows(self) -> int:
        return int(self.rpntr.shape[0] - 1)

    def block_descriptor(self) -> tuple:
        return ("vbr", None)

    def x_access_stream(self) -> XAccessStream:
        starts = self.cpntr[self.bindx]
        widths = np.diff(self.cpntr)[self.bindx]
        mean = int(widths.mean()) if self.n_blocks else 1
        return XAccessStream(starts, max(mean, 1), widths=widths)

    @property
    def has_values(self) -> bool:
        return self.val is not None

    def block_rows_of_blocks(self) -> np.ndarray:
        return np.repeat(
            np.arange(self.n_block_rows, dtype=np.int64), np.diff(self.bpntr)
        )

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.vbr_kernels import spmv_vbr

        return spmv_vbr(self, x, out)

    def to_coo(self) -> COOMatrix:
        """Export the (dense-block) entries back to COO."""
        if not self.has_values:
            raise FormatError("structure-only VBR cannot be exported")
        sizes = np.diff(self.indx)
        block_of = np.repeat(np.arange(self.n_blocks, dtype=np.int64), sizes)
        pos = np.arange(int(self.indx[-1]), dtype=np.int64) - self.indx[block_of]
        widths = np.diff(self.cpntr)[self.bindx]
        row0 = self.rpntr[self.block_rows_of_blocks()]
        col0 = self.cpntr[self.bindx]
        rows = row0[block_of] + pos // widths[block_of]
        cols = col0[block_of] + pos % widths[block_of]
        keep = self.val != 0
        return COOMatrix(
            self.nrows, self.ncols, rows[keep], cols[keep], self.val[keep]
        )

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only VBR cannot be densified")
        dense = np.zeros(self.shape, dtype=self.val.dtype)
        brows = self.block_rows_of_blocks()
        for k in range(self.n_blocks):
            i0, i1 = int(self.rpntr[brows[k]]), int(self.rpntr[brows[k] + 1])
            j0, j1 = int(self.cpntr[self.bindx[k]]), int(self.cpntr[self.bindx[k] + 1])
            dense[i0:i1, j0:j1] = self.val[self.indx[k] : self.indx[k + 1]].reshape(
                i1 - i0, j1 - j0
            )
        return dense
