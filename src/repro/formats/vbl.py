"""One-dimensional Variable Block Length (1D-VBL) storage.

1D-VBL (Pinar & Heath, paper Section II-B) stores horizontal runs of
consecutive nonzeros as variable-length blocks, with no padding, at the
cost of one extra indexing structure.  Four arrays:

* ``val``      — the nonzero values (no padding, length nnz),
* ``row_ptr``  — pointers to the first *element* of each row in ``val``,
* ``bcol_ind`` — the starting column of each block,
* ``blk_size`` — the length of each block, stored in **one byte** per the
  paper's implementation; a run longer than 255 is split into
  255-element chunks.

The object also keeps a derived ``block_row_ptr`` (first *block* of each
row) for kernel convenience; it is reconstructible from ``row_ptr`` and
``blk_size`` and therefore excluded from the working-set accounting.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..types import INDEX_BYTES, VBL_MAX_BLOCK, VBL_SIZE_BYTES
from .base import SparseFormat, XAccessStream
from .coo import COOMatrix

__all__ = ["VBLMatrix"]


class VBLMatrix(SparseFormat):
    """Variable-length horizontal blocks without padding."""

    kind = "vbl"
    display_name = "1D-VBL"

    def __init__(
        self,
        nrows: int,
        ncols: int,
        row_ptr: np.ndarray,
        bcol_ind: np.ndarray,
        blk_size: np.ndarray,
        block_row_ptr: np.ndarray,
        values: np.ndarray | None = None,
    ) -> None:
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        bcol_ind = np.asarray(bcol_ind, dtype=np.int64)
        blk_size = np.asarray(blk_size)
        block_row_ptr = np.asarray(block_row_ptr, dtype=np.int64)
        if blk_size.dtype != np.uint8:
            if blk_size.size and (blk_size.max(initial=0) > VBL_MAX_BLOCK):
                raise FormatError("1D-VBL block size exceeds 255")
            blk_size = blk_size.astype(np.uint8)
        if blk_size.size and blk_size.min() < 1:
            raise FormatError("1D-VBL blocks must be non-empty")
        if row_ptr.shape != (nrows + 1,) or block_row_ptr.shape != (nrows + 1,):
            raise FormatError("row_ptr / block_row_ptr must have length nrows+1")
        nnz = int(row_ptr[-1])
        if int(blk_size.astype(np.int64).sum()) != nnz:
            raise FormatError("sum of blk_size does not equal nnz")
        if bcol_ind.shape != blk_size.shape:
            raise FormatError("bcol_ind and blk_size lengths differ")
        if values is not None:
            values = np.asarray(values)
            if values.shape != (nnz,):
                raise FormatError("values length does not match row_ptr")
        super().__init__(nrows, ncols, nnz)
        self.row_ptr = row_ptr
        self.bcol_ind = bcol_ind
        self.blk_size = blk_size
        self.block_row_ptr = block_row_ptr
        self.values = values

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, with_values: bool = True) -> "VBLMatrix":
        rows, cols = coo.rows, coo.cols
        nnz = coo.nnz
        if nnz == 0:
            zptr = np.zeros(coo.nrows + 1, dtype=np.int64)
            return cls(
                coo.nrows,
                coo.ncols,
                zptr,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint8),
                zptr.copy(),
                np.empty(0) if with_values and coo.values is not None else None,
            )
        # A new block starts at element 0, on a row change, or when the
        # column is not the immediate successor of the previous one.
        starts = np.empty(nnz, dtype=bool)
        starts[0] = True
        starts[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1] + 1)
        # Split runs longer than VBL_MAX_BLOCK: position within the run is
        # the element index minus the index of the run's first element.
        run_id = np.cumsum(starts) - 1
        run_first = np.flatnonzero(starts)
        pos_in_run = np.arange(nnz, dtype=np.int64) - run_first[run_id]
        starts |= (pos_in_run > 0) & (pos_in_run % VBL_MAX_BLOCK == 0)

        first_idx = np.flatnonzero(starts)
        bcol_ind = cols[first_idx]
        sizes = np.diff(np.append(first_idx, nnz)).astype(np.uint8)
        # Blocks per row -> block_row_ptr.
        blocks_per_row = np.bincount(rows[first_idx], minlength=coo.nrows)
        block_row_ptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(blocks_per_row, out=block_row_ptr[1:])
        # Elements per row -> row_ptr.
        row_ptr = np.zeros(coo.nrows + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=coo.nrows), out=row_ptr[1:])
        values = coo.values if (with_values and coo.values is not None) else None
        return cls(
            coo.nrows, coo.ncols, row_ptr, bcol_ind, sizes, block_row_ptr, values
        )

    # ------------------------------------------------------------------ #
    @property
    def n_blocks(self) -> int:
        return int(self.bcol_ind.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.nnz  # no padding, ever

    def index_bytes(self) -> int:
        # bcol_ind (4 B) + blk_size (1 B) + row_ptr (4 B); the derived
        # block_row_ptr is not part of the paper's four-array layout.
        return (
            INDEX_BYTES * self.n_blocks
            + VBL_SIZE_BYTES * self.n_blocks
            + self._ptr_bytes(self.nrows + 1)
        )

    @property
    def n_block_rows(self) -> int:
        return self.nrows

    def block_descriptor(self) -> tuple:
        return ("vbl", None)

    def x_access_stream(self) -> XAccessStream:
        mean = int(self.blk_size.astype(np.int64).mean()) if self.n_blocks else 1
        return XAccessStream(
            self.bcol_ind, max(mean, 1), widths=self.blk_size.astype(np.int64)
        )

    @property
    def has_values(self) -> bool:
        return self.values is not None

    def rows_of_blocks(self) -> np.ndarray:
        """Row index of every block (length n_blocks)."""
        return np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.block_row_ptr)
        )

    def value_offsets(self) -> np.ndarray:
        """Offset into ``val`` of each block's first element."""
        off = np.zeros(self.n_blocks + 1, dtype=np.int64)
        np.cumsum(self.blk_size.astype(np.int64), out=off[1:])
        return off[:-1]

    def diagonal(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only 1D-VBL has no values to extract")
        n = min(self.nrows, self.ncols)
        diag = np.zeros(n, dtype=np.float64)
        rows = self.rows_of_blocks()
        offs = self.value_offsets()
        sizes = self.blk_size.astype(np.int64)
        # Blocks whose column span [start, start+size) crosses their row.
        hit = (self.bcol_ind <= rows) & (rows < self.bcol_ind + sizes)
        hit &= rows < n
        sel = np.flatnonzero(hit)
        diag[rows[sel]] = self.values[offs[sel] + (rows[sel] - self.bcol_ind[sel])]
        return diag

    def to_coo(self) -> COOMatrix:
        """Export the (padding-free) entries back to COO."""
        if not self.has_values:
            raise FormatError("structure-only 1D-VBL cannot be exported")
        sizes = self.blk_size.astype(np.int64)
        rows = np.repeat(self.rows_of_blocks(), sizes)
        cols = self.x_access_stream().element_columns()
        return COOMatrix(self.nrows, self.ncols, rows, cols, self.values)

    # ------------------------------------------------------------------ #
    def spmv(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        x, out = self._check_spmv_operands(x, out)
        from ..kernels.vbl_kernels import spmv_vbl

        return spmv_vbl(self, x, out)

    def to_dense(self) -> np.ndarray:
        if not self.has_values:
            raise FormatError("structure-only 1D-VBL cannot be densified")
        dense = np.zeros(self.shape, dtype=self.values.dtype)
        rows = self.rows_of_blocks()
        offs = self.value_offsets()
        for idx in range(self.n_blocks):
            size = int(self.blk_size[idx])
            j0 = int(self.bcol_ind[idx])
            dense[rows[idx], j0 : j0 + size] = self.values[
                offs[idx] : offs[idx] + size
            ]
        return dense
