"""Vectorized structural analysis of fixed-size blockings.

Given a canonical COO pattern and a block geometry, these routines compute —
in a handful of NumPy passes, never a Python loop over nonzeros — everything
the converters, the working-set accounting and the performance models need:

* the set of occupied blocks (in row-major block order),
* the number of true nonzeros per block (→ padding, full-block detection),
* the per-nonzero block assignment (→ building value arrays, splitting a
  matrix for the decomposed formats).

One analysis is shared by a padded format and its decomposed variant: BCSR
and BCSR-DEC both consume a :class:`BlockStats` for the same ``r x c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConversionError
from .coo import COOMatrix

__all__ = ["BlockStats", "bcsr_block_stats", "bcsd_block_stats"]


def _unique_inverse_counts(
    key: np.ndarray, *, assume_sorted: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(unique, inverse, counts)`` of an int64 key array.

    When the key stream is known to be non-decreasing (r = 1 blockings of a
    canonical COO), everything falls out of one linear pass.  Otherwise one
    ``argsort`` plus a permutation scatter computes the inverse — each
    element's rank among the unique keys — directly from the sort order,
    which on blocked-sparsity key streams (many groups relative to ``n``)
    beats both ``np.unique(return_inverse=True)`` and a value ``sort``
    followed by a per-element ``searchsorted``.
    """
    n = key.shape[0]
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if assume_sorted:
        new = np.empty(n, dtype=bool)
        new[0] = True
        np.not_equal(key[1:], key[:-1], out=new[1:])
        ukeys = key[new]
        inverse = np.cumsum(new, dtype=np.int64) - 1
        starts = np.flatnonzero(new)
        counts = np.diff(np.append(starts, n))
        return ukeys, inverse, counts
    order = np.argsort(key, kind="stable")
    skey = key[order]
    new = np.empty(n, dtype=bool)
    new[0] = True
    np.not_equal(skey[1:], skey[:-1], out=new[1:])
    ukeys = skey[new]
    starts = np.flatnonzero(new)
    counts = np.diff(np.append(starts, n))
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.cumsum(new, dtype=np.int64) - 1
    return ukeys, inverse, counts


@dataclass(frozen=True)
class BlockStats:
    """Structure of one fixed-size blocking of a sparse pattern.

    Attributes
    ----------
    elems_per_block:
        Capacity of a block (``r * c`` for BCSR, ``b`` for BCSD).
    block_row:
        Block-row (segment) index of each occupied block, ascending.
    block_start_col:
        First matrix column touched by each block (may be negative for BCSD
        edge diagonals).
    counts:
        True nonzeros inside each block (1 .. elems_per_block).
    nnz_block:
        For each nonzero of the source COO (in canonical order), the index
        of the block it landed in.
    nnz_offset:
        For each nonzero, its position inside its block's value storage.
    n_block_rows:
        Number of block rows (segments) spanned by the matrix.
    """

    elems_per_block: int
    block_row: np.ndarray
    block_start_col: np.ndarray
    counts: np.ndarray
    nnz_block: np.ndarray
    nnz_offset: np.ndarray
    n_block_rows: int

    @property
    def n_blocks(self) -> int:
        return int(self.block_row.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.nnz_block.shape[0])

    @property
    def nnz_stored(self) -> int:
        return self.n_blocks * self.elems_per_block

    @property
    def padding(self) -> int:
        return self.nnz_stored - self.nnz

    def full_mask(self) -> np.ndarray:
        """Boolean mask over blocks that are completely filled."""
        return self.counts == self.elems_per_block

    def nnz_in_full_block(self) -> np.ndarray:
        """Boolean mask over nonzeros that belong to a full block."""
        return self.full_mask()[self.nnz_block]


def bcsr_block_stats(coo: COOMatrix, r: int, c: int) -> BlockStats:
    """Analyse the aligned ``r x c`` blocking of ``coo`` (BCSR geometry).

    Blocks are anchored at row multiples of ``r`` and column multiples of
    ``c`` — the strict alignment BCSR imposes (paper Section II-A).
    """
    if r < 1 or c < 1:
        raise ConversionError(f"invalid BCSR block {r}x{c}")
    n_bcols = -(-coo.ncols // c)
    brow = coo.rows // r
    bcol = coo.cols // c
    key = brow * np.int64(n_bcols) + bcol
    # For r == 1 the canonical row-major COO order makes the key stream
    # non-decreasing, enabling a sort-free linear analysis.
    ukeys, inverse, counts = _unique_inverse_counts(key, assume_sorted=(r == 1))
    ubrow = ukeys // n_bcols
    ubcol = ukeys - ubrow * n_bcols
    offset = (coo.rows - brow * r) * np.int64(c) + (coo.cols - bcol * c)
    return BlockStats(
        elems_per_block=r * c,
        block_row=ubrow,
        block_start_col=ubcol * c,
        counts=counts,
        nnz_block=inverse,
        nnz_offset=offset,
        n_block_rows=-(-coo.nrows // r),
    )


def bcsd_block_stats(coo: COOMatrix, b: int) -> BlockStats:
    """Analyse the size-``b`` diagonal blocking of ``coo`` (BCSD geometry).

    The matrix is cut into row segments of height ``b`` (segment ``s`` covers
    rows ``s*b .. s*b + b - 1``); a nonzero at ``(i, j)`` belongs to the
    diagonal block of its segment that starts at column ``j0 = j - (i mod
    b)``.  ``j0`` may be negative for diagonals entering from the left edge —
    those positions are simply padding.
    """
    if b < 1:
        raise ConversionError(f"invalid BCSD block size {b}")
    seg = coo.rows // b
    t = coo.rows - seg * b  # in-block (diagonal) offset
    j0 = coo.cols - t
    # Combine (seg, j0) into one sortable key; j0 >= -(b - 1).
    span = np.int64(coo.ncols + b)
    key = seg * span + (j0 + b - 1)
    ukeys, inverse, counts = _unique_inverse_counts(
        key, assume_sorted=(b == 1)
    )
    useg = ukeys // span
    uj0 = ukeys - useg * span - (b - 1)
    return BlockStats(
        elems_per_block=b,
        block_row=useg,
        block_start_col=uj0,
        counts=counts,
        nnz_block=inverse,
        nnz_offset=t,
        n_block_rows=-(-coo.nrows // b),
    )
