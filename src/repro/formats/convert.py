"""Conversion registry: build any storage format from a COO matrix.

The autotuning machinery in :mod:`repro.core` refers to formats by their
``kind`` string plus an optional block parameter; this module maps those
names onto the concrete converters.  ``with_values=False`` builds
structure-only instances — all the performance models and the machine
simulator need — skipping value-array materialisation entirely.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConversionError
from ..types import BlockShape
from .base import SparseFormat
from .bcsd import BCSDMatrix
from .bcsr import BCSRMatrix
from .coo import COOMatrix
from .csrdu import CSRDUMatrix
from .csr import CSRMatrix
from .decomposed import decompose_bcsd, decompose_bcsr
from .ubcsr import UBCSRMatrix
from .vbl import VBLMatrix
from .vbr import VBRMatrix

__all__ = ["build_format", "FORMAT_KINDS", "display_name"]

#: All recognised format kind strings, in the paper's presentation order.
FORMAT_KINDS = (
    "csr",
    "bcsr",
    "bcsr_dec",
    "bcsd",
    "bcsd_dec",
    "vbl",
    "ubcsr",
    "vbr",
    "csr_du",
)

_DISPLAY = {
    "csr": "CSR",
    "bcsr": "BCSR",
    "bcsr_dec": "BCSR-DEC",
    "bcsd": "BCSD",
    "bcsd_dec": "BCSD-DEC",
    "vbl": "1D-VBL",
    "ubcsr": "UBCSR",
    "vbr": "VBR",
    "csr_du": "CSR-DU",
}


def display_name(kind: str) -> str:
    """The paper's name for a format kind (e.g. ``"bcsr_dec"`` → ``"BCSR-DEC"``)."""
    try:
        return _DISPLAY[kind]
    except KeyError:
        raise ConversionError(f"unknown format kind {kind!r}") from None


def build_format(
    coo: COOMatrix,
    kind: str,
    block: BlockShape | tuple[int, int] | int | None = None,
    *,
    with_values: bool = True,
) -> SparseFormat:
    """Convert ``coo`` to the format named by ``kind``.

    ``block`` is an ``(r, c)`` pair (or :class:`~repro.types.BlockShape`)
    for the rectangular formats, an ``int`` diagonal size for the BCSD
    family, and must be ``None`` for CSR / 1D-VBL / VBR.
    """
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ConversionError(f"unknown format kind {kind!r}")
    return builder(coo, block, with_values)


def _need_shape(kind: str, block) -> BlockShape:
    if block is None:
        raise ConversionError(f"{kind} requires an (r, c) block shape")
    if isinstance(block, BlockShape):
        return block
    if isinstance(block, int):
        raise ConversionError(f"{kind} requires an (r, c) pair, got a bare int")
    return BlockShape(*block)


def _need_size(kind: str, block) -> int:
    if isinstance(block, BlockShape) or isinstance(block, tuple):
        raise ConversionError(f"{kind} takes a scalar diagonal size, got {block!r}")
    if block is None:
        raise ConversionError(f"{kind} requires a diagonal block size")
    return int(block)


def _no_block(kind: str, block) -> None:
    if block is not None:
        raise ConversionError(f"{kind} takes no block parameter, got {block!r}")


_BUILDERS: dict[str, Callable[[COOMatrix, object, bool], SparseFormat]] = {
    "csr": lambda coo, blk, wv: (
        _no_block("csr", blk),
        CSRMatrix.from_coo(coo, with_values=wv),
    )[1],
    "bcsr": lambda coo, blk, wv: BCSRMatrix.from_coo(
        coo, _need_shape("bcsr", blk), with_values=wv
    ),
    "bcsr_dec": lambda coo, blk, wv: decompose_bcsr(
        coo, _need_shape("bcsr_dec", blk), with_values=wv
    ),
    "bcsd": lambda coo, blk, wv: BCSDMatrix.from_coo(
        coo, _need_size("bcsd", blk), with_values=wv
    ),
    "bcsd_dec": lambda coo, blk, wv: decompose_bcsd(
        coo, _need_size("bcsd_dec", blk), with_values=wv
    ),
    "vbl": lambda coo, blk, wv: (
        _no_block("vbl", blk),
        VBLMatrix.from_coo(coo, with_values=wv),
    )[1],
    "ubcsr": lambda coo, blk, wv: UBCSRMatrix.from_coo(
        coo, _need_shape("ubcsr", blk), with_values=wv
    ),
    "vbr": lambda coo, blk, wv: (
        _no_block("vbr", blk),
        VBRMatrix.from_coo(coo, with_values=wv),
    )[1],
    "csr_du": lambda coo, blk, wv: (
        _no_block("csr_du", blk),
        CSRDUMatrix.from_coo(coo, with_values=wv),
    )[1],
}
