"""Actually-multithreaded SpMV on the tuned formats.

The paper implements real multithreaded versions of the blocked kernels
(Section V-A): the matrix splits row-wise into as many contiguous pieces
as threads, balanced by stored nonzeros (padding included).  This module
does the same for this package's NumPy kernels: each thread runs the
ordinary kernel on a *row-block slice* of the format, writing its own
disjoint slice of y — no locks, no atomics, and NumPy's kernels release
the GIL for the heavy lifting.

Two public pieces:

* :func:`row_block_slice` — an O(rows + blocks-in-range) view-like slice of
  a format covering block rows ``[lo, hi)`` (shares the underlying arrays);
* :class:`ThreadedSpMV` — partitions once (padding-aware), then applies
  ``y = A @ x`` with a thread pool; reusable across many multiplications
  (the iterative-solver pattern).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import FormatError, ModelError
from ..formats.base import SparseFormat
from ..formats.bcsd import BCSDMatrix
from ..formats.bcsr import BCSRMatrix
from ..formats.csr import CSRMatrix
from ..formats.decomposed import DecomposedMatrix
from ..formats.vbl import VBLMatrix
from .partition import balanced_partition, stored_per_block_row

__all__ = ["row_block_slice", "ThreadedSpMV"]


def row_block_slice(fmt: SparseFormat, lo: int, hi: int) -> SparseFormat:
    """A format covering only block rows ``[lo, hi)`` of ``fmt``.

    The slice shares the parent's arrays (no copies of values or column
    indices) and represents the rows ``lo*r .. hi*r`` as a standalone
    matrix of that height: ``slice.spmv(x)`` yields exactly that segment
    of the parent's ``y``.
    """
    n_rows = fmt.n_block_rows
    if not 0 <= lo <= hi <= n_rows:
        raise ModelError(f"slice [{lo}, {hi}) outside 0..{n_rows}")

    if isinstance(fmt, CSRMatrix):
        a, b = int(fmt.row_ptr[lo]), int(fmt.row_ptr[hi])
        return CSRMatrix(
            hi - lo,
            fmt.ncols,
            fmt.row_ptr[lo : hi + 1] - a,
            fmt.col_ind[a:b],
            None if fmt.values is None else fmt.values[a:b],
        )
    if isinstance(fmt, BCSRMatrix):
        a, b = int(fmt.brow_ptr[lo]), int(fmt.brow_ptr[hi])
        r = fmt.block.r
        nrows = min(fmt.nrows - lo * r, (hi - lo) * r)
        # True nonzeros per slice are unknowable from the padded layout;
        # report the stored count (slices serve kernels, not accounting).
        return BCSRMatrix(
            nrows,
            fmt.ncols,
            fmt.block,
            fmt.brow_ptr[lo : hi + 1] - a,
            fmt.bcol_ind[a:b],
            None if fmt.bval is None else fmt.bval[a:b],
            (b - a) * fmt.block.elems,
        )
    if isinstance(fmt, BCSDMatrix):
        a, b = int(fmt.brow_ptr[lo]), int(fmt.brow_ptr[hi])
        nrows = min(fmt.nrows - lo * fmt.b, (hi - lo) * fmt.b)
        return BCSDMatrix(
            nrows,
            fmt.ncols,
            fmt.b,
            fmt.brow_ptr[lo : hi + 1] - a,
            fmt.bcol_ind[a:b],
            None if fmt.bval is None else fmt.bval[a:b],
            (b - a) * fmt.b,
        )
    if isinstance(fmt, VBLMatrix):
        a, b = int(fmt.row_ptr[lo]), int(fmt.row_ptr[hi])
        ba, bb = int(fmt.block_row_ptr[lo]), int(fmt.block_row_ptr[hi])
        return VBLMatrix(
            hi - lo,
            fmt.ncols,
            fmt.row_ptr[lo : hi + 1] - a,
            fmt.bcol_ind[ba:bb],
            fmt.blk_size[ba:bb],
            fmt.block_row_ptr[lo : hi + 1] - ba,
            None if fmt.values is None else fmt.values[a:b],
        )
    raise ModelError(
        f"row_block_slice does not support format kind {fmt.kind!r}"
    )


class ThreadedSpMV:
    """Reusable multithreaded ``y = A @ x`` for one format.

    Partitions the format's block rows once (padding-aware, the paper's
    static scheme) and reuses the slices across calls.  Decomposed formats
    run their passes sequentially, each pass multithreaded, preserving the
    accumulate semantics.
    """

    def __init__(self, fmt: SparseFormat, nthreads: int) -> None:
        if nthreads < 1:
            raise ModelError("nthreads must be >= 1")
        if not fmt.has_values:
            raise FormatError("ThreadedSpMV needs a format with values")
        self.fmt = fmt
        self.nthreads = nthreads
        self._plans: list[list[tuple[int, SparseFormat]]] = []
        parts = (
            fmt.parts if isinstance(fmt, DecomposedMatrix) else (fmt,)
        )
        for part in parts:
            partition = balanced_partition(
                stored_per_block_row(part), nthreads
            )
            row_height = self._row_height(part)
            plan = []
            for sl in partition.slices():
                if sl.start == sl.stop:
                    continue
                plan.append(
                    (sl.start * row_height, row_block_slice(part, sl.start, sl.stop))
                )
            self._plans.append(plan)

    @staticmethod
    def _row_height(part: SparseFormat) -> int:
        kind = part.block_descriptor()[0]
        if kind == "bcsr":
            return part.block.r
        if kind == "bcsd":
            return part.b
        return 1

    def __call__(
        self, x: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        x = np.asarray(x)
        if x.shape != (self.fmt.ncols,):
            raise FormatError(
                f"x has shape {x.shape}, expected ({self.fmt.ncols},)"
            )
        if out is None:
            out = np.zeros(self.fmt.nrows, dtype=np.result_type(x.dtype, np.float64))

        def run(start: int, piece: SparseFormat) -> None:
            segment = piece.spmv(x)
            out[start : start + segment.shape[0]] += segment

        with ThreadPoolExecutor(max_workers=self.nthreads) as pool:
            for plan in self._plans:  # passes run sequentially
                futures = [pool.submit(run, s, p) for s, p in plan]
                for f in futures:
                    f.result()  # propagate exceptions
        return out
