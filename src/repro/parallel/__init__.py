"""Multithreading substrate: static row-wise, padding-aware partitioning."""

from .partition import (
    RowPartition,
    balanced_partition,
    block_ptr_of,
    stored_per_block_row,
)
from .threaded import ThreadedSpMV, row_block_slice

__all__ = [
    "RowPartition",
    "balanced_partition",
    "block_ptr_of",
    "stored_per_block_row",
    "ThreadedSpMV",
    "row_block_slice",
]
