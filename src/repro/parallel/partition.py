"""Static row-wise partitioning for multithreaded SpMV (paper Section V-A).

The paper splits the input matrix row-wise into as many contiguous pieces
as threads, balancing the number of nonzeros per thread and — for the
padded formats — counting the padding zeros too, since the kernel computes
on them all the same.  Partitioning happens at *block-row* granularity so a
block is never split across threads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ModelError
from ..formats.base import SparseFormat

__all__ = ["RowPartition", "balanced_partition", "stored_per_block_row"]


@dataclass(frozen=True)
class RowPartition:
    """A contiguous split of block rows across threads.

    ``boundaries`` has ``nthreads + 1`` entries; thread ``t`` owns block
    rows ``boundaries[t] : boundaries[t+1]``.
    """

    boundaries: np.ndarray

    @property
    def nthreads(self) -> int:
        return int(self.boundaries.shape[0] - 1)

    def slices(self) -> list[slice]:
        b = self.boundaries
        return [slice(int(b[t]), int(b[t + 1])) for t in range(self.nthreads)]

    def segment_sums(self, per_row: np.ndarray) -> np.ndarray:
        """Sum a per-block-row quantity over each thread's rows."""
        csum = np.concatenate(([0.0], np.cumsum(per_row, dtype=np.float64)))
        return csum[self.boundaries[1:]] - csum[self.boundaries[:-1]]


def balanced_partition(weights: np.ndarray, nthreads: int) -> RowPartition:
    """Split block rows into ``nthreads`` contiguous, weight-balanced parts.

    Uses the quantile rule on the cumulative weight (the paper's static
    scheme): boundary ``t`` is placed where the running weight first reaches
    ``t/nthreads`` of the total.
    """
    if nthreads < 1:
        raise ModelError("nthreads must be >= 1")
    weights = np.asarray(weights, dtype=np.float64)
    n = weights.shape[0]
    if nthreads == 1 or n == 0:
        return RowPartition(np.array([0, n], dtype=np.int64))
    csum = np.cumsum(weights)
    total = csum[-1]
    if total <= 0:
        # Degenerate: split rows evenly.
        bounds = np.linspace(0, n, nthreads + 1).round().astype(np.int64)
        return RowPartition(bounds)
    targets = total * np.arange(1, nthreads) / nthreads
    inner = np.searchsorted(csum, targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(inner, n), [n])).astype(np.int64)
    # Boundaries must be non-decreasing (they are, by construction).
    return RowPartition(bounds)


def stored_per_block_row(part: SparseFormat) -> np.ndarray:
    """Stored elements (padding included) per block row of a format part.

    This is the load-balancing weight the paper uses: true nonzeros plus
    the padding zeros a padded format computes on.
    """
    kind = part.block_descriptor()[0]
    if kind == "csr":
        return np.diff(part.row_ptr).astype(np.float64)
    if kind in ("bcsr", "ubcsr"):
        return np.diff(part.brow_ptr).astype(np.float64) * part.block.elems
    if kind == "bcsd":
        return np.diff(part.brow_ptr).astype(np.float64) * part.b
    if kind == "vbl":
        return np.diff(part.row_ptr).astype(np.float64)
    if kind == "csr_du":
        return np.bincount(
            part.rows_of_elements(), minlength=part.n_block_rows
        ).astype(np.float64)
    if kind == "vbr":
        n_rows = part.n_block_rows
        elems = np.diff(part.indx).astype(np.float64)
        out = np.zeros(n_rows)
        np.add.at(out, part.block_rows_of_blocks(), elems)
        return out
    raise ModelError(f"no partition weights for format kind {kind!r}")


def block_ptr_of(part: SparseFormat) -> np.ndarray:
    """Pointer array mapping block rows to positions in the block stream.

    Used to slice a part's x-access stream per thread: thread ``t`` owns
    stream entries ``ptr[b_t] : ptr[b_{t+1}]``.
    """
    kind = part.block_descriptor()[0]
    if kind in ("bcsr", "ubcsr", "bcsd"):
        return part.brow_ptr
    if kind == "csr":
        return part.row_ptr
    if kind == "vbl":
        return part.block_row_ptr
    if kind == "vbr":
        return part.bpntr
    raise ModelError(f"no block pointer for format kind {kind!r}")
