"""Reference SpMV implementations used as test oracles.

These are deliberately simple — a dense matmul and a plain per-element loop
— so that every production kernel can be validated against an independent
implementation.  Never use these for anything but small matrices.
"""

from __future__ import annotations

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["spmv_dense_reference", "spmv_coo_loop"]


def spmv_dense_reference(coo: COOMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` via full densification (oracle for small matrices)."""
    return coo.to_dense() @ np.asarray(x)


def spmv_coo_loop(coo: COOMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` via an explicit per-element Python loop (oracle)."""
    x = np.asarray(x)
    y = np.zeros(coo.nrows, dtype=np.result_type(x.dtype, np.float64))
    for i, j, v in zip(coo.rows, coo.cols, coo.values):
        y[i] += v * x[j]
    return y
