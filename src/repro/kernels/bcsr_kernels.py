"""BCSR and UBCSR SpMV kernels.

The vectorized BCSR kernel processes all blocks at once: the relevant
``c``-wide slices of x are gathered into an ``(nb, c)`` matrix, each block
contributes an ``(r,)`` partial result via an einsum contraction, and the
partials are scatter-added into the block rows of y.  Matrix edges are
handled by padding x/y up to whole blocks (the padded positions multiply
explicit stored zeros, so they contribute nothing).
"""

from __future__ import annotations

import numpy as np

from ..formats.bcsr import BCSRMatrix
from ..formats.ubcsr import UBCSRMatrix

__all__ = ["spmv_bcsr", "spmv_bcsr_scalar", "spmv_ubcsr"]


def spmv_bcsr(bcsr: BCSRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized BCSR SpMV, accumulating into ``out``."""
    if bcsr.n_blocks == 0:
        return out
    r, c = bcsr.block.r, bcsr.block.c
    n_bcols = -(-bcsr.ncols // c)
    xpad = x
    if n_bcols * c != x.shape[0]:
        xpad = np.zeros(n_bcols * c, dtype=x.dtype)
        xpad[: x.shape[0]] = x
    # Gather the c-slice of x for every block: shape (nb, c).
    starts = bcsr.bcol_ind * c
    xg = xpad[starts[:, None] + np.arange(c)]
    # Per-block partial results: (nb, r).
    partial = np.einsum("brc,bc->br", bcsr.bval, xg)
    # Scatter into block rows of y.
    ypad = np.zeros((bcsr.n_block_rows, r), dtype=out.dtype)
    np.add.at(ypad, bcsr.block_rows_of_blocks(), partial)
    out += ypad.reshape(-1)[: out.shape[0]]
    return out


def spmv_bcsr_scalar(bcsr: BCSRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Loop-per-block BCSR SpMV (reference; small matrices only)."""
    r, c = bcsr.block.r, bcsr.block.c
    brows = bcsr.block_rows_of_blocks()
    for idx in range(bcsr.n_blocks):
        i0 = int(brows[idx]) * r
        j0 = int(bcsr.bcol_ind[idx]) * c
        for bi in range(r):
            if i0 + bi >= bcsr.nrows:
                break
            acc = 0.0
            for bj in range(c):
                if j0 + bj < bcsr.ncols:
                    acc += bcsr.bval[idx, bi, bj] * x[j0 + bj]
            out[i0 + bi] += acc
    return out


def spmv_ubcsr(ub: UBCSRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized UBCSR SpMV (unaligned columns), accumulating into ``out``."""
    if ub.n_blocks == 0:
        return out
    r, c = ub.block.r, ub.block.c
    # Column starts are arbitrary, so pad x on the right by c.
    xpad = np.zeros(x.shape[0] + c, dtype=x.dtype)
    xpad[: x.shape[0]] = x
    xg = xpad[ub.bcol_start[:, None] + np.arange(c)]
    partial = np.einsum("brc,bc->br", ub.bval, xg)
    ypad = np.zeros((ub.n_block_rows, r), dtype=out.dtype)
    np.add.at(ypad, ub.block_rows_of_blocks(), partial)
    out += ypad.reshape(-1)[: out.shape[0]]
    return out
