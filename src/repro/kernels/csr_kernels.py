"""CSR SpMV kernels.

The vectorized kernel computes all element products in one pass and reduces
them per row with ``np.add.reduceat`` — the NumPy idiom for segmented sums.
Empty rows need care: ``reduceat`` repeats the segment value when
consecutive offsets coincide, so rows are compacted to the non-empty subset
first.
"""

from __future__ import annotations

import numpy as np

from ..formats.csr import CSRMatrix

__all__ = ["spmv_csr", "spmv_csr_scalar"]


def spmv_csr(csr: CSRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized CSR SpMV, accumulating into ``out``."""
    if csr.nnz == 0:
        return out
    products = csr.values * x[csr.col_ind]
    lengths = np.diff(csr.row_ptr)
    nonempty = np.flatnonzero(lengths)
    starts = csr.row_ptr[nonempty]
    sums = np.add.reduceat(products, starts)
    out[nonempty] += sums
    return out


def spmv_csr_scalar(csr: CSRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Textbook double-loop CSR SpMV (reference; small matrices only)."""
    for i in range(csr.nrows):
        acc = 0.0
        for k in range(int(csr.row_ptr[i]), int(csr.row_ptr[i + 1])):
            acc += csr.values[k] * x[csr.col_ind[k]]
        out[i] += acc
    return out
