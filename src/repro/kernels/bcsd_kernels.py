"""BCSD SpMV kernels.

A BCSD block at (segment s, start column j0) contributes
``y[s*b + t] += bval[t] * x[j0 + t]`` for ``t = 0..b-1``.  Edge diagonals
may start before column 0 or run past the last column; those positions hold
stored zeros, so the vectorized kernel clips the gather indices and masks
the out-of-range lanes.
"""

from __future__ import annotations

import numpy as np

from ..formats.bcsd import BCSDMatrix

__all__ = ["spmv_bcsd", "spmv_bcsd_scalar"]


def spmv_bcsd(bcsd: BCSDMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized BCSD SpMV, accumulating into ``out``."""
    if bcsd.n_blocks == 0:
        return out
    b = bcsd.b
    xidx = bcsd.bcol_ind[:, None] + np.arange(b)  # (nb, b)
    valid = (xidx >= 0) & (xidx < bcsd.ncols)
    xg = np.where(valid, x[np.clip(xidx, 0, bcsd.ncols - 1)], 0)
    partial = bcsd.bval * xg  # (nb, b)
    ypad = np.zeros((bcsd.n_block_rows, b), dtype=out.dtype)
    np.add.at(ypad, bcsd.segments_of_blocks(), partial)
    out += ypad.reshape(-1)[: out.shape[0]]
    return out


def spmv_bcsd_scalar(bcsd: BCSDMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Loop-per-block BCSD SpMV (reference; small matrices only)."""
    segs = bcsd.segments_of_blocks()
    for idx in range(bcsd.n_blocks):
        s = int(segs[idx])
        j0 = int(bcsd.bcol_ind[idx])
        for t in range(bcsd.b):
            i, j = s * bcsd.b + t, j0 + t
            if 0 <= i < bcsd.nrows and 0 <= j < bcsd.ncols:
                out[i] += bcsd.bval[idx, t] * x[j]
    return out
