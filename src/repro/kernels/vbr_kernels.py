"""VBR SpMV kernel.

Blocks are dense tiles of varying shapes; the kernel bins blocks by
(height, width) and runs one vectorized einsum pass per shape group.
"""

from __future__ import annotations

import numpy as np

from ..formats.vbr import VBRMatrix

__all__ = ["spmv_vbr"]


def spmv_vbr(vbr: VBRMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Shape-binned vectorized VBR SpMV, accumulating into ``out``."""
    if vbr.n_blocks == 0:
        return out
    brows = vbr.block_rows_of_blocks()
    heights = np.diff(vbr.rpntr)[brows]
    widths = np.diff(vbr.cpntr)[vbr.bindx]
    row_starts = vbr.rpntr[brows]
    col_starts = vbr.cpntr[vbr.bindx]
    shape_key = heights * np.int64(1 << 32) + widths
    for key in np.unique(shape_key):
        h = int(key >> 32)
        w = int(key & 0xFFFFFFFF)
        sel = np.flatnonzero(shape_key == key)
        vals = vbr.val[
            vbr.indx[sel][:, None] + np.arange(h * w)
        ].reshape(-1, h, w)
        xg = x[col_starts[sel][:, None] + np.arange(w)]
        partial = np.einsum("khw,kw->kh", vals, xg)  # (k, h)
        targets = row_starts[sel][:, None] + np.arange(h)
        np.add.at(out, targets.reshape(-1), partial.reshape(-1))
    return out
