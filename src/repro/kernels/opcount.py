"""Arithmetic-operation accounting for SpMV kernels.

A blocked kernel performs one multiply-add per *stored* entry (padding
included — that is precisely the compute cost of padding), plus the
accumulate additions a decomposed method pays when merging partial results.
These counts back the tests that assert padding/compute trade-offs and feed
GFLOP/s reporting in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..formats.base import SparseFormat
from ..formats.decomposed import DecomposedMatrix

__all__ = ["OpCount", "count_ops", "useful_ops"]


@dataclass(frozen=True)
class OpCount:
    """Floating-point operation counts for one SpMV application."""

    multiplies: int
    additions: int

    @property
    def total(self) -> int:
        return self.multiplies + self.additions


def useful_ops(fmt: SparseFormat) -> int:
    """Operations a padding-free kernel needs: 2 per true nonzero."""
    return 2 * fmt.nnz


def count_ops(fmt: SparseFormat) -> OpCount:
    """Count the multiply and addition operations ``fmt.spmv`` performs."""
    multiplies = fmt.nnz_stored
    additions = fmt.nnz_stored  # one accumulate per stored product
    if isinstance(fmt, DecomposedMatrix):
        # Each pass beyond the first re-reads and re-writes y: n extra adds.
        extra_passes = max(len(fmt.parts) - 1, 0)
        additions += extra_passes * fmt.nrows
    return OpCount(multiplies=multiplies, additions=additions)
