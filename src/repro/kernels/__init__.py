"""SpMV kernels, one module per storage format, plus reference oracles.

Every format's ``spmv`` method dispatches here.  Each module offers a fully
vectorized production kernel and (where useful) a loop-based scalar
reference used by the test suite.
"""

from .bcsd_kernels import spmv_bcsd, spmv_bcsd_scalar
from .bcsr_kernels import spmv_bcsr, spmv_bcsr_scalar, spmv_ubcsr
from .csr_kernels import spmv_csr, spmv_csr_scalar
from .opcount import OpCount, count_ops, useful_ops
from .reference import spmv_coo_loop, spmv_dense_reference
from .vbl_kernels import spmv_vbl, spmv_vbl_scalar
from .vbr_kernels import spmv_vbr

__all__ = [
    "spmv_csr",
    "spmv_csr_scalar",
    "spmv_bcsr",
    "spmv_bcsr_scalar",
    "spmv_ubcsr",
    "spmv_bcsd",
    "spmv_bcsd_scalar",
    "spmv_vbl",
    "spmv_vbl_scalar",
    "spmv_vbr",
    "spmv_dense_reference",
    "spmv_coo_loop",
    "OpCount",
    "count_ops",
    "useful_ops",
]
