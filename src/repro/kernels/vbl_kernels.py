"""1D-VBL SpMV kernels.

Blocks have variable lengths, so a single gather shape does not exist; the
vectorized kernel bins blocks by length and runs one fully vectorized pass
per distinct length (there are at most 255 of them, and real matrices have
a handful).
"""

from __future__ import annotations

import numpy as np

from ..formats.vbl import VBLMatrix

__all__ = ["spmv_vbl", "spmv_vbl_scalar"]


def spmv_vbl(vbl: VBLMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Vectorized (length-binned) 1D-VBL SpMV, accumulating into ``out``."""
    if vbl.n_blocks == 0:
        return out
    rows = vbl.rows_of_blocks()
    offs = vbl.value_offsets()
    sizes = vbl.blk_size.astype(np.int64)
    for size in np.unique(sizes):
        sel = np.flatnonzero(sizes == size)
        span = np.arange(size)
        vals = vbl.values[offs[sel][:, None] + span]  # (k, size)
        xg = x[vbl.bcol_ind[sel][:, None] + span]  # (k, size)
        np.add.at(out, rows[sel], np.einsum("ks,ks->k", vals, xg))
    return out


def spmv_vbl_scalar(vbl: VBLMatrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Loop-per-block 1D-VBL SpMV (reference; small matrices only)."""
    rows = vbl.rows_of_blocks()
    offs = vbl.value_offsets()
    for idx in range(vbl.n_blocks):
        size = int(vbl.blk_size[idx])
        j0 = int(vbl.bcol_ind[idx])
        o = int(offs[idx])
        acc = 0.0
        for t in range(size):
            acc += vbl.values[o + t] * x[j0 + t]
        out[rows[idx]] += acc
    return out
