"""repro — reproduction of *Performance Models for Blocked Sparse
Matrix-Vector Multiplication Kernels* (Karakasis, Goumas, Koziris;
ICPP 2009).

The package implements, from scratch:

* the blocking storage formats the paper evaluates (CSR, BCSR, BCSR-DEC,
  BCSD, BCSD-DEC, 1D-VBL) plus the UBCSR and VBR extensions it describes
  (:mod:`repro.formats`), with functional NumPy SpMV kernels
  (:mod:`repro.kernels`);
* the paper's testbed as an analytic execution simulator
  (:mod:`repro.machine`) — see DESIGN.md for the substitution rationale;
* the MEM / MEMCOMP / OVERLAP performance models with profiling-based
  calibration, candidate enumeration and autotuning (:mod:`repro.core`);
* the 30-matrix synthetic evaluation suite (:mod:`repro.matrices`);
* the multithreading substrate (:mod:`repro.parallel`) and the experiment
  harness regenerating every table and figure (:mod:`repro.bench`).

Quickstart::

    from repro import AutoTuner, CORE2_XEON
    from repro.matrices.generators import grid2d, random_values

    coo = random_values(grid2d(100, 100, 9, dof=3), seed=1)
    tuner = AutoTuner(CORE2_XEON)
    choice = tuner.select(coo, precision="dp", model="overlap")
    fmt = tuner.build(coo, choice.candidate)   # then: y = fmt.spmv(x)
"""

from .core import (
    AutoTuner,
    BlockProfile,
    Candidate,
    MemCompModel,
    MemModel,
    OverlapModel,
    candidate_space,
    evaluate_candidates,
    oracle_best,
    profile_machine,
    select_with_model,
)
from .formats import (
    BCSDMatrix,
    BCSRMatrix,
    COOMatrix,
    CSRMatrix,
    DecomposedMatrix,
    UBCSRMatrix,
    VBLMatrix,
    VBRMatrix,
    build_format,
)
from .machine import CORE2_XEON, GENERIC_MODERN, MachineModel, SimResult, simulate
from .solvers import SolveResult, bicgstab, cg, jacobi, power_iteration
from .types import BlockShape, Impl, Precision

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # formats
    "COOMatrix",
    "CSRMatrix",
    "BCSRMatrix",
    "BCSDMatrix",
    "DecomposedMatrix",
    "VBLMatrix",
    "UBCSRMatrix",
    "VBRMatrix",
    "build_format",
    # core
    "AutoTuner",
    "Candidate",
    "candidate_space",
    "BlockProfile",
    "profile_machine",
    "MemModel",
    "MemCompModel",
    "OverlapModel",
    "evaluate_candidates",
    "select_with_model",
    "oracle_best",
    # machine
    "MachineModel",
    "CORE2_XEON",
    "GENERIC_MODERN",
    "simulate",
    "SimResult",
    # solvers
    "SolveResult",
    "cg",
    "bicgstab",
    "jacobi",
    "power_iteration",
    # types
    "Precision",
    "Impl",
    "BlockShape",
]
