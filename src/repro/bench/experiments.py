"""One function per paper table/figure (the per-experiment index of DESIGN.md).

Every function is a pure projection of a :class:`~repro.bench.harness.
SweepResult` (except Table I and the col_ind-zeroing benchmark, which build
matrices directly).  Each returns a small result object with a ``render()``
method producing the paper-shaped text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from ..formats.csr import CSRMatrix
from ..machine.executor import simulate
from ..machine.machine import MachineModel
from ..machine.presets import get_preset
from ..matrices.suite import SUITE
from .harness import MatrixSweep, SweepRecord, SweepResult
from .report import render_series, render_table, warn_if_partial

__all__ = [
    "table1",
    "table2",
    "table3",
    "figure2",
    "figure3",
    "figure4",
    "table4",
    "colind_zero",
]

#: Format kinds in the paper's presentation order (Table II / Fig. 2).
_KIND_ORDER = ("csr", "bcsr", "bcsr_dec", "bcsd", "bcsd_dec", "vbl")
_KIND_LABEL = {
    "csr": "CSR",
    "bcsr": "BCSR",
    "bcsr_dec": "BCSR-DEC",
    "bcsd": "BCSD",
    "bcsd_dec": "BCSD-DEC",
    "vbl": "1D-VBL",
}
_MODELS = ("mem", "memcomp", "overlap")

#: The matrices the paper identifies as latency-bound in Section V-B.
LATENCY_BOUND_IDS = (12, 14, 15, 28)


# ===================================================================== #
# Table I — the matrix suite
# ===================================================================== #
@dataclass
class Table1Result:
    rows: list[tuple]

    def render(self) -> str:
        return render_table(
            ["#", "Matrix", "Domain", "rows", "nonzeros", "ws (MiB)",
             "paper ws (MiB)"],
            self.rows,
            title="Table I: matrix suite (ws = CSR working set, single precision)",
        )


def table1() -> Table1Result:
    """Regenerate Table I: per-matrix rows / nnz / CSR-sp working set."""
    rows = []
    for entry in SUITE:
        coo = entry.build()
        ws = CSRMatrix.from_coo(coo, with_values=False).working_set("sp")
        rows.append(
            (
                f"{entry.idx:02d}",
                entry.name,
                entry.domain,
                f"{coo.nrows:,}",
                f"{coo.nnz:,}",
                f"{ws / 2**20:.2f}",
                f"{entry.paper_ws_mib:.2f}",
            )
        )
    return Table1Result(rows=rows)


# ===================================================================== #
# Table II — wins per format per configuration
# ===================================================================== #
def _config_records(
    m: MatrixSweep, precision: str, simd: bool, nthreads: int = 1
) -> list[SweepRecord]:
    """The candidate pool of one Table II configuration.

    Non-SIMD configs run every format's scalar kernel (1D-VBL included);
    SIMD configs use vectorized kernels for the fixed-size blocked formats,
    scalar CSR, and drop 1D-VBL (the paper has no SIMD 1D-VBL).
    """
    records = m.select(precision=precision, nthreads=nthreads)
    if not simd:
        return [r for r in records if r.impl == "scalar"]
    pool = []
    for r in records:
        if r.kind == "csr" and r.impl == "scalar":
            pool.append(r)
        elif r.kind in ("bcsr", "bcsr_dec", "bcsd", "bcsd_dec") and r.impl == "simd":
            pool.append(r)
    return pool


@dataclass
class Table2Result:
    wins: dict[str, dict[str, int]]  # config -> kind -> count
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        configs = list(self.wins)
        rows = []
        for kind in _KIND_ORDER:
            row = [_KIND_LABEL[kind]]
            for cfg in configs:
                count = self.wins[cfg].get(kind)
                row.append("-" if count is None else str(count))
            rows.append(row)
        return render_table(
            ["Method/Configuration"] + configs,
            rows,
            title=(
                "Table II: matrices won per format "
                "(special matrices excluded)"
            ),
        ) + warn_if_partial(self.missing)


def table2(sweep: SweepResult) -> Table2Result:
    """Regenerate Table II: wins for dp / dp-simd / sp / sp-simd."""
    wins: dict[str, dict[str, int]] = {}
    for precision in ("dp", "sp"):
        for simd in (False, True):
            cfg = precision + ("-simd" if simd else "")
            counts = {k: 0 for k in _KIND_ORDER}
            if simd:
                counts["vbl"] = None  # not implemented, as in the paper
            for m in sweep.matrices:
                if m.special:
                    continue
                pool = _config_records(m, precision, simd)
                best = min(pool, key=lambda r: r.t_real)
                counts[best.kind] += 1
            wins[cfg] = counts
    return Table2Result(wins=wins, missing=tuple(sweep.missing))


# ===================================================================== #
# Table III — speedups over CSR per matrix (dp, no SIMD)
# ===================================================================== #
@dataclass
class Table3Result:
    rows: list[tuple]
    averages: tuple
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        headers = [
            "Matrix",
            "BCSR min", "BCSR avg", "BCSR max",
            "BCSR-DEC min", "BCSR-DEC avg", "BCSR-DEC max",
            "BCSD min", "BCSD avg", "BCSD max",
            "BCSD-DEC min", "BCSD-DEC avg", "BCSD-DEC max",
            "1D-VBL",
        ]
        rows = list(self.rows) + [self.averages]
        return render_table(
            headers,
            rows,
            title="Table III: speedup over CSR per matrix, double precision, scalar",
        ) + warn_if_partial(self.missing)


def table3(sweep: SweepResult) -> Table3Result:
    """Regenerate Table III: min/avg/max speedup over CSR per format."""
    rows = []
    per_col: list[list[float]] = [[] for _ in range(13)]
    for m in sweep.matrices:
        records = m.select(precision="dp", nthreads=1, impls=("scalar",))
        t_csr = next(r.t_real for r in records if r.kind == "csr")
        cells: list[object] = [f"{m.idx:02d}.{m.name}"]
        col = 0
        for kind in ("bcsr", "bcsr_dec", "bcsd", "bcsd_dec"):
            speedups = [
                t_csr / r.t_real for r in records if r.kind == kind
            ]
            for v in (min(speedups), mean(speedups), max(speedups)):
                cells.append(f"{v:.2f}")
                per_col[col].append(v)
                col += 1
        vbl = next(r for r in records if r.kind == "vbl")
        v = t_csr / vbl.t_real
        cells.append(f"{v:.2f}")
        per_col[12].append(v)
        rows.append(tuple(cells))
    averages = tuple(
        ["Average"] + [f"{mean(c):.2f}" for c in per_col]
    )
    return Table3Result(rows=rows, averages=averages,
                        missing=tuple(sweep.missing))


# ===================================================================== #
# Figure 2 — wins across 1/2/4 cores
# ===================================================================== #
@dataclass
class Figure2Result:
    wins: dict[str, dict[str, int]]  # "<precision>-<cores>c" -> kind -> count
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        configs = list(self.wins)
        rows = []
        for kind in _KIND_ORDER[:-1]:  # no 1D-VBL in the multicore study
            row = [_KIND_LABEL[kind]]
            row += [str(self.wins[cfg].get(kind, 0)) for cfg in configs]
            rows.append(row)
        return render_table(
            ["Method"] + configs,
            rows,
            title=(
                "Figure 2: distribution of wins across formats for "
                "1, 2 and 4 cores (best over scalar/SIMD kernels)"
            ),
        ) + warn_if_partial(self.missing)


def figure2(sweep: SweepResult) -> Figure2Result:
    """Regenerate Fig. 2: per-core-count win distribution, sp and dp."""
    wins: dict[str, dict[str, int]] = {}
    for precision in ("sp", "dp"):
        for cores in sweep.config.thread_counts:
            cfg = f"{precision}-{cores}c"
            counts = {k: 0 for k in _KIND_ORDER[:-1]}
            for m in sweep.matrices:
                if m.special:
                    continue
                pool = [
                    r
                    for r in m.select(precision=precision, nthreads=cores)
                    if r.kind != "vbl"
                ]
                best = min(pool, key=lambda r: r.t_real)
                counts[best.kind] += 1
            wins[cfg] = counts
    return Figure2Result(wins=wins, missing=tuple(sweep.missing))


# ===================================================================== #
# Figure 3 — prediction accuracy
# ===================================================================== #
@dataclass
class Figure3Result:
    precision: str
    matrix_ids: list[int]
    normalized: dict[str, list[float]]  # model -> per-matrix mean pred/real
    mean_abs_error: dict[str, float]  # model -> mean |pred - real| / real
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        legend = ", ".join(
            f"abs(t_{m} - t_real) ~ {self.mean_abs_error[m] * 100:.1f}%"
            for m in _MODELS
        )
        body = render_series(
            "matrix",
            self.matrix_ids,
            {f"t_{m}/t_real": self.normalized[m] for m in _MODELS},
            title=(
                f"Figure 3 ({self.precision}): predicted / real execution "
                "time per matrix (mean over all blocks and methods)"
            ),
        )
        return body + "\n" + legend + warn_if_partial(self.missing)


def figure3(sweep: SweepResult, precision: str) -> Figure3Result:
    """Regenerate one panel of Fig. 3 for ``precision``."""
    ids: list[int] = []
    normalized: dict[str, list[float]] = {m: [] for m in _MODELS}
    abs_err: dict[str, list[float]] = {m: [] for m in _MODELS}
    for m in sweep.matrices:
        if m.special:
            continue  # the paper omits the two special matrices here
        records = [
            r
            for r in m.select(precision=precision, nthreads=1)
            if "overlap" in r.predictions  # fixed-size candidates only
        ]
        ids.append(m.idx)
        for model in _MODELS:
            ratios = [r.predictions[model] / r.t_real for r in records]
            normalized[model].append(mean(ratios))
            abs_err[model].extend(abs(x - 1.0) for x in ratios)
    return Figure3Result(
        precision=precision,
        matrix_ids=ids,
        normalized=normalized,
        mean_abs_error={m: mean(abs_err[m]) for m in _MODELS},
        missing=tuple(sweep.missing),
    )


# ===================================================================== #
# Figure 4 / Table IV — selection accuracy
# ===================================================================== #
def _model_selection(
    records: list[SweepRecord], model: str
) -> SweepRecord:
    """What ``model`` picks: its own minimum prediction.

    As in the paper, models tune over the fixed-size space only (no
    1D-VBL), and MEM — blind to implementations — defaults to the scalar
    kernels.
    """
    pool = [
        r
        for r in records
        if model in r.predictions and r.kind != "vbl"
    ]
    if model == "mem":
        pool = [r for r in pool if r.impl == "scalar"]
    return min(pool, key=lambda r: r.predictions[model])


@dataclass
class Figure4Result:
    precision: str
    matrix_ids: list[int]
    normalized: dict[str, list[float]]  # model -> t_real(selection)/t_best
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        return render_series(
            "matrix",
            self.matrix_ids,
            {f"t_{m}": self.normalized[m] for m in _MODELS},
            title=(
                f"Figure 4 ({self.precision}): real time of each model's "
                "selection, normalized to the best overall"
            ),
        ) + warn_if_partial(self.missing)


def figure4(sweep: SweepResult, precision: str) -> Figure4Result:
    """Regenerate one panel of Fig. 4 for ``precision``."""
    ids: list[int] = []
    normalized: dict[str, list[float]] = {m: [] for m in _MODELS}
    for m in sweep.matrices:
        if m.special:
            continue
        records = m.select(precision=precision, nthreads=1)
        best = min(records, key=lambda r: r.t_real)
        ids.append(m.idx)
        for model in _MODELS:
            sel = _model_selection(records, model)
            normalized[model].append(sel.t_real / best.t_real)
    return Figure4Result(
        precision=precision,
        matrix_ids=ids,
        normalized=normalized,
        missing=tuple(sweep.missing),
    )


@dataclass
class Table4Result:
    rows: list[tuple]
    missing: tuple[int, ...] = ()

    def render(self) -> str:
        return render_table(
            [
                "Model",
                "sp #correct", "sp off-best",
                "dp #correct", "dp off-best",
            ],
            self.rows,
            title=(
                "Table IV: optimal selections per model and mean distance "
                "from the best performance"
            ),
        ) + warn_if_partial(self.missing)


def table4(sweep: SweepResult) -> Table4Result:
    """Regenerate Table IV: #correct selections + avg distance from best.

    A selection counts as correct when it matches the oracle's *method and
    block* (the paper's criterion), regardless of implementation.
    """
    stats: dict[str, dict[str, tuple[int, float]]] = {}
    for precision in ("sp", "dp"):
        per_model: dict[str, tuple[int, float]] = {}
        for model in _MODELS:
            correct = 0
            offsets: list[float] = []
            for m in sweep.matrices:
                if m.special:
                    continue
                records = m.select(precision=precision, nthreads=1)
                best = min(records, key=lambda r: r.t_real)
                sel = _model_selection(records, model)
                if (sel.kind, sel.block) == (best.kind, best.block):
                    correct += 1
                offsets.append(sel.t_real / best.t_real - 1.0)
            per_model[model] = (correct, mean(offsets))
        stats[precision] = per_model
    rows = []
    for model in _MODELS:
        sp_c, sp_off = stats["sp"][model]
        dp_c, dp_off = stats["dp"][model]
        rows.append(
            (
                model.upper(),
                str(sp_c),
                f"{sp_off * 100:.1f}%",
                str(dp_c),
                f"{dp_off * 100:.1f}%",
            )
        )
    return Table4Result(rows=rows, missing=tuple(sweep.missing))


# ===================================================================== #
# Section V-B — the col_ind-zeroing custom benchmark
# ===================================================================== #
@dataclass
class ColIndZeroResult:
    rows: list[tuple]

    def render(self) -> str:
        return render_table(
            ["Matrix", "t_csr", "t_csr (col_ind=0)", "speedup"],
            self.rows,
            title=(
                "Custom benchmark (Sec. V-B): CSR with zeroed col_ind on "
                "the latency-bound matrices"
            ),
        )


def colind_zero(
    machine: MachineModel | None = None,
    matrix_ids: tuple[int, ...] = LATENCY_BOUND_IDS,
) -> ColIndZeroResult:
    """Reproduce the benchmark that zeroes CSR's col_ind.

    With all column indices equal to zero every x access hits one cache
    line, so the runs isolate how much time the latency-bound matrices lose
    to input-vector misses (the paper saw 2-4x).
    """
    machine = machine if machine is not None else get_preset("core2-xeon-2.66")
    rows = []
    for entry in SUITE:
        if entry.idx not in matrix_ids:
            continue
        coo = entry.build()
        csr = CSRMatrix.from_coo(coo, with_values=False)
        normal = simulate(csr, machine, "dp", "scalar")
        zeroed = simulate(csr, machine, "dp", "scalar", zero_col_ind=True)
        rows.append(
            (
                f"{entry.idx:02d}.{entry.name}",
                f"{normal.t_total * 1e3:.3f} ms",
                f"{zeroed.t_total * 1e3:.3f} ms",
                f"{normal.t_total / zeroed.t_total:.2f}x",
            )
        )
    return ColIndZeroResult(rows=rows)
