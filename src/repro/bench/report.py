"""Plain-text rendering of experiment results (tables and series).

The paper's deliverables are tables and line plots; in a terminal-first
reproduction both become aligned text: tables render as boxed ASCII grids,
figures as per-matrix value columns (one line per x-axis point), which is
exactly the data a plotting script would consume.
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence, TextIO

__all__ = [
    "render_table",
    "render_series",
    "format_float",
    "missing_note",
    "warn_if_partial",
]


def format_float(value: float, digits: int = 2) -> str:
    """Fixed-point rendering used across all tables."""
    return f"{value:.{digits}f}"


def missing_note(missing: Sequence[int]) -> str | None:
    """One-line description of a partial sweep, or ``None`` if complete."""
    if not missing:
        return None
    ids = ", ".join(str(i) for i in sorted(missing))
    return (
        f"PARTIAL SWEEP: matrices {ids} are missing (quarantined or not "
        "swept); every number below excludes them"
    )


def warn_if_partial(
    missing: Sequence[int], *, stream: TextIO | None = None
) -> str:
    """Loud stderr banner for a partial sweep; returns the table footnote.

    Rendering a table from an incomplete sweep silently would invite
    comparing apples to oranges (e.g. win counts over 28 matrices against
    the paper's 30), so every experiment ``render()`` both shouts on stderr
    and stamps the rendered text itself.  Returns ``""`` when nothing is
    missing.
    """
    note = missing_note(missing)
    if note is None:
        return ""
    stream = sys.stderr if stream is None else stream
    bar = "!" * 72
    print(bar, file=stream)
    print(f"! {note}", file=stream)
    print(bar, file=stream)
    return f"\n* {note}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    digits: int = 3,
) -> str:
    """Render several aligned numeric series against a shared x axis.

    This is the textual form of a line plot: one row per x value, one
    column per series.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append("-" if value is None else f"{value:.{digits}f}")
        rows.append(row)
    return render_table(headers, rows, title=title)
