"""Export the regenerated figures as tab-separated data files.

The harness renders figures as aligned text; for users who want the
paper-style line plots, these writers dump each figure's series as TSV
(one row per x value, one column per series) ready for gnuplot /
matplotlib / a spreadsheet.
"""

from __future__ import annotations

from pathlib import Path

from .experiments import figure2, figure3, figure4
from .harness import SweepResult

__all__ = ["export_figure_data", "write_tsv"]


def write_tsv(path: Path, headers: list[str], rows: list[list]) -> None:
    lines = ["\t".join(headers)]
    lines += ["\t".join(str(c) for c in row) for row in rows]
    path.write_text("\n".join(lines) + "\n")


def export_figure_data(
    sweep: SweepResult, outdir: str | Path = "figures"
) -> list[Path]:
    """Write fig2/fig3/fig4 data files; returns the paths written."""
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    # Figure 2: win counts per configuration.
    f2 = figure2(sweep)
    kinds = sorted({k for counts in f2.wins.values() for k in counts})
    rows = [
        [cfg] + [f2.wins[cfg].get(k, 0) for k in kinds] for cfg in f2.wins
    ]
    path = outdir / "figure2_wins.tsv"
    write_tsv(path, ["config"] + kinds, rows)
    written.append(path)

    # Figures 3 and 4, one file per precision.
    for precision in ("sp", "dp"):
        f3 = figure3(sweep, precision)
        rows = [
            [idx]
            + [f"{f3.normalized[m][i]:.6f}" for m in ("mem", "memcomp", "overlap")]
            for i, idx in enumerate(f3.matrix_ids)
        ]
        path = outdir / f"figure3_{precision}.tsv"
        write_tsv(
            path, ["matrix", "t_mem", "t_memcomp", "t_overlap"], rows
        )
        written.append(path)

        f4 = figure4(sweep, precision)
        rows = [
            [idx]
            + [f"{f4.normalized[m][i]:.6f}" for m in ("mem", "memcomp", "overlap")]
            for i, idx in enumerate(f4.matrix_ids)
        ]
        path = outdir / f"figure4_{precision}.tsv"
        write_tsv(
            path, ["matrix", "t_mem", "t_memcomp", "t_overlap"], rows
        )
        written.append(path)
    return written
