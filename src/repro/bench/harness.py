"""The sweep harness: run every candidate on every suite matrix and cache.

One full sweep produces, for each (matrix, candidate, precision, threads):
the simulated "measured" time with its breakdown, the format's working set
and padding, and — for the single-threaded runs — the prediction of each
performance model.  Every table and figure of the paper is a projection of
this dataset, so it is computed once and cached as JSON under
``.repro_cache/`` (keyed by a fingerprint of the configuration).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Sequence

from ..core.candidates import Candidate, candidate_space
from ..core.profiling import ProfileCache
from ..core.selection import evaluate_candidates
from ..machine.machine import MachineModel
from ..machine.presets import get_preset
from ..matrices.suite import SUITE, SuiteEntry
from ..types import Impl, Precision

__all__ = [
    "SweepConfig",
    "SweepRecord",
    "MatrixSweep",
    "SweepResult",
    "run_sweep",
    "load_or_run_sweep",
    "DEFAULT_CACHE_DIR",
]

#: Bump when the simulator, the cost tables or the suite change meaningfully.
SWEEP_VERSION = 9

DEFAULT_CACHE_DIR = Path(".repro_cache")

MODEL_NAMES = ("mem", "memcomp", "overlap")


@dataclass(frozen=True)
class SweepConfig:
    """Everything that determines a sweep's outcome."""

    machine_name: str = "core2-xeon-2.66"
    precisions: tuple[str, ...] = ("sp", "dp")
    thread_counts: tuple[int, ...] = (1, 2, 4)
    max_block_elems: int = 8
    version: int = SWEEP_VERSION

    def fingerprint(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True)
        return sha256(payload.encode()).hexdigest()[:16]


@dataclass
class SweepRecord:
    """One (candidate, precision, threads) data point on one matrix."""

    kind: str
    block: tuple[int, int] | int | None
    impl: str
    precision: str
    nthreads: int
    t_real: float
    t_mem: float
    t_comp: float
    t_latency: float
    ws_bytes: int
    padding_ratio: float
    n_blocks: int
    predictions: dict[str, float] = field(default_factory=dict)

    @property
    def candidate(self) -> Candidate:
        block = tuple(self.block) if isinstance(self.block, list) else self.block
        return Candidate(self.kind, block, Impl(self.impl))


@dataclass
class MatrixSweep:
    """All data points for one suite matrix."""

    idx: int
    name: str
    domain: str
    geometry: bool
    special: bool
    nrows: int
    ncols: int
    nnz: int
    records: list[SweepRecord] = field(default_factory=list)

    def select(
        self,
        precision: str | None = None,
        nthreads: int | None = None,
        impls: Sequence[str] | None = None,
        kinds: Sequence[str] | None = None,
    ) -> list[SweepRecord]:
        """Filter records by precision / thread count / impl / kind."""
        out = self.records
        if precision is not None:
            out = [r for r in out if r.precision == precision]
        if nthreads is not None:
            out = [r for r in out if r.nthreads == nthreads]
        if impls is not None:
            out = [r for r in out if r.impl in impls]
        if kinds is not None:
            out = [r for r in out if r.kind in kinds]
        return out


@dataclass
class SweepResult:
    """A full sweep over the suite."""

    config: SweepConfig
    matrices: list[MatrixSweep]
    elapsed_s: float

    def matrix(self, name_or_idx: str | int) -> MatrixSweep:
        for m in self.matrices:
            if m.name == name_or_idx or m.idx == name_or_idx:
                return m
        raise KeyError(f"no sweep data for matrix {name_or_idx!r}")

    # -------------------------- persistence -------------------------- #
    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "config": asdict(self.config),
            "elapsed_s": self.elapsed_s,
            "matrices": [asdict(m) for m in self.matrices],
        }
        path.write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        payload = json.loads(Path(path).read_text())
        config = SweepConfig(**{
            k: tuple(v) if isinstance(v, list) else v
            for k, v in payload["config"].items()
        })
        matrices = []
        for m in payload["matrices"]:
            records = [
                SweepRecord(**{
                    **r,
                    "block": tuple(r["block"])
                    if isinstance(r["block"], list)
                    else r["block"],
                })
                for r in m.pop("records")
            ]
            matrices.append(MatrixSweep(records=records, **m))
        return cls(config=config, matrices=matrices,
                   elapsed_s=payload["elapsed_s"])


def run_sweep(
    entries: Iterable[SuiteEntry] = SUITE,
    config: SweepConfig = SweepConfig(),
    *,
    machine: MachineModel | None = None,
    progress: bool = False,
) -> SweepResult:
    """Run the full sweep (no caching; see :func:`load_or_run_sweep`)."""
    machine = machine if machine is not None else get_preset(config.machine_name)
    profile_cache = ProfileCache()
    candidates = candidate_space(max_block_elems=config.max_block_elems)
    # The multicore experiment drops 1D-VBL, as the paper does ("we have
    # chosen not to implement a multithreaded version of 1D-VBL").
    mt_candidates = tuple(c for c in candidates if c.kind != "vbl")

    t_start = time.perf_counter()
    matrices: list[MatrixSweep] = []
    for entry in entries:
        t0 = time.perf_counter()
        coo = entry.build()
        sweep = MatrixSweep(
            idx=entry.idx,
            name=entry.name,
            domain=entry.domain,
            geometry=entry.geometry,
            special=entry.special,
            nrows=coo.nrows,
            ncols=coo.ncols,
            nnz=coo.nnz,
        )
        fmt_cache: dict = {}
        for precision in config.precisions:
            for nthreads in config.thread_counts:
                single = nthreads == 1
                results = evaluate_candidates(
                    coo,
                    machine,
                    precision,
                    candidates=candidates if single else mt_candidates,
                    models=MODEL_NAMES if single else (),
                    profile_cache=profile_cache,
                    nthreads=nthreads,
                    fmt_cache=fmt_cache,
                )
                for res in results:
                    cand = res.candidate
                    sweep.records.append(
                        SweepRecord(
                            kind=cand.kind,
                            block=cand.block,
                            impl=cand.impl.value,
                            precision=Precision.coerce(precision).value,
                            nthreads=nthreads,
                            t_real=res.sim.t_total,
                            t_mem=res.sim.t_mem,
                            t_comp=res.sim.t_comp,
                            t_latency=res.sim.t_latency,
                            ws_bytes=res.ws_bytes,
                            padding_ratio=res.padding_ratio,
                            n_blocks=res.n_blocks,
                            predictions=dict(res.predictions),
                        )
                    )
        matrices.append(sweep)
        if progress:
            print(
                f"[sweep] {entry.idx:2d} {entry.name:15s} "
                f"({time.perf_counter() - t0:5.1f}s)",
                flush=True,
            )
    return SweepResult(
        config=config,
        matrices=matrices,
        elapsed_s=time.perf_counter() - t_start,
    )


def load_or_run_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    progress: bool = False,
) -> SweepResult:
    """Return the cached sweep for ``config``, running it if absent."""
    cache_path = Path(cache_dir) / f"sweep_{config.fingerprint()}.json"
    if cache_path.exists():
        return SweepResult.load(cache_path)
    result = run_sweep(config=config, progress=progress)
    result.save(cache_path)
    return result
