"""The sweep harness: run every candidate on every suite matrix and cache.

One full sweep produces, for each (matrix, candidate, precision, threads):
the simulated "measured" time with its breakdown, the format's working set
and padding, and — for the single-threaded runs — the prediction of each
performance model.  Every table and figure of the paper is a projection of
this dataset, so it is computed once and cached as JSON under
``.repro_cache/`` (keyed by a fingerprint of the configuration).

Execution is delegated to :mod:`repro.engine`: the sweep is decomposed
into per-matrix *shards* that run across a worker pool, each persisted
atomically so an interrupted sweep resumes from where it stopped.  The
monolithic cache file kept here is a read-through fast path assembled
from the shards once a sweep completes.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import asdict, dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from ..core.candidates import Candidate, candidate_space
from ..core.profiling import BlockProfile, ProfileCache
from ..core.selection import evaluate_candidates

# Re-exported here for backwards compatibility: these helpers started life
# in this module and grew callers across bench/, engine/ and serve/.
from ..ioutils import (  # noqa: F401
    CACHE_DECODE_ERRORS,
    CacheWriteError,
    atomic_write_json,
    read_envelope,
    remove_stale_tmp_files,
    write_envelope,
)
from ..machine.machine import MachineModel
from ..machine.presets import get_preset
from ..matrices.suite import SUITE, SuiteEntry, get_entry
from ..types import Impl, Precision

__all__ = [
    "SweepConfig",
    "SweepRecord",
    "MatrixSweep",
    "SweepResult",
    "diff_sweep_results",
    "sweep_matrix",
    "matrix_sweep_from_payload",
    "atomic_write_json",
    "run_sweep",
    "load_or_run_sweep",
    "DEFAULT_CACHE_DIR",
    "PHASE_NAMES",
]

logger = logging.getLogger(__name__)

#: Bump when the simulator, the cost tables or the suite change meaningfully.
SWEEP_VERSION = 10

DEFAULT_CACHE_DIR = Path(".repro_cache")

MODEL_NAMES = ("mem", "memcomp", "overlap")

#: The per-shard phase-timing keys, in reporting order (``--profile``).
PHASE_NAMES = ("convert", "stats", "simulate", "models")


@dataclass(frozen=True)
class SweepConfig:
    """Everything that determines a sweep's outcome."""

    machine_name: str = "core2-xeon-2.66"
    precisions: tuple[str, ...] = ("sp", "dp")
    thread_counts: tuple[int, ...] = (1, 2, 4)
    max_block_elems: int = 8
    #: Restrict the sweep to these 1-based suite indices (``None`` = all
    #: 30 matrices).  Part of the fingerprint: a subset sweep caches
    #: separately from the full one.
    suite_indices: tuple[int, ...] | None = None
    version: int = SWEEP_VERSION

    def fingerprint(self) -> str:
        payload = json.dumps(asdict(self), sort_keys=True)
        return sha256(payload.encode()).hexdigest()[:16]

    def entries(self) -> tuple[SuiteEntry, ...]:
        """The suite entries this config sweeps, in suite order."""
        if self.suite_indices is None:
            return SUITE
        return tuple(get_entry(i) for i in self.suite_indices)


@dataclass
class SweepRecord:
    """One (candidate, precision, threads) data point on one matrix."""

    kind: str
    block: tuple[int, int] | int | None
    impl: str
    precision: str
    nthreads: int
    t_real: float
    t_mem: float
    t_comp: float
    t_latency: float
    ws_bytes: int
    padding_ratio: float
    n_blocks: int
    predictions: dict[str, float] = field(default_factory=dict)

    @property
    def candidate(self) -> Candidate:
        block = tuple(self.block) if isinstance(self.block, list) else self.block
        return Candidate(self.kind, block, Impl(self.impl))


@dataclass
class MatrixSweep:
    """All data points for one suite matrix.

    :func:`sweep_matrix` additionally attaches a ``_phase_timings`` dict
    (phase name → seconds; see :data:`PHASE_NAMES`) as a plain attribute.
    Being a non-field attribute it survives pickling between engine workers
    but stays out of ``asdict`` — and therefore out of the persisted shard
    payloads and ``SweepResult.canonical_json()``.
    """

    idx: int
    name: str
    domain: str
    geometry: bool
    special: bool
    nrows: int
    ncols: int
    nnz: int
    records: list[SweepRecord] = field(default_factory=list)

    def select(
        self,
        precision: str | None = None,
        nthreads: int | None = None,
        impls: Sequence[str] | None = None,
        kinds: Sequence[str] | None = None,
    ) -> list[SweepRecord]:
        """Filter records by precision / thread count / impl / kind."""
        out = self.records
        if precision is not None:
            out = [r for r in out if r.precision == precision]
        if nthreads is not None:
            out = [r for r in out if r.nthreads == nthreads]
        if impls is not None:
            out = [r for r in out if r.impl in impls]
        if kinds is not None:
            out = [r for r in out if r.kind in kinds]
        return out


def matrix_sweep_from_payload(payload: Mapping) -> MatrixSweep:
    """Rebuild a :class:`MatrixSweep` from its JSON (``asdict``) form."""
    m = dict(payload)
    records = [
        SweepRecord(**{
            **r,
            "block": tuple(r["block"])
            if isinstance(r["block"], list)
            else r["block"],
        })
        for r in m.pop("records")
    ]
    return MatrixSweep(records=records, **m)


def _config_from_payload(payload: Mapping) -> SweepConfig:
    return SweepConfig(**{
        k: tuple(v) if isinstance(v, list) else v
        for k, v in payload.items()
    })


@dataclass
class SweepResult:
    """A full (or, after quarantines, partial) sweep over the suite."""

    config: SweepConfig
    matrices: list[MatrixSweep]
    elapsed_s: float
    #: Suite indices whose shard was quarantined after repeated failures.
    #: Empty for a complete sweep.
    missing: list[int] = field(default_factory=list)

    def matrix(self, name_or_idx: str | int) -> MatrixSweep:
        for m in self.matrices:
            if m.name == name_or_idx or m.idx == name_or_idx:
                return m
        raise KeyError(f"no sweep data for matrix {name_or_idx!r}")

    # -------------------------- persistence -------------------------- #
    def save(self, path: str | Path) -> None:
        payload = {
            "config": asdict(self.config),
            "elapsed_s": self.elapsed_s,
            "missing": list(self.missing),
            "matrices": [asdict(m) for m in self.matrices],
        }
        write_envelope(path, payload, schema=SWEEP_VERSION)

    @classmethod
    def load(cls, path: str | Path) -> "SweepResult":
        """Parse a (possibly pre-envelope) sweep cache; the envelope
        layer raises into :data:`CACHE_DECODE_ERRORS` on corruption."""
        payload = read_envelope(path)
        return cls(
            config=_config_from_payload(payload["config"]),
            matrices=[
                matrix_sweep_from_payload(m) for m in payload["matrices"]
            ],
            elapsed_s=payload["elapsed_s"],
            missing=list(payload.get("missing", ())),
        )

    def canonical_json(self) -> str:
        """Deterministic serialization of the sweep *data*.

        Excludes ``elapsed_s`` (volatile wall-clock timing), so two sweeps
        of the same config are byte-identical here regardless of worker
        count or scheduling order.
        """
        payload = {
            "config": asdict(self.config),
            "missing": list(self.missing),
            "matrices": [asdict(m) for m in self.matrices],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def diff_sweep_results(a: SweepResult, b: SweepResult) -> str | None:
    """First field-level divergence between two sweeps, or ``None``.

    The debugging tool behind ``repro sweep --compare-batched``: where
    ``canonical_json`` equality only says *that* two paths diverged, this
    walks matrices and records in order and names the first differing
    field with both values (float fields compared exactly — the contract
    is bit-identity, not closeness).
    """
    if asdict(a.config) != asdict(b.config):
        return f"config: {asdict(a.config)!r} != {asdict(b.config)!r}"
    if list(a.missing) != list(b.missing):
        return f"missing: {a.missing!r} != {b.missing!r}"
    if len(a.matrices) != len(b.matrices):
        return f"matrix count: {len(a.matrices)} != {len(b.matrices)}"
    for ma, mb in zip(a.matrices, b.matrices):
        where = f"matrix {ma.idx} ({ma.name})"
        for fname in ("idx", "name", "domain", "geometry", "special",
                      "nrows", "ncols", "nnz"):
            va, vb = getattr(ma, fname), getattr(mb, fname)
            if va != vb:
                return f"{where}: {fname}: {va!r} != {vb!r}"
        if len(ma.records) != len(mb.records):
            return (
                f"{where}: record count: "
                f"{len(ma.records)} != {len(mb.records)}"
            )
        for k, (ra, rb) in enumerate(zip(ma.records, mb.records)):
            da, db = asdict(ra), asdict(rb)
            if da == db:
                continue
            cell = (
                f"{where}: record {k} "
                f"({ra.kind}/{ra.block}/{ra.impl}/"
                f"{ra.precision}/t{ra.nthreads})"
            )
            for fname in da:
                if da[fname] != db[fname]:
                    return f"{cell}: {fname}: {da[fname]!r} != {db[fname]!r}"
            return f"{cell}: differs"  # pragma: no cover - field loop covers
    return None


def sweep_matrix(
    entry: SuiteEntry,
    config: SweepConfig = SweepConfig(),
    *,
    machine: MachineModel | None = None,
    profile_cache: ProfileCache | None = None,
    simulate_fn: Callable | None = None,
    batch: bool = True,
) -> MatrixSweep:
    """Sweep every candidate over one suite matrix (one engine shard).

    Deterministic in ``(entry, config)``: the record order and every value
    are identical no matter which process or worker runs it — the property
    the engine's parallel path relies on.

    ``batch`` routes the sweep through the whole-matrix array program
    (:class:`repro.machine.batch.MatrixProgram`); ``batch=False`` is the
    per-cell :func:`~repro.core.selection.evaluate_candidates` path.  The
    two are bit-identical (``repro sweep --compare-batched`` diffs them).
    ``simulate_fn`` overrides the execution simulator (the bit-identity
    tests and the benchmark baseline pass
    :func:`repro.machine.executor.simulate_reference`) and forces the
    per-cell path.
    """
    machine = machine if machine is not None else get_preset(config.machine_name)
    profile_cache = profile_cache if profile_cache is not None else ProfileCache()
    candidates = candidate_space(max_block_elems=config.max_block_elems)
    # The multicore experiment drops 1D-VBL, as the paper does ("we have
    # chosen not to implement a multithreaded version of 1D-VBL").
    mt_candidates = tuple(c for c in candidates if c.kind != "vbl")
    if simulate_fn is not None:
        batch = False

    coo = entry.build()
    sweep = MatrixSweep(
        idx=entry.idx,
        name=entry.name,
        domain=entry.domain,
        geometry=entry.geometry,
        special=entry.special,
        nrows=coo.nrows,
        ncols=coo.ncols,
        nnz=coo.nnz,
    )
    timings: dict[str, float] = {}
    sweep._phase_timings = timings
    if batch:
        # One fused planning pass builds every structure, then each
        # (precision, threads) plane is evaluated as one array program.
        from ..machine.batch import MatrixProgram

        program = MatrixProgram(
            coo,
            machine,
            candidates,
            profile_cache=profile_cache,
            timings=timings,
            clock=time.perf_counter,
        )
    fmt_cache: dict = {}
    for precision in config.precisions:
        for nthreads in config.thread_counts:
            single = nthreads == 1
            if batch:
                results = program.evaluate(
                    precision,
                    nthreads,
                    candidates if single else mt_candidates,
                    models=MODEL_NAMES if single else (),
                )
            else:
                results = evaluate_candidates(
                    coo,
                    machine,
                    precision,
                    candidates=candidates if single else mt_candidates,
                    models=MODEL_NAMES if single else (),
                    profile_cache=profile_cache,
                    nthreads=nthreads,
                    fmt_cache=fmt_cache,
                    timings=timings,
                    simulate_fn=simulate_fn,
                )
            for res in results:
                cand = res.candidate
                sweep.records.append(
                    SweepRecord(
                        kind=cand.kind,
                        block=cand.block,
                        impl=cand.impl.value,
                        precision=Precision.coerce(precision).value,
                        nthreads=nthreads,
                        t_real=res.sim.t_total,
                        t_mem=res.sim.t_mem,
                        t_comp=res.sim.t_comp,
                        t_latency=res.sim.t_latency,
                        ws_bytes=res.ws_bytes,
                        padding_ratio=res.padding_ratio,
                        n_blocks=res.n_blocks,
                        predictions=dict(res.predictions),
                    )
                )
    return sweep


def run_sweep(
    entries: Iterable[SuiteEntry] | None = None,
    config: SweepConfig = SweepConfig(),
    *,
    machine: MachineModel | None = None,
    progress: bool = False,
    profile_cache: ProfileCache | None = None,
    simulate_fn: Callable | None = None,
    batch: bool = True,
) -> SweepResult:
    """Run the sweep serially in-process (no caching, no pool).

    This is the reference path the engine's parallel output is tested
    against; production runs go through :func:`load_or_run_sweep`.
    ``entries`` defaults to ``config.entries()``.  ``profile_cache`` lets
    callers share one calibration across runs; ``simulate_fn`` overrides
    the execution simulator and ``batch`` picks the evaluation path (see
    :func:`sweep_matrix`).
    """
    machine = machine if machine is not None else get_preset(config.machine_name)
    if profile_cache is None:
        profile_cache = ProfileCache()

    t_start = time.perf_counter()
    matrices: list[MatrixSweep] = []
    for entry in config.entries() if entries is None else entries:
        t0 = time.perf_counter()
        matrices.append(
            sweep_matrix(
                entry,
                config,
                machine=machine,
                profile_cache=profile_cache,
                simulate_fn=simulate_fn,
                batch=batch,
            )
        )
        if progress:
            print(
                f"[sweep] {entry.idx:2d} {entry.name:15s} "
                f"({time.perf_counter() - t0:5.1f}s)",
                flush=True,
            )
    return SweepResult(
        config=config,
        matrices=matrices,
        elapsed_s=time.perf_counter() - t_start,
    )


def load_or_run_sweep(
    config: SweepConfig = SweepConfig(),
    *,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    progress: bool = False,
    jobs: int | None = 1,
    resume: bool = True,
    run_log: str | Path | None = None,
    profile: bool = False,
    batch: bool = True,
) -> SweepResult:
    """Return the cached sweep for ``config``, running it if absent.

    Cache misses run through the :mod:`repro.engine` worker pool:

    * ``jobs`` — worker processes (``None`` = ``os.cpu_count()``).
    * ``resume`` — reuse per-matrix shards left by an interrupted sweep;
      ``False`` discards them and recomputes everything.
    * ``run_log`` — append machine-readable JSONL engine events here.
    * ``profile`` — print a per-shard and aggregate phase-timing breakdown
      (convert / stats / simulate / models seconds) after the sweep.
    * ``batch`` — evaluate shards through the whole-matrix array program
      (the default; ``False`` is the per-cell escape hatch, bit-identical
      by construction and *not* part of the cache key).

    A corrupt or truncated monolithic cache file is discarded with a
    warning and the sweep re-runs (from its shards, when they survive).
    The monolithic file is only (re)written once the sweep is complete,
    i.e. no shard was quarantined.
    """
    # Opening the cache dir is the natural place to collect orphaned tmp
    # files left by crashed writers (ours or a sibling process's).
    if Path(cache_dir).is_dir():
        remove_stale_tmp_files(cache_dir)
    cache_path = Path(cache_dir) / f"sweep_{config.fingerprint()}.json"
    if cache_path.exists():
        try:
            return SweepResult.load(cache_path)
        except CACHE_DECODE_ERRORS as exc:
            from ..durability.report import quarantine_artifact

            logger.warning(
                "discarding corrupt sweep cache %s (%s: %s); re-running",
                cache_path, type(exc).__name__, exc,
            )
            quarantine_artifact(
                cache_path, cache_dir, owner="sweep", error=exc
            )

    # Imported here, not at module top: the engine is built on top of this
    # module and importing it eagerly would be circular.
    from ..engine.events import JsonlReporter, PhaseReporter, ProgressReporter
    from ..engine.pool import SweepEngine

    reporters = []
    if progress:
        reporters.append(ProgressReporter())
    if profile:
        reporters.append(PhaseReporter())
    log_reporter = None
    if run_log is not None:
        log_reporter = JsonlReporter(run_log)
        reporters.append(log_reporter)
    try:
        result = SweepEngine(
            config,
            cache_dir=cache_dir,
            jobs=jobs,
            resume=resume,
            batch=batch,
            reporters=reporters,
        ).run()
    finally:
        if log_reporter is not None:
            log_reporter.close()
    if not result.missing:
        try:
            result.save(cache_path)
        except CacheWriteError as exc:
            from ..durability.report import report_write_failure

            # The sweep itself succeeded; losing the monolithic cache
            # only costs the next run a shard-level resume.
            report_write_failure(owner="sweep", path=cache_path, error=exc)
    return result
