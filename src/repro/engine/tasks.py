"""Shard planning and the per-shard work function.

A sweep decomposes into one :class:`ShardTask` per suite matrix — the
natural unit: matrices are independent, similar in cost, and each one's
records are already grouped as a :class:`~repro.bench.harness.MatrixSweep`.
Tasks carry only picklable data (the suite index and the config); workers
re-resolve the entry from the suite registry, so the same task can run
in-process or in a forked/spawned worker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bench.harness import MatrixSweep, SweepConfig, sweep_matrix
from ..core.profiling import BlockProfile, ProfileCache
from ..machine.machine import MachineModel
from ..machine.presets import get_preset
from ..matrices.suite import get_entry

__all__ = ["ShardTask", "plan_shards", "run_shard_task"]


@dataclass(frozen=True)
class ShardTask:
    """One unit of sweep work: all candidates on one suite matrix."""

    #: 1-based suite index; doubles as the shard id and ``MatrixSweep.idx``.
    shard_id: int
    #: Suite matrix name (for events and file names only).
    name: str
    config: SweepConfig
    #: Calibrated profiles (one per precision) shipped to the worker so it
    #: can seed its per-process cache instead of recalibrating — the
    #: engine's warm start.  Excluded from equality/hash: two tasks for the
    #: same shard are the same work whether or not profiles ride along
    #: (and ``BlockProfile`` holds dicts, which cannot be hashed anyway).
    profiles: tuple[BlockProfile, ...] = field(
        default=(), compare=False, repr=False
    )
    #: Evaluate through the whole-matrix array program
    #: (:mod:`repro.machine.batch`).  An execution detail, not part of the
    #: work's identity — the two paths are bit-identical — so it is
    #: excluded from equality/hash like ``profiles`` and deliberately kept
    #: out of :class:`SweepConfig` (it must not change the fingerprint).
    batch: bool = field(default=True, compare=False)


def plan_shards(
    config: SweepConfig,
    *,
    profiles: "tuple[BlockProfile, ...]" = (),
    batch: bool = True,
) -> tuple[ShardTask, ...]:
    """Decompose ``config`` into its per-matrix shard tasks, suite order."""
    return tuple(
        ShardTask(
            shard_id=e.idx,
            name=e.name,
            config=config,
            profiles=profiles,
            batch=batch,
        )
        for e in config.entries()
    )


# Per-process caches.  A worker process profiles the machine once per
# precision and reuses it for every shard it executes; under the default
# fork start method children even inherit profiles the parent already has.
_MACHINES: dict[str, MachineModel] = {}
_PROFILE_CACHE = ProfileCache()


def _machine_for(name: str) -> MachineModel:
    if name not in _MACHINES:
        _MACHINES[name] = get_preset(name)
    return _MACHINES[name]


def run_shard_task(task: ShardTask) -> MatrixSweep:
    """Execute one shard: build the matrix and sweep every candidate.

    This is the engine's default task function; tests substitute fault-
    injecting ones.  Must stay importable at module top level so it can be
    pickled into worker processes.
    """
    entry = get_entry(task.shard_id)
    machine = _machine_for(task.config.machine_name)
    for profile in task.profiles:
        _PROFILE_CACHE.seed(machine, profile)
    return sweep_matrix(
        entry,
        task.config,
        machine=machine,
        profile_cache=_PROFILE_CACHE,
        batch=task.batch,
    )
