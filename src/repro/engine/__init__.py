"""Parallel, resumable, fault-tolerant sweep execution.

The engine decomposes a sweep into per-matrix shard tasks (:mod:`.tasks`),
runs them on a worker pool with retry and quarantine (:mod:`.pool`),
persists each completed shard atomically so interrupted sweeps resume
(:mod:`.shards`), and reports progress/metrics through a pluggable event
bus (:mod:`.events`).  See ``docs/engine.md`` for the architecture.
"""

from .events import (
    CollectingReporter,
    EventBus,
    JsonlReporter,
    ProgressReporter,
    Reporter,
)
from .pool import SweepEngine, run_sweep_engine
from .shards import SHARD_SCHEMA, ShardStore
from .tasks import ShardTask, plan_shards, run_shard_task

__all__ = [
    "SweepEngine",
    "run_sweep_engine",
    "ShardTask",
    "plan_shards",
    "run_shard_task",
    "ShardStore",
    "SHARD_SCHEMA",
    "EventBus",
    "Reporter",
    "JsonlReporter",
    "ProgressReporter",
    "CollectingReporter",
]
