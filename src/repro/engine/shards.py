"""Atomic, fingerprinted per-shard persistence.

Completed shards live under ``<cache_dir>/shards/<config_fingerprint>/`` as
``shard_NNN.json``, written via tmp-file + ``os.replace`` so a killed sweep
never leaves a truncated shard behind.  On resume the store is the source
of truth: any shard that loads cleanly (schema and fingerprint match) is
served from disk, anything corrupt is discarded with a warning and simply
recomputed.

Shards that failed repeatedly are *quarantined*: a ``shard_NNN.quarantine``
marker records the final error so an operator can inspect it, while the
sweep itself continues and reports the shard in ``SweepResult.missing``.
A later run re-attempts quarantined shards (the marker is cleared on
success) — quarantine is a per-run verdict, not a permanent blacklist.
"""

from __future__ import annotations

import json
import logging
import shutil
from dataclasses import asdict
from pathlib import Path

from ..bench.harness import (
    DEFAULT_CACHE_DIR,
    MatrixSweep,
    SweepConfig,
    matrix_sweep_from_payload,
)
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    atomic_write_json,
    remove_stale_tmp_files,
)

__all__ = ["ShardStore", "SHARD_SCHEMA"]

logger = logging.getLogger(__name__)

#: Bump when the shard file layout changes (old shards are then ignored).
SHARD_SCHEMA = 1


class ShardStore:
    """Per-config directory of completed shards and quarantine markers."""

    def __init__(
        self,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        config: SweepConfig = SweepConfig(),
    ) -> None:
        self.config = config
        self.fingerprint = config.fingerprint()
        self.root = Path(cache_dir) / "shards" / self.fingerprint
        # A writer killed mid-save leaves a ``*.tmp`` next to its shard;
        # opening the store is the natural point to collect those orphans.
        remove_stale_tmp_files(self.root)

    # ----------------------------- paths ----------------------------- #
    def shard_path(self, shard_id: int) -> Path:
        return self.root / f"shard_{shard_id:03d}.json"

    def quarantine_path(self, shard_id: int) -> Path:
        return self.root / f"shard_{shard_id:03d}.quarantine"

    # ------------------------ completed shards ------------------------ #
    def save(
        self, shard_id: int, matrix: MatrixSweep, *, elapsed_s: float = 0.0
    ) -> None:
        atomic_write_json(self.shard_path(shard_id), {
            "schema": SHARD_SCHEMA,
            "fingerprint": self.fingerprint,
            "shard": shard_id,
            "elapsed_s": elapsed_s,
            "matrix": asdict(matrix),
        })

    def load(self, shard_id: int) -> MatrixSweep | None:
        """The shard's matrix sweep, or ``None`` if absent/corrupt/stale."""
        path = self.shard_path(shard_id)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if (payload["schema"] != SHARD_SCHEMA
                    or payload["fingerprint"] != self.fingerprint):
                raise ValueError("schema or fingerprint mismatch")
            return matrix_sweep_from_payload(payload["matrix"])
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "discarding corrupt shard %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)
            return None

    def completed_ids(self) -> list[int]:
        """Shard ids with a (plausibly valid) completed file, ascending."""
        if not self.root.is_dir():
            return []
        # Zero-padded names sort lexicographically == numerically; sorting
        # the glob itself keeps readdir order out of resume behavior.
        return [
            int(p.stem.split("_")[1])
            for p in sorted(self.root.glob("shard_[0-9][0-9][0-9].json"))
        ]

    def clear(self) -> None:
        """Discard every shard and quarantine marker (``--fresh``)."""
        shutil.rmtree(self.root, ignore_errors=True)

    # --------------------------- quarantine --------------------------- #
    def quarantine(
        self,
        shard_id: int,
        *,
        error: str,
        attempts: int,
        error_type: str | None = None,
    ) -> None:
        """Record a shard's final failure (exception type + message) so an
        operator can diagnose it from the marker alone."""
        atomic_write_json(self.quarantine_path(shard_id), {
            "schema": SHARD_SCHEMA,
            "fingerprint": self.fingerprint,
            "shard": shard_id,
            "error": error,
            "error_type": error_type,
            "attempts": attempts,
        })

    def quarantined_ids(self) -> list[int]:
        if not self.root.is_dir():
            return []
        return [
            int(p.stem.split("_")[1])
            for p in sorted(self.root.glob("shard_[0-9][0-9][0-9].quarantine"))
        ]

    def clear_quarantine(self, shard_id: int) -> None:
        self.quarantine_path(shard_id).unlink(missing_ok=True)
