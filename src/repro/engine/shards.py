"""Atomic, fingerprinted per-shard persistence.

Completed shards live under ``<cache_dir>/shards/<config_fingerprint>/`` as
``shard_NNN.json``, written via tmp-file + ``os.replace`` inside a
checksummed envelope (:func:`repro.ioutils.write_envelope`) so a killed
sweep never leaves a truncated shard behind — and a damaged one is
*detected*.  On resume the store is the source of truth: any shard that
verifies and matches (schema and fingerprint) is served from disk, a
corrupt one is moved to ``<cache_dir>/quarantine/`` (emitting
``cache_corrupt_detected``) and simply recomputed.

Shards that failed repeatedly are *quarantined*: a ``shard_NNN.quarantine``
marker records the final error so an operator can inspect it, while the
sweep itself continues and reports the shard in ``SweepResult.missing``.
A later run re-attempts quarantined shards (the marker is cleared on
success) — quarantine is a per-run verdict, not a permanent blacklist.
"""

from __future__ import annotations

import logging
import shutil
from dataclasses import asdict
from pathlib import Path

from ..bench.harness import (
    DEFAULT_CACHE_DIR,
    MatrixSweep,
    SweepConfig,
    matrix_sweep_from_payload,
)
from ..durability.report import quarantine_artifact, report_write_failure
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    CacheWriteError,
    read_envelope,
    remove_stale_tmp_files,
    write_envelope,
)

__all__ = ["ShardStore", "SHARD_SCHEMA"]

logger = logging.getLogger(__name__)

#: Bump when the shard file layout changes (old shards are then ignored).
SHARD_SCHEMA = 1


class ShardStore:
    """Per-config directory of completed shards and quarantine markers."""

    def __init__(
        self,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        config: SweepConfig = SweepConfig(),
    ) -> None:
        self.config = config
        self.fingerprint = config.fingerprint()
        self.cache_root = Path(cache_dir)
        self.root = self.cache_root / "shards" / self.fingerprint
        # A writer killed mid-save leaves a ``*.tmp`` next to its shard;
        # opening the store is the natural point to collect those orphans.
        remove_stale_tmp_files(self.root)

    # ----------------------------- paths ----------------------------- #
    def shard_path(self, shard_id: int) -> Path:
        return self.root / f"shard_{shard_id:03d}.json"

    def quarantine_path(self, shard_id: int) -> Path:
        return self.root / f"shard_{shard_id:03d}.quarantine"

    # ------------------------ completed shards ------------------------ #
    def save(
        self, shard_id: int, matrix: MatrixSweep, *, elapsed_s: float = 0.0
    ) -> bool:
        """Persist one completed shard; ``False`` when the write failed.

        A failed write (full disk, lost permissions) degrades rather than
        crashes the sweep: the in-memory result is still good, the shard
        is simply recomputed on the next resume.
        """
        path = self.shard_path(shard_id)
        try:
            write_envelope(path, {
                "schema": SHARD_SCHEMA,
                "fingerprint": self.fingerprint,
                "shard": shard_id,
                "elapsed_s": elapsed_s,
                "matrix": asdict(matrix),
            }, schema=SHARD_SCHEMA)
        except CacheWriteError as exc:
            report_write_failure(owner="shards", path=path, error=exc)
            return False
        return True

    def load(self, shard_id: int) -> MatrixSweep | None:
        """The shard's matrix sweep, or ``None`` if absent/corrupt/stale.

        A shard that fails integrity verification is quarantined (the
        evidence survives for ``repro fsck``); one that verifies but
        belongs to another schema or fingerprint is simply discarded.
        """
        path = self.shard_path(shard_id)
        if not path.exists():
            return None
        try:
            payload = read_envelope(path)
        except CACHE_DECODE_ERRORS as exc:
            quarantine_artifact(
                path, self.cache_root, owner="shards", error=exc
            )
            return None
        try:
            if (payload["schema"] != SHARD_SCHEMA
                    or payload["fingerprint"] != self.fingerprint):
                raise ValueError("schema or fingerprint mismatch")
            return matrix_sweep_from_payload(payload["matrix"])
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "discarding stale shard %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            path.unlink(missing_ok=True)
            return None

    def completed_ids(self) -> list[int]:
        """Shard ids with a (plausibly valid) completed file, ascending."""
        if not self.root.is_dir():
            return []
        # Zero-padded names sort lexicographically == numerically; sorting
        # the glob itself keeps readdir order out of resume behavior.
        return [
            int(p.stem.split("_")[1])
            for p in sorted(self.root.glob("shard_[0-9][0-9][0-9].json"))
        ]

    def clear(self) -> None:
        """Discard every shard and quarantine marker (``--fresh``)."""
        shutil.rmtree(self.root, ignore_errors=True)

    # --------------------------- quarantine --------------------------- #
    def quarantine(
        self,
        shard_id: int,
        *,
        error: str,
        attempts: int,
        error_type: str | None = None,
    ) -> None:
        """Record a shard's final failure (exception type + message) so an
        operator can diagnose it from the marker alone."""
        path = self.quarantine_path(shard_id)
        try:
            write_envelope(path, {
                "schema": SHARD_SCHEMA,
                "fingerprint": self.fingerprint,
                "shard": shard_id,
                "error": error,
                "error_type": error_type,
                "attempts": attempts,
            }, schema=SHARD_SCHEMA)
        except CacheWriteError as exc:
            # The marker is diagnostics, not state: the sweep's own
            # result already reports the shard as missing.
            report_write_failure(owner="shards", path=path, error=exc)

    def quarantined_ids(self) -> list[int]:
        if not self.root.is_dir():
            return []
        return [
            int(p.stem.split("_")[1])
            for p in sorted(self.root.glob("shard_[0-9][0-9][0-9].quarantine"))
        ]

    def clear_quarantine(self, shard_id: int) -> None:
        self.quarantine_path(shard_id).unlink(missing_ok=True)
