"""Structured engine events and pluggable reporters.

Every observable step of a sweep — shard submitted, finished, retried,
served from the shard cache, quarantined — is emitted as a flat dict
through one :class:`EventBus`.  Both the human CLI progress line and the
machine-readable JSONL run log are reporters on that same bus, so they can
never drift apart; tests subscribe a :class:`CollectingReporter` to assert
on the exact execution history (e.g. "resume recomputed only shard 27").

Event schema (all events)::

    {"ts": <unix time>, "event": <kind>, ...kind-specific fields}

Kinds and their fields:

========================  ====================================================
``sweep_start``           ``fingerprint, n_shards, jobs, cached, resume``
``shard_cached``          ``shard, matrix`` (served from a completed shard)
``shard_start``           ``shard, matrix, attempt`` (submitted to a worker)
``shard_finish``          ``shard, matrix, attempt, elapsed_s, records``
``shard_retry``           ``shard, matrix, attempt, backoff_s, error``
``shard_quarantined``     ``shard, matrix, attempts, error``
``sweep_finish``          ``fingerprint, elapsed_s, completed, cached,``
                          ``quarantined, records, shards_per_s,``
                          ``records_per_s, worker_utilization, jobs``
========================  ====================================================
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO, Protocol

__all__ = [
    "Reporter",
    "EventBus",
    "JsonlReporter",
    "ProgressReporter",
    "CollectingReporter",
]


class Reporter(Protocol):
    """Anything that consumes engine events."""

    def handle(self, event: dict) -> None: ...


class EventBus:
    """Fans each emitted event out to every subscribed reporter."""

    def __init__(self, reporters: tuple[Reporter, ...] | list = ()) -> None:
        self._reporters: list[Reporter] = list(reporters)

    def subscribe(self, reporter: Reporter) -> None:
        self._reporters.append(reporter)

    def emit(self, kind: str, **fields) -> dict:
        event = {"ts": time.time(), "event": kind, **fields}
        for reporter in self._reporters:
            reporter.handle(event)
        return event


class JsonlReporter:
    """Appends one JSON line per event to ``path`` (the run log)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("a")

    def handle(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class CollectingReporter:
    """Keeps every event in a list; the test-suite's reporter."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def handle(self, event: dict) -> None:
        self.events.append(event)

    def of(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["event"] == kind]


class ProgressReporter:
    """Human-readable one-line-per-event progress (the CLI's reporter)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def _print(self, line: str) -> None:
        print(line, file=self._stream, flush=True)

    def handle(self, event: dict) -> None:
        kind = event["event"]
        if kind == "sweep_start":
            self._print(
                f"[engine] sweep {event['fingerprint']}: "
                f"{event['n_shards']} shards on {event['jobs']} worker(s), "
                f"{event['cached']} already complete"
            )
        elif kind == "shard_cached":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} cached"
            )
        elif kind == "shard_finish":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"done in {event['elapsed_s']:5.1f}s "
                f"({event['records']} records)"
            )
        elif kind == "shard_retry":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"retrying (attempt {event['attempt']}, "
                f"backoff {event['backoff_s']:.1f}s): {event['error']}"
            )
        elif kind == "shard_quarantined":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"QUARANTINED after {event['attempts']} attempts: "
                f"{event['error']}"
            )
        elif kind == "sweep_finish":
            util = 100.0 * event["worker_utilization"]
            self._print(
                f"[engine] sweep finished in {event['elapsed_s']:.1f}s: "
                f"{event['completed']} computed + {event['cached']} cached, "
                f"{event['quarantined']} quarantined "
                f"({event['records_per_s']:.0f} records/s, "
                f"{util:.0f}% worker utilization)"
            )
        # shard_start is deliberately silent: submit-time noise.
