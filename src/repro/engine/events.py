"""Structured engine events and pluggable reporters.

Every observable step of a sweep — shard submitted, finished, retried,
served from the shard cache, quarantined — is emitted as a flat dict
through one :class:`EventBus`.  Both the human CLI progress line and the
machine-readable JSONL run log are reporters on that same bus, so they can
never drift apart; tests subscribe a :class:`CollectingReporter` to assert
on the exact execution history (e.g. "resume recomputed only shard 27").

Event schema (all events)::

    {"ts": <unix time>, "event": <kind>, ...kind-specific fields}

Kinds and their fields:

========================  ====================================================
``sweep_start``           ``fingerprint, n_shards, jobs, cached, resume``
``profile_ready``         ``machine, precision, source, elapsed_s`` (the
                          warm-start calibration; ``source`` is ``memory``,
                          ``disk`` or ``calibrated``)
``shard_cached``          ``shard, matrix`` (served from a completed shard)
``shard_start``           ``shard, matrix, attempt`` (submitted to a worker)
``shard_finish``          ``shard, matrix, attempt, elapsed_s, records,``
                          ``phases`` (phase → seconds breakdown of the
                          worker's busy time: ``convert`` / ``stats`` /
                          ``simulate`` / ``models``; ``None`` when the task
                          function does not report one)
``shard_retry``           ``shard, matrix, attempt, backoff_s, error,``
                          ``error_type`` (``error`` is the exception
                          message, ``error_type`` its class name)
``shard_quarantined``     ``shard, matrix, attempts, error, error_type``
``sweep_finish``          ``fingerprint, elapsed_s, completed, cached,``
                          ``quarantined, records, shards_per_s,``
                          ``records_per_s, worker_utilization, jobs``
========================  ====================================================

The resilience layer (:mod:`repro.resilience`) adds ``fault_injected``,
``breaker_open`` / ``breaker_close``, ``request_shed``,
``request_deadline_exceeded`` and ``drain_begin`` / ``drain_end``; their
fields are declared in :data:`EVENT_SCHEMAS` below and documented in
``docs/resilience.md``.  The fleet layer (:mod:`repro.fleet`) adds
``worker_spawn`` / ``worker_ready`` / ``worker_restart``,
``fleet_drain_begin`` / ``fleet_drain_end`` and ``request_routed``
(documented in ``docs/serving.md``).  The durability layer
(:mod:`repro.durability`) adds ``cache_corrupt_detected`` — a cache
artifact failed verify-on-load and was quarantined — and
``cache_write_failed`` — a cache write hit ``ENOSPC``/``OSError`` and
the owner degraded to memory (documented in ``docs/durability.md``).
The learning layer (:mod:`repro.learn`) adds ``trace_logged``,
``train_begin`` / ``train_end``, ``model_swap`` and ``drift_alarm``
(documented in ``docs/learning.md``).

The same schema is declared machine-readably in :data:`EVENT_SCHEMAS`,
which the ``event-schema`` lint rule (:mod:`repro.analysis`) checks every
``bus.emit`` call site against: a typo'd kind or a missing/undeclared
field fails ``python -m repro lint`` instead of silently producing an
event no reporter understands.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import IO, Protocol

__all__ = [
    "EVENT_SCHEMAS",
    "Reporter",
    "EventBus",
    "JsonlReporter",
    "ProgressReporter",
    "PhaseReporter",
    "CollectingReporter",
]

#: Every event kind the engine may emit, mapped to its exact field set
#: (``ts`` and ``event`` are added by :meth:`EventBus.emit` itself).
#: Checked statically by the ``event-schema`` lint rule — extend this
#: registry first when adding an event kind or field.
EVENT_SCHEMAS: dict[str, frozenset[str]] = {
    "sweep_start": frozenset(
        {"fingerprint", "n_shards", "jobs", "cached", "resume"}
    ),
    "profile_ready": frozenset(
        {"machine", "precision", "source", "elapsed_s"}
    ),
    "shard_cached": frozenset({"shard", "matrix"}),
    "shard_start": frozenset({"shard", "matrix", "attempt"}),
    "shard_finish": frozenset(
        {"shard", "matrix", "attempt", "elapsed_s", "records", "phases"}
    ),
    "shard_retry": frozenset(
        {"shard", "matrix", "attempt", "backoff_s", "error", "error_type"}
    ),
    "shard_quarantined": frozenset(
        {"shard", "matrix", "attempts", "error", "error_type"}
    ),
    "sweep_finish": frozenset({
        "fingerprint", "elapsed_s", "completed", "cached", "quarantined",
        "records", "shards_per_s", "records_per_s", "worker_utilization",
        "jobs",
    }),
    # Resilience events (repro.resilience; see docs/resilience.md).
    "fault_injected": frozenset({"site", "action", "hit", "rule"}),
    "breaker_open": frozenset({"precision", "failures"}),
    "breaker_close": frozenset({"precision"}),
    "request_shed": frozenset({"inflight", "limit"}),
    "request_deadline_exceeded": frozenset({"timeout_s", "elapsed_s"}),
    "drain_begin": frozenset({"inflight"}),
    "drain_end": frozenset({"inflight", "elapsed_s", "clean"}),
    # Fleet events (repro.fleet; see docs/serving.md).
    "worker_spawn": frozenset({"worker_id", "pid", "port"}),
    "worker_ready": frozenset({"worker_id", "port", "elapsed_s"}),
    "worker_restart": frozenset(
        {"worker_id", "restarts", "backoff_s", "reason"}
    ),
    "fleet_drain_begin": frozenset({"workers"}),
    "fleet_drain_end": frozenset({"workers", "clean", "elapsed_s"}),
    "request_routed": frozenset({"shard", "worker_id", "attempt"}),
    # Durability events (repro.durability; see docs/durability.md).
    "cache_corrupt_detected": frozenset(
        {"owner", "path", "error", "error_type", "quarantined"}
    ),
    "cache_write_failed": frozenset({"owner", "path", "error", "error_type"}),
    # Learning events (repro.learn; see docs/learning.md).
    "trace_logged": frozenset({"fingerprint", "mode", "holdout"}),
    "train_begin": frozenset({"trigger", "records"}),
    "train_end": frozenset({"version", "samples", "published", "elapsed_s"}),
    "model_swap": frozenset({"old_version", "new_version"}),
    "drift_alarm": frozenset({"state", "gap", "threshold", "window"}),
}


class Reporter(Protocol):
    """Anything that consumes engine events."""

    def handle(self, event: dict) -> None: ...


class EventBus:
    """Fans each emitted event out to every subscribed reporter."""

    def __init__(self, reporters: tuple[Reporter, ...] | list = ()) -> None:
        self._reporters: list[Reporter] = list(reporters)

    def subscribe(self, reporter: Reporter) -> None:
        self._reporters.append(reporter)

    def emit(self, kind: str, **fields) -> dict:
        event = {"ts": time.time(), "event": kind, **fields}
        for reporter in self._reporters:
            reporter.handle(event)
        return event


class JsonlReporter:
    """Appends one JSON line per event to ``path`` (the run log)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = self.path.open("a")

    def handle(self, event: dict) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class CollectingReporter:
    """Keeps every event in a list; the test-suite's reporter."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def handle(self, event: dict) -> None:
        self.events.append(event)

    def of(self, kind: str) -> list[dict]:
        return [e for e in self.events if e["event"] == kind]


class ProgressReporter:
    """Human-readable one-line-per-event progress (the CLI's reporter)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def _print(self, line: str) -> None:
        print(line, file=self._stream, flush=True)

    def handle(self, event: dict) -> None:
        kind = event["event"]
        if kind == "profile_ready":
            self._print(
                f"[engine] profile {event['precision']} "
                f"({event['source']}, {event['elapsed_s']:.1f}s)"
            )
        elif kind == "sweep_start":
            self._print(
                f"[engine] sweep {event['fingerprint']}: "
                f"{event['n_shards']} shards on {event['jobs']} worker(s), "
                f"{event['cached']} already complete"
            )
        elif kind == "shard_cached":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} cached"
            )
        elif kind == "shard_finish":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"done in {event['elapsed_s']:5.1f}s "
                f"({event['records']} records)"
            )
        elif kind == "shard_retry":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"retrying (attempt {event['attempt']}, "
                f"backoff {event['backoff_s']:.1f}s): "
                f"{event['error_type']}: {event['error']}"
            )
        elif kind == "shard_quarantined":
            self._print(
                f"[engine] {event['shard']:3d} {event['matrix']:15s} "
                f"QUARANTINED after {event['attempts']} attempts: "
                f"{event['error_type']}: {event['error']}"
            )
        elif kind == "sweep_finish":
            util = 100.0 * event["worker_utilization"]
            self._print(
                f"[engine] sweep finished in {event['elapsed_s']:.1f}s: "
                f"{event['completed']} computed + {event['cached']} cached, "
                f"{event['quarantined']} quarantined "
                f"({event['records_per_s']:.0f} records/s, "
                f"{util:.0f}% worker utilization)"
            )
        # shard_start is deliberately silent: submit-time noise.


class PhaseReporter:
    """Per-shard and aggregate phase-timing breakdown (``--profile``).

    Consumes the ``phases`` field of ``shard_finish`` events and prints one
    line per shard plus, at ``sweep_finish``, totals showing where the
    sweep's time went (convert / stats / simulate / models, and the
    residual that none of the instrumented phases account for).
    """

    #: Reporting order; matches ``repro.bench.harness.PHASE_NAMES``.
    PHASES = ("convert", "stats", "simulate", "models")

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self.totals: dict[str, float] = {}
        self._busy_s = 0.0
        self._shards = 0

    def _print(self, line: str) -> None:
        print(line, file=self._stream, flush=True)

    def _format(self, phases: dict) -> str:
        return " ".join(
            f"{name}={phases.get(name, 0.0):6.2f}s" for name in self.PHASES
        )

    def handle(self, event: dict) -> None:
        kind = event["event"]
        if kind == "shard_finish" and event.get("phases"):
            phases = event["phases"]
            self._shards += 1
            self._busy_s += event["elapsed_s"]
            for name, seconds in phases.items():
                self.totals[name] = self.totals.get(name, 0.0) + seconds
            self._print(
                f"[phases] {event['shard']:3d} {event['matrix']:15s} "
                f"{self._format(phases)}"
            )
        elif kind == "sweep_finish" and self._shards:
            accounted = sum(self.totals.values())
            other = max(self._busy_s - accounted, 0.0)
            self._print(
                f"[phases] total over {self._shards} shard(s): "
                f"{self._format(self.totals)} other={other:6.2f}s"
            )
