"""The sweep execution engine: worker pool, retries, resume, assembly.

:class:`SweepEngine` turns a :class:`~repro.bench.harness.SweepConfig` into
a complete (or explicitly partial) :class:`~repro.bench.harness.SweepResult`:

1. **Plan** — decompose the config into per-matrix shard tasks.
2. **Resume** — serve every shard already persisted by an earlier run
   straight from the :class:`~repro.engine.shards.ShardStore`.
3. **Execute** — run the remaining shards on a ``ProcessPoolExecutor``
   (``jobs`` workers; ``jobs=1`` runs inline in-process, which is also the
   hook tests use to inject faulty task functions with local state).
4. **Retry / quarantine** — a failed shard is retried with bounded
   exponential backoff; after ``max_retries`` retries it is quarantined
   and reported in ``SweepResult.missing`` instead of crashing the sweep.
5. **Assemble** — completed shards are stitched together in suite order,
   so the result is record-for-record identical to the serial
   :func:`~repro.bench.harness.run_sweep` regardless of worker count.

Every step is emitted on an :class:`~repro.engine.events.EventBus`.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable

from ..bench.harness import (
    DEFAULT_CACHE_DIR,
    MatrixSweep,
    SweepConfig,
    SweepResult,
)
from ..core.profiling import BlockProfile, ProfileStore
from ..durability.report import set_durability_listener
from ..machine.presets import get_preset
from ..resilience.faults import current_plan, fault_point
from .events import EventBus, Reporter
from .shards import ShardStore
from .tasks import ShardTask, plan_shards, run_shard_task

logger = logging.getLogger(__name__)

__all__ = ["SweepEngine", "run_sweep_engine"]

TaskFn = Callable[[ShardTask], MatrixSweep]


def _timed_task(task_fn: TaskFn, task: ShardTask) -> tuple[MatrixSweep, float]:
    """Run one shard and measure its busy time (executes in the worker)."""
    t0 = time.perf_counter()
    fault_point("engine.pool.task")
    matrix = task_fn(task)
    return matrix, time.perf_counter() - t0


class SweepEngine:
    """Parallel, resumable, fault-tolerant executor for one sweep config."""

    def __init__(
        self,
        config: SweepConfig = SweepConfig(),
        *,
        cache_dir: str | Path = DEFAULT_CACHE_DIR,
        jobs: int | None = 1,
        resume: bool = True,
        max_retries: int = 2,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 2.0,
        task_fn: TaskFn = run_shard_task,
        reporters: tuple[Reporter, ...] | list = (),
        warm_profiles: bool | None = None,
        batch: bool = True,
    ) -> None:
        self.config = config
        # Execution detail carried on the shard tasks (never the config:
        # it must not change the sweep fingerprint or the shard payloads).
        self.batch = batch
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.resume = resume
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.task_fn = task_fn
        self.cache_dir = Path(cache_dir)
        self.store = ShardStore(cache_dir, config)
        self.bus = EventBus(reporters)
        # Chaos wiring: injections from an installed FaultPlan surface as
        # fault_injected events in the run log.  Worker *processes* record
        # injections in their own plan copy; only inline (jobs=1) faults
        # and parent-side sites reach this bus.
        plan = current_plan()
        if plan is not None:
            plan.on_inject = lambda ev: self.bus.emit("fault_injected", **ev)
        # Durability wiring (same last-wins convention): corrupt-cache
        # detections and degraded writes surface on this bus too.
        set_durability_listener(self._emit_durability)
        # Warm-starting only makes sense for the real task function — the
        # fault-injection stubs the tests substitute never calibrate, and
        # paying ~3 s of calibration up front would only slow them down.
        self.warm_profiles = (
            (task_fn is run_shard_task) if warm_profiles is None else warm_profiles
        )

    # ------------------------------------------------------------------ #
    def run(self) -> SweepResult:
        t_start = time.perf_counter()
        tasks = plan_shards(self.config, batch=self.batch)
        if not self.resume:
            self.store.clear()

        completed: dict[int, MatrixSweep] = {}
        if self.resume:
            for task in tasks:
                matrix = self.store.load(task.shard_id)
                if matrix is not None:
                    completed[task.shard_id] = matrix
        n_cached = len(completed)

        self.bus.emit(
            "sweep_start",
            fingerprint=self.store.fingerprint,
            n_shards=len(tasks),
            jobs=self.jobs,
            cached=n_cached,
            resume=self.resume,
        )
        for task in tasks:
            if task.shard_id in completed:
                self.bus.emit(
                    "shard_cached", shard=task.shard_id, matrix=task.name
                )

        pending = [t for t in tasks if t.shard_id not in completed]
        failed: dict[int, str] = {}
        if pending and self.warm_profiles:
            # Only when there is real work: a fully cache-served sweep must
            # not pay the calibration cost.
            profiles = self._load_profiles()
            if profiles:
                pending = [
                    dataclasses.replace(t, profiles=profiles) for t in pending
                ]
        if pending:
            if self.jobs == 1:
                busy_s = self._run_inline(pending, completed, failed)
            else:
                busy_s = self._run_pool(pending, completed, failed)
        else:
            busy_s = 0.0

        elapsed_s = time.perf_counter() - t_start
        matrices = [
            completed[t.shard_id] for t in tasks if t.shard_id in completed
        ]
        n_records = sum(len(m.records) for m in matrices)
        self.bus.emit(
            "sweep_finish",
            fingerprint=self.store.fingerprint,
            elapsed_s=elapsed_s,
            completed=len(completed) - n_cached,
            cached=n_cached,
            quarantined=len(failed),
            records=n_records,
            shards_per_s=len(matrices) / elapsed_s if elapsed_s else 0.0,
            records_per_s=n_records / elapsed_s if elapsed_s else 0.0,
            worker_utilization=(
                busy_s / (self.jobs * elapsed_s) if elapsed_s else 0.0
            ),
            jobs=self.jobs,
        )
        return SweepResult(
            config=self.config,
            matrices=matrices,
            elapsed_s=elapsed_s,
            missing=sorted(failed),
        )

    # --------------------------- internals ---------------------------- #
    def _load_profiles(self) -> tuple[BlockProfile, ...]:
        """Calibrated profiles to warm-start the workers with.

        Served from the on-disk :class:`ProfileStore` when an earlier run
        already calibrated this machine, calibrated once here otherwise —
        either way every worker skips its own per-process calibration.
        Failures fall back to the lazy in-worker path rather than failing
        the sweep.
        """
        try:
            store = ProfileStore(self.cache_dir)
            machine = get_preset(self.config.machine_name)
            profiles = []
            for precision in self.config.precisions:
                t0 = time.perf_counter()
                profile, source = store.get_with_source(machine, precision)
                profiles.append(profile)
                self.bus.emit(
                    "profile_ready",
                    machine=self.config.machine_name,
                    precision=str(precision),
                    source=source,
                    elapsed_s=time.perf_counter() - t0,
                )
            return tuple(profiles)
        except Exception as exc:  # noqa: BLE001 - warm start is best-effort
            logger.warning(
                "profile warm start failed (%s: %s); workers will calibrate "
                "lazily", type(exc).__name__, exc,
            )
            return ()

    def _backoff(self, attempt: int) -> float:
        """Bounded exponential backoff before retry ``attempt``."""
        return min(
            self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 2)
        )

    def _emit_durability(self, info: dict) -> None:
        """Forward durability incidents onto the engine's event bus."""
        if info.get("kind") == "cache_write_failed":
            self.bus.emit(
                "cache_write_failed",
                owner=info.get("owner"),
                path=info.get("path"),
                error=info.get("error"),
                error_type=info.get("error_type"),
            )
        else:
            self.bus.emit(
                "cache_corrupt_detected",
                owner=info.get("owner"),
                path=info.get("path"),
                error=info.get("error"),
                error_type=info.get("error_type"),
                quarantined=info.get("quarantined"),
            )

    def _record_success(
        self,
        task: ShardTask,
        matrix: MatrixSweep,
        busy: float,
        attempt: int,
        completed: dict[int, MatrixSweep],
    ) -> None:
        # A failed save already degraded inside the store (the event is on
        # this bus); the in-memory result below is what the sweep returns.
        self.store.save(task.shard_id, matrix, elapsed_s=busy)
        self.store.clear_quarantine(task.shard_id)
        completed[task.shard_id] = matrix
        # The worker attaches its phase breakdown as a non-field attribute;
        # it survives the pickle back from the pool but not the shard cache.
        phases = getattr(matrix, "_phase_timings", None)
        self.bus.emit(
            "shard_finish",
            shard=task.shard_id,
            matrix=task.name,
            attempt=attempt,
            elapsed_s=busy,
            records=len(matrix.records),
            phases={k: round(v, 6) for k, v in phases.items()}
            if phases
            else None,
        )

    def _record_failure(
        self,
        task: ShardTask,
        exc: Exception,
        attempt: int,
        failed: dict[int, str],
    ) -> bool:
        """Handle one failed attempt; return True if the shard may retry.

        The exception's class name and message travel separately through
        the event bus and the quarantine marker, so a quarantined shard is
        diagnosable from the JSONL run log alone (``error_type`` +
        ``error``), without re-running the shard under a debugger.
        """
        error_type = type(exc).__name__
        error = str(exc)
        if attempt <= self.max_retries:
            backoff = self._backoff(attempt + 1)
            self.bus.emit(
                "shard_retry",
                shard=task.shard_id,
                matrix=task.name,
                attempt=attempt + 1,
                backoff_s=backoff,
                error=error,
                error_type=error_type,
            )
            time.sleep(backoff)
            return True
        self.store.quarantine(
            task.shard_id,
            error=error,
            error_type=error_type,
            attempts=attempt,
        )
        failed[task.shard_id] = f"{error_type}: {error}"
        self.bus.emit(
            "shard_quarantined",
            shard=task.shard_id,
            matrix=task.name,
            attempts=attempt,
            error=error,
            error_type=error_type,
        )
        return False

    def _run_inline(
        self,
        pending: list[ShardTask],
        completed: dict[int, MatrixSweep],
        failed: dict[int, str],
    ) -> float:
        busy_s = 0.0
        for task in pending:
            attempt = 1
            while True:
                self.bus.emit(
                    "shard_start",
                    shard=task.shard_id,
                    matrix=task.name,
                    attempt=attempt,
                )
                try:
                    matrix, busy = _timed_task(self.task_fn, task)
                except Exception as exc:  # noqa: BLE001 - shard faults are data
                    if self._record_failure(task, exc, attempt, failed):
                        attempt += 1
                        continue
                    break
                busy_s += busy
                self._record_success(task, matrix, busy, attempt, completed)
                break
        return busy_s

    def _run_pool(
        self,
        pending: list[ShardTask],
        completed: dict[int, MatrixSweep],
        failed: dict[int, str],
    ) -> float:
        busy_s = 0.0
        attempts = {t.shard_id: 1 for t in pending}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            def submit(task: ShardTask) -> None:
                self.bus.emit(
                    "shard_start",
                    shard=task.shard_id,
                    matrix=task.name,
                    attempt=attempts[task.shard_id],
                )
                futures[pool.submit(_timed_task, self.task_fn, task)] = task

            futures: dict[Future, ShardTask] = {}
            for task in pending:
                submit(task)
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    task = futures.pop(future)
                    attempt = attempts[task.shard_id]
                    try:
                        matrix, busy = future.result()
                    except Exception as exc:  # noqa: BLE001
                        if self._record_failure(task, exc, attempt, failed):
                            attempts[task.shard_id] = attempt + 1
                            submit(task)
                        continue
                    busy_s += busy
                    self._record_success(
                        task, matrix, busy, attempt, completed
                    )
        return busy_s


def run_sweep_engine(config: SweepConfig = SweepConfig(), **kwargs) -> SweepResult:
    """One-call convenience wrapper: ``SweepEngine(config, **kwargs).run()``."""
    return SweepEngine(config, **kwargs).run()
