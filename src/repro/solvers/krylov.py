"""Iterative Krylov solvers built on the tuned SpMV formats.

SpMV is "one of the most important and widely used scientific kernels"
because it dominates iterative solvers (paper Section I).  This module
provides the solvers a downstream user actually runs on top of the tuned
formats: Conjugate Gradient for SPD systems, BiCGSTAB for general ones,
plus the stationary Jacobi method and power iteration.  Every solver takes
*any* :class:`~repro.formats.base.SparseFormat` — the format produced by
the :class:`~repro.core.selection.AutoTuner` plugs straight in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeMismatchError
from ..formats.base import SparseFormat

__all__ = ["SolveResult", "cg", "bicgstab", "jacobi", "power_iteration"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    #: Total SpMV applications performed (the cost the paper's models price).
    spmv_count: int


def _check_square(A: SparseFormat, b: np.ndarray) -> np.ndarray:
    if A.nrows != A.ncols:
        raise ShapeMismatchError(
            f"iterative solvers need a square matrix, got {A.shape}"
        )
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (A.nrows,):
        raise ShapeMismatchError(
            f"b has shape {b.shape}, expected ({A.nrows},)"
        )
    return b


def cg(
    A: SparseFormat,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolveResult:
    """Conjugate Gradient for symmetric positive-definite ``A``.

    Each iteration costs exactly one SpMV — the kernel whose format choice
    the paper's models optimise.
    """
    b = _check_square(A, b)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - A.spmv(x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    if np.sqrt(rs_old) / b_norm < tol:
        return SolveResult(x, 0, float(np.sqrt(rs_old)), True, 1)
    spmv_count = 1
    for k in range(1, max_iter + 1):
        Ap = A.spmv(p)
        spmv_count += 1
        denom = float(p @ Ap)
        if denom == 0.0:
            break
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        if np.sqrt(rs_new) / b_norm < tol:
            return SolveResult(x, k, np.sqrt(rs_new), True, spmv_count)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return SolveResult(x, max_iter, float(np.linalg.norm(r)), False, spmv_count)


def bicgstab(
    A: SparseFormat,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
) -> SolveResult:
    """Stabilised Bi-Conjugate Gradient for general square ``A``.

    Two SpMVs per iteration.
    """
    b = _check_square(A, b)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - A.spmv(x)
    b_norm0 = float(np.linalg.norm(b)) or 1.0
    if float(np.linalg.norm(r)) / b_norm0 < tol:
        return SolveResult(x, 0, float(np.linalg.norm(r)), True, 1)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    b_norm = float(np.linalg.norm(b)) or 1.0
    spmv_count = 1
    for k in range(1, max_iter + 1):
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            break
        if k == 1:
            p = r.copy()
        else:
            beta = (rho_new / rho) * (alpha / omega)
            p = r + beta * (p - omega * v)
        v = A.spmv(p)
        spmv_count += 1
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm / b_norm < tol:
            x += alpha * p
            return SolveResult(x, k, s_norm, True, spmv_count)
        t = A.spmv(s)
        spmv_count += 1
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        r_norm = float(np.linalg.norm(r))
        if r_norm / b_norm < tol:
            return SolveResult(x, k, r_norm, True, spmv_count)
        if omega == 0.0:
            break
        rho = rho_new
    return SolveResult(x, max_iter, float(np.linalg.norm(r)), False, spmv_count)


def jacobi(
    A: SparseFormat,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 5000,
) -> SolveResult:
    """Jacobi iteration for diagonally dominant ``A``.

    Uses the splitting ``A = D + R``: ``x <- D^-1 (b - R x)``, computed as
    ``D^-1 (b - A x + D x)`` so any storage format works unmodified.
    """
    b = _check_square(A, b)
    diag = A.diagonal()
    if np.any(diag == 0.0):
        raise ShapeMismatchError("Jacobi needs a zero-free diagonal")
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    b_norm = float(np.linalg.norm(b)) or 1.0
    spmv_count = 0
    for k in range(1, max_iter + 1):
        Ax = A.spmv(x)
        spmv_count += 1
        r_norm = float(np.linalg.norm(b - Ax))
        if r_norm / b_norm < tol:
            return SolveResult(x, k - 1, r_norm, True, spmv_count)
        x = (b - Ax + diag * x) / diag
    r_norm = float(np.linalg.norm(b - A.spmv(x)))
    return SolveResult(x, max_iter, r_norm, False, spmv_count + 1)


def power_iteration(
    A: SparseFormat,
    *,
    tol: float = 1e-10,
    max_iter: int = 2000,
    seed: int = 0,
) -> tuple[float, np.ndarray, int]:
    """Dominant eigenvalue/eigenvector of square ``A`` by power iteration.

    Returns ``(eigenvalue, eigenvector, iterations)``.
    """
    if A.nrows != A.ncols:
        raise ShapeMismatchError("power iteration needs a square matrix")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(A.ncols)
    v /= np.linalg.norm(v)
    lam = 0.0
    for k in range(1, max_iter + 1):
        w = A.spmv(v)
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            return 0.0, v, k
        v_new = w / norm
        lam_new = float(v_new @ A.spmv(v_new))
        if abs(lam_new - lam) < tol * max(abs(lam_new), 1.0):
            return lam_new, v_new, k
        v, lam = v_new, lam_new
    return lam, v, max_iter
