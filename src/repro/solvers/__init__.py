"""Iterative solvers on top of the tuned SpMV formats.

The paper motivates SpMV through the iterative methods that spend most of
their time in it; this package provides those methods so a tuned format is
immediately usable: CG, BiCGSTAB, Jacobi, and power iteration.
"""

from .krylov import SolveResult, bicgstab, cg, jacobi, power_iteration

__all__ = ["SolveResult", "cg", "bicgstab", "jacobi", "power_iteration"]
