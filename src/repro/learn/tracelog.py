"""Per-request JSONL trace of the advisor — the training set on disk.

Every ``/advise`` request a learn-enabled service answers appends one JSON
record under ``<cache_dir>/learn/``: the derived feature vector, the chosen
(format, block, implementation), the serving mode, the model version that
influenced the answer, and the matrix fingerprint.  The background trainer
(:mod:`repro.learn.trainer`) refits the learned selector from exactly these
records, so training and serving see the same features by construction.

Appends are **buffered**: records accumulate in memory and reach disk in
batches of ``flush_records`` (one ``open`` + one ``write`` per batch via
:func:`repro.ioutils.append_jsonl_lines`), keeping the per-request cost on
the serving hot path to a dict append.  Every read path
(:meth:`TraceLog.records`, :meth:`record_count`) and :meth:`flush` drains
the buffer first, so the trainer always sees the full trace.  This is a
training log, not a datastore — a hard crash loses at most the buffered
tail, and readers skip torn lines rather than failing.

The on-disk log is **bounded**: records go to numbered segments
(``trace-00000.jsonl``, ``trace-00001.jsonl``, ...) that roll over at
``max_segment_bytes``, and only the newest ``max_segments`` segments are
kept — a long-running fleet cannot grow the cache dir without limit.
Stale ``*.tmp`` files from cache owners that crashed mid-write in the
same directory are swept on open, like every other ``.repro_cache``
owner.

Determinism contract: the ``ts`` and ``elapsed_s`` fields are the only
wall-clock-dependent parts of a record; :func:`canonical_record` strips
them, and same-seed traffic produces byte-identical canonical records
(pinned by ``tests/test_learn.py``).
"""

from __future__ import annotations

import json
import logging
import threading
import time
from pathlib import Path
from typing import Iterator

from ..durability.envelope import encode_line
from ..durability.report import report_corruption, report_write_failure
from ..ioutils import (
    CacheWriteError,
    append_jsonl_lines,
    read_envelope_lines,
    remove_stale_tmp_files,
)

__all__ = [
    "TRACE_SCHEMA",
    "TraceLog",
    "canonical_record",
]

logger = logging.getLogger(__name__)

#: Bump when the trace record layout changes (old records are then skipped
#: by the trainer rather than misread).
TRACE_SCHEMA = 1

#: Segment-file name layout: ``trace-<5-digit index>.jsonl``.
_SEGMENT_PREFIX = "trace-"
_SEGMENT_SUFFIX = ".jsonl"

#: Record fields that depend on the wall clock; everything else must be a
#: pure function of (matrix, options, profile, model version).
TIMING_FIELDS = ("ts", "elapsed_s")


def canonical_record(record: dict) -> dict:
    """The record minus its timing fields — the byte-comparable part."""
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


class TraceLog:
    """Bounded, segmented JSONL request trace under ``<cache_dir>/learn/``."""

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        max_segment_bytes: int = 1_000_000,
        max_segments: int = 4,
        flush_records: int = 128,
    ) -> None:
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        if max_segments < 1:
            raise ValueError(f"max_segments must be >= 1, got {max_segments}")
        if flush_records < 1:
            raise ValueError(f"flush_records must be >= 1, got {flush_records}")
        self.root = Path(cache_dir) / "learn"
        self.max_segment_bytes = max_segment_bytes
        self.max_segments = max_segments
        self.flush_records = flush_records
        # Collect tmp files orphaned by cache writers killed mid-save (the
        # model registry shares this directory tree).
        remove_stale_tmp_files(self.root)
        self._lock = threading.Lock()
        self._records_logged = 0
        self._buffer: list[dict] = []
        # Active-segment bookkeeping, refreshed from disk once here and
        # maintained in memory after (no directory scan per request).
        segments = self.segments()
        if segments:
            self._active = segments[-1]
            try:
                self._active_size = self._active.stat().st_size
            except OSError:
                self._active_size = 0
        else:
            self._active = self._segment_path(0)
            self._active_size = 0

    # ------------------------------ layout ------------------------------ #
    def segments(self) -> list[Path]:
        """Every flushed segment file, oldest first (sorted — deterministic)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}"))

    @staticmethod
    def _segment_index(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return -1

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"

    # ------------------------------ append ------------------------------ #
    def append(self, record: dict) -> Path:
        """Buffer one record (stamped with ``schema`` and ``ts``).

        The record reaches disk with the next batch flush (every
        ``flush_records`` appends, or any explicit/read-path
        :meth:`flush`).  Thread-safe; returns the segment the record will
        land in when the buffer flushes.
        """
        stamped = {"schema": TRACE_SCHEMA, "ts": time.time(), **record}
        with self._lock:
            self._buffer.append(stamped)
            self._records_logged += 1
            if len(self._buffer) >= self.flush_records:
                self._active, self._active_size = self._drain(
                    self._buffer, self._active, self._active_size
                )
                self._buffer = []
            return self._active

    def flush(self) -> None:
        """Write every buffered record to disk now."""
        with self._lock:
            self._active, self._active_size = self._drain(
                self._buffer, self._active, self._active_size
            )
            self._buffer = []

    def _drain(
        self, buffer: list[dict], active: Path, active_size: int
    ) -> tuple[Path, int]:
        """Write ``buffer`` into segments, rolling and pruning.

        Pure state-in/state-out over ``(active, active_size)`` — callers
        hold the lock and commit the returned state.  Consecutive records
        destined for the same segment go down in one ``open`` + ``write``
        (:func:`append_jsonl_many`), so the flush cost is amortized over
        the whole batch.
        """
        if not buffer:
            return active, active_size
        batch: list[str] = []
        for record in buffer:
            if active_size >= self.max_segment_bytes:
                if batch:
                    self._write_batch(active, batch)
                    batch = []
                active = self._segment_path(self._segment_index(active) + 1)
                active_size = 0
            # Serialize once: the same enveloped line feeds the size
            # accounting and the write, so rollover points stay
            # independent of batch boundaries and the flush never
            # double-dumps a record.  The CRC wrapper lets readers
            # *detect* a torn append instead of trusting whatever parses.
            line = encode_line(json.dumps(record, sort_keys=True))
            batch.append(line)
            active_size += len(line.encode("utf-8")) + 1
        if batch:
            self._write_batch(active, batch)
        # Bound the directory: drop the oldest segments past the cap.
        for stale in self.segments()[: -self.max_segments]:
            try:
                stale.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - racing cleanup
                continue
        return active, active_size

    @staticmethod
    def _write_batch(active: Path, batch: list[str]) -> None:
        """One append; a failed write drops the batch (this is a log —
        losing a training tail beats crashing the serving hot path)."""
        try:
            append_jsonl_lines(active, batch)
        except CacheWriteError as exc:
            report_write_failure(owner="learn-trace", path=active, error=exc)

    @property
    def records_logged(self) -> int:
        """Records appended *by this process* (buffered ones included)."""
        with self._lock:
            return self._records_logged

    # ------------------------------ read ------------------------------- #
    def records(self) -> Iterator[dict]:
        """Every parseable record, oldest segment first (flushes first).

        Corrupt lines (a torn append from a hard crash, a hand-edited file)
        and records of a different schema are skipped with a warning — the
        trainer must never die on a bad log line.
        """
        self.flush()
        for segment in self.segments():
            try:
                lines = list(read_envelope_lines(segment))
            except OSError:
                continue  # pruned underneath us
            for lineno, record, error in lines:
                if error is not None:
                    report_corruption(
                        owner="learn-trace",
                        path=f"{segment}:{lineno}",
                        error=error,
                        quarantined=False,
                    )
                    continue
                if (
                    not isinstance(record, dict)
                    or record.get("schema") != TRACE_SCHEMA
                ):
                    logger.warning(
                        "skipping trace line %s:%d (schema mismatch)",
                        segment, lineno,
                    )
                    continue
                yield record

    def record_count(self) -> int:
        """Parseable records currently on disk plus the buffered tail."""
        return sum(1 for _ in self.records())

    def clear(self) -> None:
        """Delete every segment (tests and fresh starts)."""
        with self._lock:
            self._buffer = []
            for segment in self.segments():
                segment.unlink(missing_ok=True)
            self._active = self._segment_path(0)
            self._active_size = 0
