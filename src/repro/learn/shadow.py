"""Shadow evaluation of the learned selector, with a drift alarm.

Every non-guided request the learn runtime sees also runs the learned
tree *in shadow*: predict the format kind from the request's features and
compare it with the kind the OVERLAP model actually chose.  The
**held-out split** — a deterministic slice of matrix fingerprints
(:func:`is_holdout`) that is always served by the analytic model and
never steers it — accumulates a rolling *selection-agreement gap*
(``1 - agreement``) that ``GET /stats`` exposes and
:func:`repro.fleet.balancer.merge_stats` fans in across a fleet.

When the rolling gap degrades past the configured threshold, a dedicated
:class:`~repro.resilience.guard.CircuitBreaker` trips (``drift_alarm``
event): guided serving is suspended and the service **falls back to pure
model-based selection** until the gap recovers.  Recovery is data-driven:
holdout requests keep flowing (they never depended on the model), so a
healthy gap closes the breaker again — the reset timeout only bounds how
long a trip suppresses re-trip event noise.  The breaker clock is
injectable through :class:`~repro.resilience.guard.BreakerConfig`, so
tests drive the whole trip/recover cycle on a fake clock.
"""

from __future__ import annotations

import threading
from collections import deque

from ..resilience.guard import BreakerConfig, CircuitBreaker

__all__ = [
    "is_holdout",
    "ShadowEvaluator",
    "DEFAULT_DRIFT_BREAKER",
]

#: Drift-breaker defaults: two consecutive over-threshold windows trip it;
#: the long reset timeout exists only to let a stale trip re-probe — the
#: normal close path is a recovered gap, not a timer.
DEFAULT_DRIFT_BREAKER = BreakerConfig(
    failure_threshold=2, reset_timeout_s=300.0
)


def is_holdout(fingerprint: str, mod: int) -> bool:
    """Deterministic held-out split: 1-in-``mod`` matrix fingerprints.

    The fingerprint is a hex content hash, so the split is stable across
    restarts, processes and fleet workers — every worker agrees on which
    matrices are held out.  ``mod <= 1`` holds out everything (useful in
    tests); the advisor default is 8 (12.5% of distinct matrices).
    """
    if mod <= 1:
        return True
    return int(fingerprint, 16) % mod == 0


class ShadowEvaluator:
    """Rolling agreement window + drift breaker (thread-safe)."""

    def __init__(
        self,
        *,
        threshold: float = 0.5,
        window: int = 32,
        min_window: int = 8,
        breaker_config: BreakerConfig | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if min_window < 1 or window < min_window:
            raise ValueError(
                f"need 1 <= min_window <= window, got "
                f"min_window={min_window} window={window}"
            )
        self.threshold = threshold
        self.window = window
        self.min_window = min_window
        self.breaker = CircuitBreaker(
            breaker_config
            if breaker_config is not None
            else DEFAULT_DRIFT_BREAKER
        )
        self._lock = threading.Lock()
        self._recent: deque[bool] = deque(maxlen=window)
        self._observed = 0
        self._agreed = 0
        self._holdout_observed = 0
        self._holdout_agreed = 0

    # ----------------------------- observe ----------------------------- #
    def observe(
        self, agree: bool, *, holdout: bool
    ) -> tuple[str | None, float | None]:
        """Record one shadow comparison.

        Only holdout observations enter the rolling window and drive the
        breaker (their baseline choice is provably model-made).  Returns
        ``(transition, gap)``: ``transition`` is ``"open"`` / ``"close"`` /
        ``None`` (the caller emits the ``drift_alarm`` event), ``gap`` is
        the rolling gap once the window has ``min_window`` samples.
        """
        with self._lock:
            self._observed += 1
            if agree:
                self._agreed += 1
            if not holdout:
                return (None, None)
            self._holdout_observed += 1
            if agree:
                self._holdout_agreed += 1
            self._recent.append(bool(agree))
            if len(self._recent) < self.min_window:
                return (None, None)
            gap = 1.0 - sum(self._recent) / len(self._recent)
        if gap > self.threshold:
            if self.breaker.state == CircuitBreaker.HALF_OPEN:
                # Claim the half-open probe so this failure re-opens the
                # breaker (and refreshes its timeout) instead of leaving it
                # half-open forever on a still-bad gap.
                self.breaker.allow()
            return (self.breaker.record_failure(), gap)
        return (self.breaker.record_success(), gap)

    # ------------------------------ state ------------------------------ #
    @property
    def active(self) -> bool:
        """May guided serving use the learned model right now?

        False exactly while the drift breaker is open; half-open counts as
        active (the probe that either closes or re-trips it).
        """
        return self.breaker.state != CircuitBreaker.OPEN

    def gap(self) -> float | None:
        """The rolling holdout gap, or ``None`` before ``min_window``."""
        with self._lock:
            if len(self._recent) < self.min_window:
                return None
            return 1.0 - sum(self._recent) / len(self._recent)

    def snapshot(self) -> dict:
        """State for ``GET /stats`` (fans in via ``merge_stats``)."""
        with self._lock:
            recent = len(self._recent)
            gap = (
                1.0 - sum(self._recent) / recent
                if recent >= self.min_window
                else None
            )
            snap = {
                "observed": self._observed,
                "agreed": self._agreed,
                "holdout_observed": self._holdout_observed,
                "holdout_agreed": self._holdout_agreed,
                "window": recent,
                "gap": gap,
            }
        snap["threshold"] = self.threshold
        return snap
