"""Background refits of the learned selector from the request trace.

:func:`train_once` is the whole training step, shared by the in-process
:class:`Trainer` thread (``serve --learn --train-interval N``) and the
offline ``repro train`` CLI: read the trace, keep the **model-made**
records (modes ``baseline`` and ``holdout`` — answers a published learned
model steered are excluded, so the model never trains on its own output),
fit a :class:`~repro.core.learned.DecisionTree` on (feature vector,
chosen format kind) pairs, and publish it through the
:class:`~repro.learn.registry.ModelRegistry`.

Training is deterministic: the tree fit is seed-free (exhaustive CART
splits), records are read in segment order, and the published version is
a content token — the same trace always yields the same version.
``train_begin`` / ``train_end`` events bracket every attempt (including
"not enough samples" no-ops, with ``published: false``).
"""

from __future__ import annotations

import logging
import threading
import time

import numpy as np

from ..core.learned import DecisionTree
from ..engine.events import EventBus
from ..errors import CacheWriteError, ModelError
from .registry import ModelRegistry
from .tracelog import TraceLog

__all__ = [
    "TRAINABLE_MODES",
    "fit_from_records",
    "train_once",
    "Trainer",
]

logger = logging.getLogger(__name__)

#: Modes whose chosen kind is a pure OVERLAP/MEM-model decision; ``guided``
#: answers are excluded to keep the learned model out of its own training
#: set (no feedback loop).
TRAINABLE_MODES = ("baseline", "holdout", "fallback")

#: Below this many eligible records a training attempt is a no-op.
DEFAULT_MIN_SAMPLES = 8


def fit_from_records(
    records,
    *,
    max_depth: int = 4,
    min_samples_leaf: int = 2,
    min_samples: int = DEFAULT_MIN_SAMPLES,
) -> tuple[DecisionTree, int] | None:
    """Fit a tree on the eligible records; ``None`` when too few.

    Eligible records carry a feature vector and a model-made choice (see
    :data:`TRAINABLE_MODES`).  Returns ``(fitted tree, sample count)``.
    """
    X: list[list[float]] = []
    y: list[str] = []
    for record in records:
        features = record.get("features")
        chosen = record.get("chosen")
        if (
            record.get("mode") in TRAINABLE_MODES
            and isinstance(features, list)
            and features
            and isinstance(chosen, dict)
            and chosen.get("kind")
        ):
            X.append([float(v) for v in features])
            y.append(str(chosen["kind"]))
    if len(X) < min_samples:
        return None
    tree = DecisionTree(
        max_depth=max_depth, min_samples_leaf=min_samples_leaf
    )
    tree.fit(np.asarray(X, dtype=np.float64), y)
    return tree, len(X)


def train_once(
    tracelog: TraceLog,
    registry: ModelRegistry,
    *,
    bus: EventBus | None = None,
    trigger: str = "cli",
    min_samples: int = DEFAULT_MIN_SAMPLES,
    max_depth: int = 4,
    min_samples_leaf: int = 2,
) -> dict:
    """One full training step: trace -> fit -> versioned publish.

    Returns a summary dict (``published``, ``version``, ``samples``,
    ``records``, ``elapsed_s``).  A publish of an unchanged tree reuses
    the existing content-token version (idempotent).
    """
    t0 = time.perf_counter()
    records = list(tracelog.records())
    if bus is not None:
        bus.emit("train_begin", trigger=trigger, records=len(records))
    version: str | None = None
    samples = 0
    published = False
    try:
        fitted = fit_from_records(
            records,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            min_samples=min_samples,
        )
        if fitted is not None:
            tree, samples = fitted
            version = registry.publish(
                tree.to_payload(),
                meta={"samples": samples, "trigger": trigger},
            )
            published = True
    except ModelError as exc:
        # A degenerate trace (e.g. every label identical after filtering
        # corrupt rows) must not kill the trainer thread.
        logger.warning("training failed (%s: %s)", type(exc).__name__, exc)
    except CacheWriteError as exc:
        # The fit succeeded but the disk refused the artifact: report
        # "not published" and keep serving the old model — the next
        # trigger retries the publish with a fresh fit.
        version = None
        published = False
        logger.warning("model publish failed (%s)", exc)
    elapsed = time.perf_counter() - t0
    if bus is not None:
        bus.emit(
            "train_end",
            version=version,
            samples=samples,
            published=published,
            elapsed_s=round(elapsed, 6),
        )
    return {
        "published": published,
        "version": version,
        "samples": samples,
        "records": len(records),
        "elapsed_s": elapsed,
    }


class Trainer:
    """Periodic in-process trainer thread for ``serve --learn``.

    Refits only when the trace grew since the last attempt (cheap idle
    polls), and invokes ``on_publish`` after every successful publish so
    the owning runtime can hot-swap immediately instead of waiting for
    the next request's registry poll.
    """

    def __init__(
        self,
        tracelog: TraceLog,
        registry: ModelRegistry,
        *,
        interval_s: float = 30.0,
        min_samples: int = DEFAULT_MIN_SAMPLES,
        bus: EventBus | None = None,
        on_publish=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.tracelog = tracelog
        self.registry = registry
        self.interval_s = interval_s
        self.min_samples = min_samples
        self.bus = bus
        self.on_publish = on_publish
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._trained_at_count = -1
        self._cycles = 0
        self._publishes = 0

    # ---------------------------- lifecycle ----------------------------- #
    def start(self) -> "Trainer":
        if self._thread is not None:
            raise RuntimeError("trainer already started")
        self._thread = threading.Thread(
            target=self._run, name="learn-trainer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout_s: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout_s)

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    # ------------------------------ loop -------------------------------- #
    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.train_if_grown(trigger="interval")

    def train_if_grown(self, *, trigger: str = "interval") -> dict | None:
        """Run a training step iff this process logged new records."""
        logged = self.tracelog.records_logged
        with self._lock:
            if logged <= self._trained_at_count:
                return None
            self._trained_at_count = logged
        summary = train_once(
            self.tracelog,
            self.registry,
            bus=self.bus,
            trigger=trigger,
            min_samples=self.min_samples,
        )
        with self._lock:
            self._cycles += 1
            if summary["published"]:
                self._publishes += 1
        if summary["published"] and self.on_publish is not None:
            self.on_publish()
        return summary

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "running": self.running,
                "interval_s": self.interval_s,
                "cycles": self._cycles,
                "publishes": self._publishes,
            }
