"""Versioned model artifacts and lock-disciplined hot-swap.

The trainer publishes a fitted :class:`~repro.core.learned.DecisionTree`
as a **content-token-versioned** artifact under
``<cache_dir>/learn/models/`` — the same versioning discipline as
:class:`~repro.core.profiling.ProfileStore`: the version is a SHA-256
prefix of the canonical JSON payload, so identical training outcomes get
identical versions (re-publishing is a no-op) and any change to the tree
yields a new version with no manual bookkeeping.

Publication is a two-file atomic dance: the immutable artifact
(``model_<version>.json``) lands first, then the ``current.json`` pointer
is atomically replaced — a reader never observes a pointer to a
half-written artifact.

:class:`ModelRegistry` is the serving side: :meth:`reload` polls the
pointer (an ``mtime``/size signature makes the common no-change case one
``stat``) and swaps the in-memory tree under a lock.  In-flight requests
keep the ``(tree, version)`` snapshot they took via :meth:`current`, so a
swap never changes an answer mid-request — that is the hot-swap contract
``serve --learn`` relies on to pick up new models without a restart.
"""

from __future__ import annotations

import json
import logging
import threading
from hashlib import sha256
from pathlib import Path

from ..core.learned import DecisionTree
from ..durability.report import quarantine_artifact, report_write_failure
from ..ioutils import (
    CACHE_DECODE_ERRORS,
    CacheWriteError,
    read_envelope,
    remove_stale_tmp_files,
    write_envelope,
)

__all__ = [
    "MODEL_SCHEMA",
    "model_token",
    "ModelRegistry",
]

logger = logging.getLogger(__name__)

#: Bump when the artifact layout changes (old artifacts are then ignored).
MODEL_SCHEMA = 1


def model_token(payload: dict) -> str:
    """Content hash of a serialized tree — the model's version string."""
    return sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:16]


class ModelRegistry:
    """Read/write access to the versioned model store for one cache dir."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_root = Path(cache_dir)
        self.root = self.cache_root / "learn" / "models"
        remove_stale_tmp_files(self.root)
        self._lock = threading.Lock()
        self._tree: DecisionTree | None = None
        self._version: str | None = None
        self._pointer_sig: tuple[int, int] | None = None

    # ----------------------------- publish ----------------------------- #
    def publish(self, tree_payload: dict, *, meta: dict | None = None) -> str:
        """Write a versioned artifact and atomically repoint ``current``.

        Returns the content-token version.  Publishing the same payload
        twice is idempotent (same version, pointer rewritten atomically).
        Raises :class:`~repro.errors.CacheWriteError` when the disk
        refuses either file — the trainer treats that as "not published"
        and the old model keeps serving.
        """
        version = model_token(tree_payload)
        artifact = {
            "schema": MODEL_SCHEMA,
            "version": version,
            "tree": tree_payload,
            "meta": dict(meta) if meta else {},
        }
        # Artifact first, pointer second: a crash between the two leaves a
        # valid (if unreferenced) artifact, never a dangling pointer.
        try:
            write_envelope(
                self.artifact_path(version), artifact, schema=MODEL_SCHEMA
            )
            write_envelope(
                self.pointer_path(),
                {"schema": MODEL_SCHEMA, "version": version},
                schema=MODEL_SCHEMA,
            )
        except CacheWriteError as exc:
            report_write_failure(
                owner="models", path=self.pointer_path(), error=exc
            )
            raise
        return version

    def artifact_path(self, version: str) -> Path:
        return self.root / f"model_{version}.json"

    def pointer_path(self) -> Path:
        return self.root / "current.json"

    def versions(self) -> list[str]:
        """Every published version on disk, sorted (deterministic)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[len("model_"):-len(".json")]
            for p in self.root.glob("model_*.json")
        )

    # ------------------------------ serve ------------------------------ #
    def current(self) -> tuple[DecisionTree | None, str | None]:
        """Snapshot of the live ``(tree, version)`` — safe to keep using
        across a concurrent swap (trees are immutable once fitted)."""
        with self._lock:
            return self._tree, self._version

    def reload(self) -> tuple[str | None, str] | None:
        """Pick up a newly published model, if any.

        Returns ``(old_version, new_version)`` when a swap happened,
        ``None`` otherwise (no pointer, unchanged pointer, or a corrupt
        pointer/artifact — logged and ignored, the old model keeps
        serving).  Cheap when nothing changed: a single ``stat`` of the
        pointer file.
        """
        pointer = self.pointer_path()
        try:
            st = pointer.stat()
        except OSError:
            return None
        sig = (st.st_mtime_ns, st.st_size)
        with self._lock:
            if sig == self._pointer_sig:
                return None
            known_version = self._version
        version = self._read_pointer(pointer)
        if version is None:
            return None
        tree = None
        if version != known_version:
            tree = self._load_artifact(version)
            if tree is None:
                return None
        with self._lock:
            self._pointer_sig = sig
            if version == self._version:
                return None
            old = self._version
            self._tree = tree
            self._version = version
        return (old, version)

    # ----------------------------- loading ----------------------------- #
    def _read_pointer(self, pointer: Path) -> str | None:
        try:
            meta = read_envelope(pointer)
        except OSError:
            return None  # pruned/racing publisher; the stat said it existed
        except CACHE_DECODE_ERRORS as exc:
            # A corrupt pointer is quarantined: the next publish rewrites
            # it, and until then the old in-memory model keeps serving.
            quarantine_artifact(
                pointer, self.cache_root, owner="models", error=exc
            )
            return None
        try:
            if meta["schema"] != MODEL_SCHEMA:
                raise ValueError(f"pointer schema {meta['schema']!r}")
            version = meta["version"]
            if not isinstance(version, str) or not version:
                raise ValueError(f"bad version {version!r}")
            return version
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "ignoring stale model pointer %s (%s: %s)",
                pointer, type(exc).__name__, exc,
            )
            return None

    def _load_artifact(self, version: str) -> DecisionTree | None:
        path = self.artifact_path(version)
        try:
            artifact = read_envelope(path)
        except OSError:
            return None  # dangling pointer: artifact pruned or never landed
        except CACHE_DECODE_ERRORS as exc:
            quarantine_artifact(
                path, self.cache_root, owner="models", error=exc
            )
            return None
        try:
            if artifact["schema"] != MODEL_SCHEMA:
                raise ValueError(f"artifact schema {artifact['schema']!r}")
            if artifact["version"] != version:
                raise ValueError(
                    f"artifact claims version {artifact['version']!r}"
                )
            return DecisionTree.from_payload(artifact["tree"])
        except CACHE_DECODE_ERRORS as exc:
            logger.warning(
                "ignoring stale model artifact %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            return None
