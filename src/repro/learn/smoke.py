"""End-to-end smoke harness for the online learning loop (CI entry point).

Run as ``python -m repro.learn.smoke``.  The default mode exercises the
full closed loop against a *live* server, exactly as the ``learn-smoke``
CI job does:

1. spawn ``repro serve --learn --train-interval ...`` as a subprocess and
   parse its announce line for the bound port;
2. drive seeded deterministic traffic (small generated patterns posted as
   Matrix Market text, so no files and no suite build time);
3. poll ``GET /stats`` until a training cycle completed (``train_end``
   event), a model was published (``learn.model_version``) and hot-swapped
   in (``model_swap`` event);
4. drive a second traffic round and assert the published model actually
   serves (``learn.modes.guided`` > 0);
5. SIGTERM the server and require a clean drain (exit status 0).

``--verify-sha`` instead re-runs the canonical reduced sweep (dp, one
thread, ``max_block_elems=4``, suite 1/27/30) and asserts its canonical
JSON still hashes to :data:`CANONICAL_SWEEP_SHA` — proof that the learning
subsystem left the analytic model path untouched.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

import numpy as np

__all__ = ["CANONICAL_SWEEP_SHA", "main", "run_server_smoke", "verify_sweep_sha"]

#: sha256 prefix of the reduced golden sweep's canonical JSON (dp, one
#: thread, max_block_elems=4, suite indices 1/27/30) — the same value
#: asserted by BENCH_sweep.json and tests/test_learn.py.
CANONICAL_SWEEP_SHA = "5eb35e90e7ecbca8"

#: The serve CLI's announce line (same pattern the fleet supervisor uses).
LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Matrices per traffic round; enough trainable records for the default
#: trainer threshold in one round.
ROUND_MATRICES = 12


# ------------------------------ traffic -------------------------------- #
def seeded_matrix_market(seed: int, nrows: int = 300, nnz: int = 2400) -> str:
    """A small deterministic coordinate-pattern body for ``POST /advise``."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, nrows, nnz)
    pairs = np.unique(np.stack([rows, cols], axis=1), axis=0)
    lines = [
        "%%MatrixMarket matrix coordinate pattern general",
        f"{nrows} {nrows} {len(pairs)}",
    ]
    lines += [f"{r + 1} {c + 1}" for r, c in pairs]
    return "\n".join(lines) + "\n"


def _post_advise(base_url: str, body: dict, timeout: float = 60.0) -> dict:
    data = json.dumps(body).encode()
    req = urllib.request.Request(
        f"{base_url}/advise",
        data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.loads(resp.read())


def _get_json(base_url: str, path: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(f"{base_url}{path}", timeout=timeout) as resp:
        return json.loads(resp.read())


def drive_round(base_url: str, *, base_seed: int, n: int = ROUND_MATRICES) -> int:
    """POST ``n`` seeded matrices; returns how many answered."""
    answered = 0
    for i in range(n):
        body = {"matrix_market": seeded_matrix_market(base_seed + i)}
        payload = _post_advise(base_url, body)
        if "ranking" in payload:
            answered += 1
    return answered


# ------------------------------ server --------------------------------- #
def spawn_server(cache_dir: Path, *, train_interval: float) -> tuple:
    """Start ``repro serve --learn`` and return ``(proc, base_url)``."""
    env = dict(os.environ)
    env["PYTHONUNBUFFERED"] = "1"
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--host", "127.0.0.1",
        "--port", "0",
        "--cache-dir", str(cache_dir),
        "--learn",
        "--train-interval", str(train_interval),
        "--holdout-mod", "2",
    ]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env,
    )
    deadline = time.monotonic() + 60.0
    base_url = None
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = LISTEN_RE.search(line)
        if match:
            base_url = f"http://{match.group(1)}:{match.group(2)}"
            break
    if base_url is None:
        proc.kill()
        raise SystemExit("FAIL: server never announced a port")
    # Drain remaining stdout on a thread-free trick: close our end; the
    # server logs to stderr (devnull) from here on.
    proc.stdout.close()
    return proc, base_url


def wait_ready(base_url: str, timeout_s: float = 120.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(f"{base_url}/readyz", timeout=5.0) as r:
                if r.status == 200:
                    return
        except Exception:
            pass
        time.sleep(0.2)
    raise SystemExit("FAIL: server never became ready")


def wait_for_train(base_url: str, timeout_s: float = 60.0) -> dict:
    """Poll /stats until a train cycle + publish + swap are all visible."""
    deadline = time.monotonic() + timeout_s
    last: dict = {}
    while time.monotonic() < deadline:
        stats = _get_json(base_url, "/stats")
        last = stats
        events = stats.get("resilience", {}).get("events", {})
        learn = stats.get("learn", {})
        if (
            events.get("train_end", 0) >= 1
            and learn.get("model_version")
            and events.get("model_swap", 0) >= 1
        ):
            return stats
        time.sleep(0.5)
    raise SystemExit(
        "FAIL: no completed train cycle + model swap within "
        f"{timeout_s:.0f}s; last stats: {json.dumps(last.get('learn', {}))}"
    )


def run_server_smoke(*, train_interval: float = 1.0) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        proc, base_url = spawn_server(Path(tmp), train_interval=train_interval)
        try:
            wait_ready(base_url)
            answered = drive_round(base_url, base_seed=100)
            print(f"round 1: {answered}/{ROUND_MATRICES} answered")
            if answered < ROUND_MATRICES:
                raise SystemExit("FAIL: round 1 dropped requests")
            stats = wait_for_train(base_url)
            learn = stats["learn"]
            print(
                f"trained: model_version={learn['model_version']} "
                f"swaps={learn['model_swaps']} "
                f"trace_records={learn['trace_records']}"
            )
            drive_round(base_url, base_seed=100)  # cached round, now guided
            stats = _get_json(base_url, "/stats")
            modes = stats["learn"]["modes"]
            print(f"modes after round 2: {modes}")
            if modes.get("guided", 0) < 1:
                raise SystemExit("FAIL: published model never served guided")
        finally:
            proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise SystemExit("FAIL: server did not drain after SIGTERM")
        if rc != 0:
            raise SystemExit(f"FAIL: server exited with status {rc}")
        print("server smoke: OK (clean drain)")
    return 0


# ----------------------------- sweep sha ------------------------------- #
def verify_sweep_sha() -> int:
    """Re-run the canonical reduced sweep and assert its sha is untouched."""
    from repro.bench.harness import SweepConfig, run_sweep
    from repro.core.profiling import ProfileStore

    config = SweepConfig(
        precisions=("dp",),
        thread_counts=(1,),
        max_block_elems=4,
        suite_indices=(1, 27, 30),
    )
    with tempfile.TemporaryDirectory() as store_dir:
        result = run_sweep(config=config, profile_cache=ProfileStore(store_dir))
    sha = hashlib.sha256(result.canonical_json().encode()).hexdigest()[:16]
    print(f"canonical sweep sha: {sha} (expected {CANONICAL_SWEEP_SHA})")
    if sha != CANONICAL_SWEEP_SHA:
        print("FAIL: learning subsystem perturbed the analytic model path",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--verify-sha", action="store_true",
        help="re-run the canonical sweep and assert its sha, no server",
    )
    parser.add_argument(
        "--train-interval", type=float, default=1.0,
        help="server-side trainer interval in seconds (default: 1.0)",
    )
    args = parser.parse_args(argv)
    if args.verify_sha:
        return verify_sweep_sha()
    return run_server_smoke(train_interval=args.train_interval)


if __name__ == "__main__":
    sys.exit(main())
