"""Online training loop for the learned advisor (see docs/learning.md).

The paper's Section VI closes with machine-learned format selection as
future work; :mod:`repro.core.learned` implements it as an *offline* CART
selector.  This package makes it a production ML story around the advisor
service:

* :mod:`~repro.learn.tracelog` — bounded JSONL request trace (the
  training set on disk);
* :mod:`~repro.learn.trainer` — background/offline refits publishing
  content-token-versioned model artifacts;
* :mod:`~repro.learn.registry` — the versioned model store with
  lock-disciplined hot-swap;
* :mod:`~repro.learn.shadow` — held-out shadow evaluation and the
  drift-alarm breaker;
* :mod:`~repro.learn.runtime` — the per-request glue the
  :class:`~repro.serve.service.AdvisorService` drives.

Everything is seeded and deterministic modulo timing, so tests pin the
whole trace → refit → hot-swap → drift cycle.
"""

from .registry import MODEL_SCHEMA, ModelRegistry, model_token
from .runtime import (
    MODES,
    LearnConfig,
    LearnDecision,
    LearnRuntime,
    feature_vector,
)
from .shadow import ShadowEvaluator, is_holdout
from .tracelog import TRACE_SCHEMA, TraceLog, canonical_record
from .trainer import Trainer, fit_from_records, train_once

__all__ = [
    "MODEL_SCHEMA",
    "TRACE_SCHEMA",
    "MODES",
    "LearnConfig",
    "LearnDecision",
    "LearnRuntime",
    "ModelRegistry",
    "ShadowEvaluator",
    "TraceLog",
    "Trainer",
    "canonical_record",
    "feature_vector",
    "fit_from_records",
    "is_holdout",
    "model_token",
    "train_once",
]
