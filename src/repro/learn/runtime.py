"""The learn runtime: per-request decisions, shadow eval, trace logging.

:class:`LearnRuntime` is what an :class:`~repro.serve.service.AdvisorService`
holds when learning is enabled.  Per request it makes one **serving-mode
decision** (:meth:`decide`) before the cache lookup and one
**observation pass** (:meth:`finish`) after the answer is ready:

``baseline``
    No published model yet (or no features): pure analytic selection,
    logged for training.
``holdout``
    The matrix is in the deterministic held-out split
    (:func:`~repro.learn.shadow.is_holdout`): always served by the
    analytic model, shadow-compared, and the only mode that drives the
    drift breaker.
``guided``
    A published model restricts the candidate pool to its predicted
    format kind before evaluation; the answer is cached under a
    model-version-suffixed key so hot-swaps never serve stale guidance.
``fallback``
    The drift breaker is open: guided serving is suspended and requests
    are served exactly like ``baseline`` until the holdout gap recovers.

Feature consistency: the 10-entry vector (:data:`~repro.core.learned.
FEATURE_NAMES`) is derived from the serve layer's cheap
:class:`~repro.serve.features.MatrixFeatures` bundle — the same bundle
the pruner computes and the cache persists — so training (which reads
the logged vectors) and serving see identical features by construction,
and cache hits never pay a re-extraction.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..core.learned import FEATURE_NAMES, DecisionTree
from ..engine.events import EventBus
from ..machine.cache import x_budget_lines
from ..machine.machine import MachineModel
from ..resilience.guard import BreakerConfig
from ..serve.features import MatrixFeatures
from ..types import Precision
from .registry import ModelRegistry
from .shadow import ShadowEvaluator, is_holdout
from .tracelog import TraceLog
from .trainer import Trainer

__all__ = [
    "FEATURE_NAMES",
    "MODES",
    "LearnConfig",
    "LearnDecision",
    "LearnRuntime",
    "feature_vector",
]

MODES = ("baseline", "holdout", "guided", "fallback")


@dataclass(frozen=True)
class LearnConfig:
    """Knobs of the online-learning loop (CLI: ``serve --learn ...``)."""

    #: 1-in-N matrix fingerprints are held out (<=1 holds out everything).
    holdout_mod: int = 8
    #: Rolling holdout gap above this trips the drift breaker.
    drift_threshold: float = 0.5
    #: Rolling-window length (holdout observations).
    drift_window: int = 32
    #: Observations required before the gap is considered meaningful.
    drift_min_window: int = 8
    #: Trace segment rollover size and retained-segment cap.
    max_segment_bytes: int = 1_000_000
    max_segments: int = 4
    #: Trace appends buffered between disk flushes.  Larger batches keep
    #: the amortized flush out of latency percentiles at the price of a
    #: longer buffered tail on a hard crash (this is a training log; the
    #: tail is expendable).
    trace_flush_records: int = 128
    #: In-process trainer period (``None``: train via ``repro train`` only).
    train_interval_s: float | None = None
    #: Minimum eligible trace records before a refit publishes.
    min_train_samples: int = 8
    #: Poll the registry pointer every Nth request (cross-process publishes
    #: only — the in-process trainer hot-swaps immediately on publish).  A
    #: ``stat`` per request is measurable on the cache-hit path; 1 keeps
    #: the old always-poll behaviour.
    reload_poll_every: int = 64


@dataclass(frozen=True)
class LearnDecision:
    """One request's serving-mode decision (made before the cache lookup)."""

    mode: str
    model_version: str | None
    holdout: bool
    tree: DecisionTree | None

    def to_payload(self) -> dict:
        return {
            "mode": self.mode,
            "model_version": self.model_version,
            "holdout": self.holdout,
        }


def feature_vector(
    features: MatrixFeatures,
    machine: MachineModel,
    precision: Precision | str = Precision.DP,
) -> list[float]:
    """The learned selector's 10 features from the serve feature bundle.

    Mirrors :func:`repro.core.learned.extract_features` (same
    :data:`FEATURE_NAMES`, same order) but reads the cheap probed bundle
    instead of re-walking the pattern — block fills come from the
    calibrated 1-D/2-D probe estimates.
    """
    precision = Precision.coerce(precision)
    budget_bytes = x_budget_lines(
        machine.l2.size_bytes, machine.l2.line_bytes, machine.x_cache_fraction
    ) * machine.l2.line_bytes
    return [
        math.log10(max(features.row_mean, 1e-3)),
        features.row_cv,
        features.mean_run_length,
        features.est_rect_fill(1, 2),
        features.est_rect_fill(2, 1),
        features.est_rect_fill(2, 2),
        features.est_rect_fill(3, 3),
        features.est_diag_fill(4),
        (features.ncols * precision.itemsize) / budget_bytes,
        math.log10(max(features.density, 1e-12)),
    ]


class LearnRuntime:
    """Everything learn-related one advisor service owns (thread-safe)."""

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        machine: MachineModel,
        bus: EventBus,
        config: LearnConfig | None = None,
        drift_breaker_config: BreakerConfig | None = None,
    ) -> None:
        self.config = config if config is not None else LearnConfig()
        self.machine = machine
        self.bus = bus
        self.tracelog = TraceLog(
            cache_dir,
            max_segment_bytes=self.config.max_segment_bytes,
            max_segments=self.config.max_segments,
            flush_records=self.config.trace_flush_records,
        )
        self.registry = ModelRegistry(cache_dir)
        self.shadow = ShadowEvaluator(
            threshold=self.config.drift_threshold,
            window=self.config.drift_window,
            min_window=self.config.drift_min_window,
            breaker_config=drift_breaker_config,
        )
        self.trainer: Trainer | None = None
        self._lock = threading.Lock()
        self._mode_counts = {mode: 0 for mode in MODES}
        self._model_swaps = 0
        self._decide_counter = 0
        # Derived-vector memo, ``(vector, rounded)`` per (fingerprint,
        # precision): cache hits re-observe the same matrix, and the
        # vector is a pure function of (fingerprint, precision) under one
        # profile — re-deriving (and re-rounding) it per request would
        # dominate the learn overhead on the hot path.
        self._vector_cache: OrderedDict[
            tuple[str, str], tuple[list[float], list[float]]
        ] = OrderedDict()
        self._vector_cache_max = 512
        # Adopt a model a previous run (or another worker sharing the
        # cache partition) already published.
        self.maybe_reload()

    # --------------------------- model swap ----------------------------- #
    def maybe_reload(self) -> bool:
        """Poll the registry pointer; emit ``model_swap`` on a hot-swap."""
        swap = self.registry.reload()
        if swap is None:
            return False
        old, new = swap
        with self._lock:
            self._model_swaps += 1
        self.bus.emit("model_swap", old_version=old, new_version=new)
        return True

    def start_trainer(self) -> Trainer:
        """Spawn the periodic in-process trainer (``--train-interval``)."""
        if self.config.train_interval_s is None:
            raise ValueError("LearnConfig.train_interval_s is not set")
        if self.trainer is not None:
            raise RuntimeError("trainer already started")
        self.trainer = Trainer(
            self.tracelog,
            self.registry,
            interval_s=self.config.train_interval_s,
            min_samples=self.config.min_train_samples,
            bus=self.bus,
            on_publish=self.maybe_reload,
        )
        self.trainer.start()
        return self.trainer

    def stop(self) -> None:
        if self.trainer is not None:
            self.trainer.stop()
        self.tracelog.flush()

    # ---------------------------- decisions ----------------------------- #
    def decide(self, fingerprint: str) -> LearnDecision:
        """The serving mode for this request (see the module docstring)."""
        # The pointer stat behind maybe_reload() costs ~10us; amortize it.
        # The very first request polls (counter 0), so a model published
        # before traffic starts is adopted immediately.
        with self._lock:
            poll = self._decide_counter % self.config.reload_poll_every == 0
            self._decide_counter += 1
        if poll:
            self.maybe_reload()
        tree, version = self.registry.current()
        holdout = is_holdout(fingerprint, self.config.holdout_mod)
        if holdout:
            mode = "holdout"
        elif tree is None:
            mode = "baseline"
        elif not self.shadow.active:
            mode = "fallback"
        else:
            mode = "guided"
        return LearnDecision(
            mode=mode, model_version=version, holdout=holdout, tree=tree
        )

    def feature_vector(
        self, features: MatrixFeatures, precision: Precision | str
    ) -> list[float]:
        return feature_vector(features, self.machine, precision)

    # --------------------------- observation ---------------------------- #
    def finish(self, rec) -> None:
        """Shadow-compare and trace-log one answered request.

        ``rec`` is the :class:`~repro.serve.service.Recommendation` with
        ``rec.learned`` stamped by the service; this runs after the
        response is fully built, so it must never raise into the request
        path (callers wrap it best-effort).
        """
        learned = rec.learned
        mode = learned["mode"]
        cache_key = (rec.fingerprint, rec.options.precision)
        with self._lock:
            self._mode_counts[mode] += 1
            cached = self._vector_cache.get(cache_key)
            if cached is not None:
                self._vector_cache.move_to_end(cache_key)
        if cached is None and rec.features is not None:
            vector = self.feature_vector(
                MatrixFeatures.from_payload(rec.features),
                rec.options.precision,
            )
            cached = (vector, [round(v, 12) for v in vector])
            with self._lock:
                self._vector_cache[cache_key] = cached
                while len(self._vector_cache) > self._vector_cache_max:
                    self._vector_cache.popitem(last=False)
        vector, rounded = cached if cached is not None else (None, None)
        # Shadow: only meaningful where the answer is a pure analytic
        # choice (guided answers agree with the model by construction).
        if mode != "guided" and vector is not None:
            tree, _version = self.registry.current()
            if tree is not None:
                shadow_kind = tree.predict(vector)
                agree = shadow_kind == rec.best.kind
                transition, gap = self.shadow.observe(
                    agree, holdout=learned["holdout"]
                )
                learned["shadow"] = {
                    "learned_kind": shadow_kind,
                    "chosen_kind": rec.best.kind,
                    "agree": agree,
                }
                if transition == "open":
                    self.bus.emit(
                        "drift_alarm",
                        state="tripped",
                        gap=gap,
                        threshold=self.shadow.threshold,
                        window=self.shadow.window,
                    )
                elif transition == "close":
                    self.bus.emit(
                        "drift_alarm",
                        state="cleared",
                        gap=gap,
                        threshold=self.shadow.threshold,
                        window=self.shadow.window,
                    )
        record = {
            "fingerprint": rec.fingerprint,
            "mode": mode,
            "holdout": learned["holdout"],
            "model_version": learned["model_version"],
            "features": rounded,
            "options": rec.options.to_payload(),
            "chosen": rec.best.to_payload(),
            "cache_hit": rec.cache_hit,
            "shadow": learned.get("shadow"),
            "elapsed_s": rec.elapsed_s,
        }
        self.tracelog.append(record)
        self.bus.emit(
            "trace_logged",
            fingerprint=rec.fingerprint,
            mode=mode,
            holdout=learned["holdout"],
        )

    # ------------------------------ stats ------------------------------- #
    def snapshot(self) -> dict:
        """The ``learn`` block of ``GET /stats``."""
        _tree, version = self.registry.current()
        with self._lock:
            modes = dict(self._mode_counts)
            swaps = self._model_swaps
        snap = {
            "enabled": True,
            "model_version": version,
            "holdout_mod": self.config.holdout_mod,
            "trace_records": self.tracelog.records_logged,
            "trace_segments": len(self.tracelog.segments()),
            "model_swaps": swaps,
            "modes": modes,
            "shadow": self.shadow.snapshot(),
            "drift_breaker": self.shadow.breaker.snapshot(),
        }
        if self.trainer is not None:
            snap["trainer"] = self.trainer.snapshot()
        return snap
