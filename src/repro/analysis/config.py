"""Lint configuration: the ``[tool.reprolint]`` table of ``pyproject.toml``.

Path whitelists live with the project, not the code::

    [tool.reprolint]
    paths = ["src/repro"]          # what to lint (files or directories)
    baseline = "lint_baseline.json"

    [tool.reprolint.rules.determinism]
    model-paths = ["src/repro/machine", ...]
    model-exclude = ["src/repro/machine/stream.py", ...]

Every ``[tool.reprolint.rules.<rule-id>]`` table is handed verbatim to that
rule's constructor; the common keys are ``paths`` / ``exclude`` (which files
the rule runs on at all) plus whatever the rule documents.  All paths are
posix-style and relative to the project root (the directory holding
``pyproject.toml``).  When the table is absent the rules fall back to their
in-code defaults, which mirror the checked-in configuration.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["LintConfig", "load_config", "find_project_root"]

DEFAULT_BASELINE = "lint_baseline.json"


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration for one project root."""

    root: Path
    paths: tuple[str, ...] = ("src/repro",)
    exclude: tuple[str, ...] = ()
    baseline: str = DEFAULT_BASELINE
    #: rule id -> that rule's settings table (handed to the constructor).
    rules: Mapping[str, Mapping] = field(default_factory=dict)

    @property
    def baseline_path(self) -> Path:
        return self.root / self.baseline


def load_config(root: str | Path) -> LintConfig:
    """The project's lint config (in-code defaults if the table is absent)."""
    root = Path(root).resolve()
    pyproject = root / "pyproject.toml"
    table: Mapping = {}
    if pyproject.is_file():
        data = tomllib.loads(pyproject.read_text())
        table = data.get("tool", {}).get("reprolint", {})
    kwargs: dict = {"root": root}
    if "paths" in table:
        kwargs["paths"] = tuple(table["paths"])
    if "exclude" in table:
        kwargs["exclude"] = tuple(table["exclude"])
    if "baseline" in table:
        kwargs["baseline"] = str(table["baseline"])
    kwargs["rules"] = {
        rule_id: dict(settings)
        for rule_id, settings in table.get("rules", {}).items()
    }
    return LintConfig(**kwargs)


def find_project_root(start: str | Path | None = None) -> Path:
    """The nearest ancestor of ``start`` (default: cwd) with a
    ``pyproject.toml``; falls back to this package's checkout root."""
    cur = Path(start) if start is not None else Path.cwd()
    cur = cur.resolve()
    for candidate in (cur, *cur.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    # src/repro/analysis/config.py -> repo root is three levels up from repro/
    return Path(__file__).resolve().parents[3]
