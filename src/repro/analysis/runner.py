"""The lint driver: walk files, parse once, run rules, apply suppressions.

:func:`run_lint` is the library entry point (the CLI subcommand is a thin
wrapper): it resolves the configured paths to source files, builds one
instance of every registered rule from its settings table, and lints each
file through a single shared parse.  Inline ``# repro: noqa[rule-id]
reason`` comments on the offending line suppress findings — a suppression
without a reason (or naming an unknown rule) is itself reported under the
``suppression`` rule, so annotations stay auditable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .config import LintConfig
from .context import FileContext
from .findings import Finding
from .rules import RULE_REGISTRY, SUPPRESSION_RULE_ID, Rule

__all__ = ["LintResult", "run_lint", "lint_file", "build_rules",
           "iter_source_files"]

#: Pseudo rule id for files the parser rejects.
PARSE_RULE_ID = "parse"


@dataclass
class LintResult:
    """Everything one lint pass produced (before baseline subtraction)."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def of(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule_id]


def build_rules(
    config: LintConfig, only: tuple[str, ...] | None = None
) -> list[Rule]:
    """One configured instance of every (selected) registered rule."""
    if only:
        unknown = sorted(
            r for r in only
            if r not in RULE_REGISTRY and r != SUPPRESSION_RULE_ID
        )
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; "
                f"known: {sorted(RULE_REGISTRY)}"
            )
    ids = [r for r in sorted(RULE_REGISTRY) if not only or r in only]
    return [RULE_REGISTRY[r](config.rules.get(r)) for r in ids]


def iter_source_files(config: LintConfig) -> list[tuple[Path, str]]:
    """``(absolute path, project-relative posix path)`` pairs, sorted."""
    seen: dict[str, Path] = {}
    for prefix in config.paths:
        base = config.root / prefix
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            rel = path.relative_to(config.root).as_posix()
            if any(
                rel == ex.rstrip("/") or rel.startswith(ex.rstrip("/") + "/")
                for ex in config.exclude
            ):
                continue
            seen[rel] = path
    return [(seen[rel], rel) for rel in sorted(seen)]


def lint_file(
    path: Path,
    rel_path: str,
    rules: list[Rule],
    *,
    check_suppressions: bool = True,
) -> tuple[list[Finding], int]:
    """Findings for one file plus how many were noqa-suppressed."""
    source = path.read_text()
    try:
        ctx = FileContext(path, rel_path, source)
    except SyntaxError as exc:
        return [Finding(
            rule=PARSE_RULE_ID,
            path=rel_path,
            line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
        )], 0

    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(rel_path):
            raw.extend(rule.check(ctx))

    findings: list[Finding] = []
    suppressed = 0
    for finding in raw:
        sup = ctx.suppressions.get(finding.line)
        if sup is not None and sup.reason and sup.covers(finding.rule):
            suppressed += 1
        else:
            findings.append(finding)

    if check_suppressions:
        for sup in ctx.suppressions.values():
            if not sup.rules or not sup.reason:
                findings.append(Finding(
                    rule=SUPPRESSION_RULE_ID,
                    path=rel_path,
                    line=sup.line,
                    message=(
                        "suppression must name rule ids and give a reason: "
                        "# repro: noqa[rule-id] why"
                    ),
                    snippet=ctx.lines[sup.line - 1].strip(),
                ))
                continue
            unknown = sorted(
                r for r in sup.rules
                if r != "*" and r not in RULE_REGISTRY
            )
            if unknown:
                findings.append(Finding(
                    rule=SUPPRESSION_RULE_ID,
                    path=rel_path,
                    line=sup.line,
                    message=f"suppression names unknown rule id(s) {unknown}",
                    snippet=ctx.lines[sup.line - 1].strip(),
                ))

    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def run_lint(
    config: LintConfig, *, only: tuple[str, ...] | None = None
) -> LintResult:
    """Lint every configured source file with the configured rules."""
    rules = build_rules(config, only)
    check_suppressions = not only or SUPPRESSION_RULE_ID in only
    result = LintResult()
    for path, rel in iter_source_files(config):
        findings, suppressed = lint_file(
            path, rel, rules, check_suppressions=check_suppressions
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    return result
