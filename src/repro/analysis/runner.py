"""The lint driver: walk files, parse once, run rules, apply suppressions.

:func:`run_lint` is the library entry point (the CLI subcommand is a thin
wrapper): it resolves the configured paths to source files, builds one
instance of every registered rule from its settings table, parses every
file once into a shared :class:`FileContext`, runs per-file rules, then
builds one :class:`~repro.analysis.project.Project` over all the contexts
and runs every project rule's ``check_project`` against it.  Inline
``# repro: noqa[rule-id] reason`` comments on the offending line suppress
findings — a suppression without a reason (or naming an unknown rule) is
itself reported under the ``suppression`` rule, and on full runs a
well-formed suppression that no longer suppresses anything is reported
under ``unused-suppression``, so annotations stay auditable and never
outlive their finding.

:func:`lint_file` remains the single-file API (used by the rule unit
tests): per-file rules only, no project graph, no staleness detection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .config import LintConfig
from .context import FileContext
from .findings import Finding
from .project import build_project
from .rules import (
    RULE_REGISTRY,
    SUPPRESSION_RULE_ID,
    UNUSED_SUPPRESSION_RULE_ID,
    Rule,
)

__all__ = ["LintResult", "run_lint", "lint_file", "build_rules",
           "iter_source_files"]

#: Pseudo rule id for files the parser rejects.
PARSE_RULE_ID = "parse"


@dataclass
class LintResult:
    """Everything one lint pass produced (before baseline subtraction)."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def of(self, rule_id: str) -> list[Finding]:
        return [f for f in self.findings if f.rule == rule_id]


def build_rules(
    config: LintConfig, only: tuple[str, ...] | None = None
) -> list[Rule]:
    """One configured instance of every (selected) registered rule."""
    if only:
        pseudo = (SUPPRESSION_RULE_ID, UNUSED_SUPPRESSION_RULE_ID)
        unknown = sorted(
            r for r in only
            if r not in RULE_REGISTRY and r not in pseudo
        )
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; "
                f"known: {sorted(RULE_REGISTRY)}"
            )
    ids = [r for r in sorted(RULE_REGISTRY) if not only or r in only]
    return [RULE_REGISTRY[r](config.rules.get(r)) for r in ids]


def iter_source_files(config: LintConfig) -> list[tuple[Path, str]]:
    """``(absolute path, project-relative posix path)`` pairs, sorted."""
    seen: dict[str, Path] = {}
    for prefix in config.paths:
        base = config.root / prefix
        if base.is_file():
            candidates = [base]
        elif base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            continue
        for path in candidates:
            rel = path.relative_to(config.root).as_posix()
            if any(
                rel == ex.rstrip("/") or rel.startswith(ex.rstrip("/") + "/")
                for ex in config.exclude
            ):
                continue
            seen[rel] = path
    return [(seen[rel], rel) for rel in sorted(seen)]


def lint_file(
    path: Path,
    rel_path: str,
    rules: list[Rule],
    *,
    check_suppressions: bool = True,
) -> tuple[list[Finding], int]:
    """Findings for one file plus how many were noqa-suppressed."""
    source = path.read_text()
    try:
        ctx = FileContext(path, rel_path, source)
    except SyntaxError as exc:
        return [Finding(
            rule=PARSE_RULE_ID,
            path=rel_path,
            line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
        )], 0

    raw: list[Finding] = []
    for rule in rules:
        if rule.applies_to(rel_path):
            raw.extend(rule.check(ctx))

    findings: list[Finding] = []
    suppressed = 0
    for finding in raw:
        sup = ctx.suppressions.get(finding.line)
        if sup is not None and sup.reason and sup.covers(finding.rule):
            suppressed += 1
        else:
            findings.append(finding)

    if check_suppressions:
        findings.extend(_malformed_suppressions(ctx))

    findings.sort(key=Finding.sort_key)
    return findings, suppressed


def _malformed_suppressions(ctx: FileContext) -> list[Finding]:
    """Suppressions with no rule ids / reason, or naming unknown rules."""
    findings: list[Finding] = []
    for sup in ctx.suppressions.values():
        if not sup.rules or not sup.reason:
            findings.append(Finding(
                rule=SUPPRESSION_RULE_ID,
                path=ctx.rel_path,
                line=sup.line,
                message=(
                    "suppression must name rule ids and give a reason: "
                    "# repro: noqa[rule-id] why"
                ),
                snippet=ctx.lines[sup.line - 1].strip(),
            ))
            continue
        unknown = sorted(
            r for r in sup.rules
            if r != "*" and r not in RULE_REGISTRY
        )
        if unknown:
            findings.append(Finding(
                rule=SUPPRESSION_RULE_ID,
                path=ctx.rel_path,
                line=sup.line,
                message=f"suppression names unknown rule id(s) {unknown}",
                snippet=ctx.lines[sup.line - 1].strip(),
            ))
    return findings


def run_lint(
    config: LintConfig, *, only: tuple[str, ...] | None = None
) -> LintResult:
    """Lint every configured source file with the configured rules.

    Full runs (no ``only`` filter) additionally build the whole-program
    :class:`~repro.analysis.project.Project` and run every project rule,
    and report well-formed suppressions that suppressed nothing as
    ``unused-suppression`` findings; a ``--rule`` subset still builds the
    project (its rules may need it) but skips staleness detection, since
    a subset run cannot tell a stale suppression from an out-of-scope one.
    """
    rules = build_rules(config, only)
    check_suppressions = not only or SUPPRESSION_RULE_ID in only
    file_rules = [r for r in rules if not type(r).is_project_rule()]
    project_rules = [r for r in rules if type(r).is_project_rule()]

    result = LintResult()
    contexts: dict[str, FileContext] = {}
    raw: list[Finding] = []
    for path, rel in iter_source_files(config):
        result.files_checked += 1
        try:
            ctx = FileContext(path, rel, path.read_text())
        except SyntaxError as exc:
            result.findings.append(Finding(
                rule=PARSE_RULE_ID,
                path=rel,
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
            ))
            continue
        contexts[rel] = ctx
        for rule in file_rules:
            if rule.applies_to(rel):
                raw.extend(rule.check(ctx))

    if project_rules:
        project = build_project(contexts)
        for rule in project_rules:
            raw.extend(rule.check_project(project))

    # Central suppression pass (covers file and project findings alike).
    used_suppressions: set[tuple[str, int]] = set()
    for finding in raw:
        ctx = contexts.get(finding.path)
        sup = ctx.suppressions.get(finding.line) if ctx else None
        if sup is not None and sup.reason and sup.covers(finding.rule):
            result.suppressed += 1
            used_suppressions.add((finding.path, sup.line))
        else:
            result.findings.append(finding)

    if check_suppressions:
        for ctx in contexts.values():
            result.findings.extend(_malformed_suppressions(ctx))

    if only is None:
        for rel in sorted(contexts):
            ctx = contexts[rel]
            for sup in ctx.suppressions.values():
                if not sup.rules or not sup.reason:
                    continue  # already reported as malformed
                if any(r != "*" and r not in RULE_REGISTRY
                       for r in sup.rules):
                    continue  # already reported as unknown-rule
                if (rel, sup.line) not in used_suppressions:
                    result.findings.append(Finding(
                        rule=UNUSED_SUPPRESSION_RULE_ID,
                        path=rel,
                        line=sup.line,
                        message=(
                            "suppression no longer suppresses anything; "
                            "remove the stale # repro: noqa comment"
                        ),
                        snippet=ctx.lines[sup.line - 1].strip(),
                    ))

    result.findings.sort(key=Finding.sort_key)
    return result
