"""Per-file analysis context, parsed once and shared by every rule.

The walker builds one :class:`FileContext` per source file: the AST with a
child-to-parent map, helpers to walk enclosing scopes, and the file's
inline suppressions (``# repro: noqa[rule-id] reason``).  Rules receive the
context and never re-parse, so adding a rule costs one extra AST walk, not
one extra parse.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

__all__ = ["FileContext", "Suppression", "dotted_name"]

#: The suppression marker is ``repro: noqa[rule-a, rule-b] why this is
#: fine`` inside a comment; the reason text after the closing bracket is
#: mandatory (enforced by the runner).  Only real comment tokens are
#: scanned, so the marker appearing in a docstring or string literal (such
#: as this package's own documentation) is inert.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([^\]]*)\]\s*(.*)$")


@dataclass(frozen=True)
class Suppression:
    """One inline ``# repro: noqa[...]`` comment."""

    line: int
    rules: frozenset[str]
    reason: str

    def covers(self, rule_id: str) -> bool:
        return "*" in self.rules or rule_id in self.rules


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


class FileContext:
    """One parsed source file plus shared structural annotations."""

    def __init__(self, path: Path, rel_path: str, source: str) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(self.tree)
            for child in ast.iter_child_nodes(parent)
        }
        self.suppressions: dict[int, Suppression] = {}
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            rules = frozenset(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            self.suppressions[lineno] = Suppression(
                line=lineno, rules=rules, reason=match.group(2).strip()
            )

    # --------------------------- tree helpers --------------------------- #
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST):
        """The node's parents, innermost first, up to the module."""
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def line_text(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""
