"""AST-based invariant linter for the repro codebase.

``python -m repro lint`` machine-checks the project's unwritten rules —
byte-determinism of the model paths, crash-safe cache writes, lock
discipline in the advisor service, registered engine event schemas,
registered fault-injection sites, and no exact float comparisons in model
code.  See :mod:`repro.analysis.rules` for the rule catalog and
``docs/lint.md`` for the workflow.
"""

from .baseline import apply_baseline, load_baseline, save_baseline
from .config import LintConfig, find_project_root, load_config
from .context import FileContext, Suppression
from .findings import Finding
from .rules import (
    RULE_REGISTRY,
    SUPPRESSION_RULE_ID,
    AtomicWriteRule,
    DeterminismRule,
    EventSchemaRule,
    FaultSiteRule,
    FloatEqualityRule,
    LockDisciplineRule,
    Rule,
    register,
)
from .runner import (
    LintResult,
    build_rules,
    iter_source_files,
    lint_file,
    run_lint,
)

__all__ = [
    "Finding",
    "FileContext",
    "Suppression",
    "Rule",
    "register",
    "RULE_REGISTRY",
    "SUPPRESSION_RULE_ID",
    "DeterminismRule",
    "AtomicWriteRule",
    "LockDisciplineRule",
    "EventSchemaRule",
    "FloatEqualityRule",
    "FaultSiteRule",
    "LintConfig",
    "load_config",
    "find_project_root",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "LintResult",
    "run_lint",
    "lint_file",
    "build_rules",
    "iter_source_files",
]
