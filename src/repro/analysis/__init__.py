"""AST-based invariant linter for the repro codebase.

``python -m repro lint`` machine-checks the project's unwritten rules —
byte-determinism of the model paths, crash-safe cache writes, lock
discipline in the advisor service, registered engine event schemas,
registered fault-injection sites, and no exact float comparisons in model
code.  The v2 layer adds whole-program analysis: a project-wide
module/call graph (:mod:`repro.analysis.project`), a fixpoint dataflow
engine (:mod:`repro.analysis.dataflow`), and three interprocedural rule
families (:mod:`repro.analysis.interproc`) — numeric-safety, lock-order,
and stats-contract — plus SARIF output for code scanning.  See
:mod:`repro.analysis.rules` for the rule catalog and ``docs/lint.md`` for
the workflow.
"""

from .baseline import apply_baseline, load_baseline, save_baseline
from .config import LintConfig, find_project_root, load_config
from .context import FileContext, Suppression
from .dataflow import (
    entry_locks,
    fixpoint,
    narrow_returns,
    transitive_acquires,
)
from .findings import Finding
from .interproc import (
    LockOrderRule,
    NumericSafetyRule,
    StatsContractRule,
)
from .project import (
    ClassInfo,
    FunctionInfo,
    Project,
    build_project,
    module_name,
)
from .rules import (
    RULE_REGISTRY,
    SUPPRESSION_RULE_ID,
    UNUSED_SUPPRESSION_RULE_ID,
    AtomicWriteRule,
    DeterminismRule,
    EnvelopeIoRule,
    EventSchemaRule,
    FaultSiteRule,
    FloatEqualityRule,
    LockDisciplineRule,
    Rule,
    register,
)
from .runner import (
    LintResult,
    build_rules,
    iter_source_files,
    lint_file,
    run_lint,
)
from .sarif import sarif_json, to_sarif

__all__ = [
    "Finding",
    "FileContext",
    "Suppression",
    "Rule",
    "register",
    "RULE_REGISTRY",
    "SUPPRESSION_RULE_ID",
    "UNUSED_SUPPRESSION_RULE_ID",
    "DeterminismRule",
    "AtomicWriteRule",
    "EnvelopeIoRule",
    "LockDisciplineRule",
    "EventSchemaRule",
    "FloatEqualityRule",
    "FaultSiteRule",
    "NumericSafetyRule",
    "LockOrderRule",
    "StatsContractRule",
    "Project",
    "ClassInfo",
    "FunctionInfo",
    "build_project",
    "module_name",
    "fixpoint",
    "entry_locks",
    "transitive_acquires",
    "narrow_returns",
    "LintConfig",
    "load_config",
    "find_project_root",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
    "LintResult",
    "run_lint",
    "lint_file",
    "build_rules",
    "iter_source_files",
    "to_sarif",
    "sarif_json",
]
