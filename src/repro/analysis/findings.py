"""The linter's currency: one :class:`Finding` per rule violation.

A finding is identified across runs by its *fingerprint*: a content hash of
``(rule id, file path, stripped source line)``.  Line numbers are
deliberately excluded so that unrelated edits above a grandfathered finding
do not invalidate the baseline; editing the offending line itself (or
moving the file) does, which is exactly when a human should re-triage it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  #: project-relative posix path, e.g. ``src/repro/engine/pool.py``
    line: int
    message: str
    #: The stripped source line the finding points at (fingerprint input).
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        digest = sha256(
            f"{self.rule}|{self.path}|{self.snippet}".encode()
        ).hexdigest()
        return digest[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
