"""Grandfathered findings: the fingerprinted ``lint_baseline.json``.

The baseline holds the fingerprints of findings that predate a rule (or
were consciously accepted) so that ``repro lint`` can gate *new* findings
in CI without first requiring a repo-wide cleanup.  Matching is by
content fingerprint (rule + path + source line, see
:class:`~repro.analysis.findings.Finding`), with multiset semantics: two
identical offending lines in one file need two baseline entries, and
fixing one of them does not mask the other.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from ..ioutils import CACHE_DECODE_ERRORS, atomic_write_json
from .findings import Finding

__all__ = ["load_baseline", "save_baseline", "apply_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset of the baseline at ``path`` (empty if absent)."""
    path = Path(path)
    if not path.is_file():
        return Counter()
    try:
        payload = json.loads(path.read_text())
        if payload["version"] != BASELINE_VERSION:
            raise ValueError(f"unsupported baseline version {payload['version']}")
        return Counter(entry["fingerprint"] for entry in payload["findings"])
    except CACHE_DECODE_ERRORS as exc:
        raise ValueError(f"unreadable baseline {path}: {exc}") from exc


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, atomic)."""
    atomic_write_json(Path(path), {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                # Informational only — matching ignores line numbers.
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ],
    })


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (new, n_baselined) against the fingerprint
    multiset, preserving order."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    baselined = 0
    for finding in findings:
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            baselined += 1
        else:
            new.append(finding)
    return new, baselined
