"""A small worklist fixpoint engine over the project call graph.

Every interprocedural rule in :mod:`repro.analysis.interproc` reduces to
the same shape: a per-function fact, a transfer that recomputes one
function's fact from its callees' facts, and iteration to a fixed point.
:func:`fixpoint` implements exactly that — seed facts, recompute, and
re-enqueue callers whenever a fact changes — terminating because each
analysis's facts live in a finite lattice and its transfer is monotone.

Three canned analyses are built on top:

* :func:`transitive_acquires` — which lock tokens can a call into ``f``
  end up acquiring, directly or through any resolved callee?  (A growing
  union: ⊥ = ∅, monotone in callees.)
* :func:`entry_locks` — which lock tokens are *always* held when ``f``
  is entered, meeting over every resolved call site?  (A shrinking
  intersection from ⊤; functions with no resolved callers — entry
  points, thread targets, unresolved receivers — stay unconstrained and
  report ∅ so rules never assume protection that isn't proven.)
* :func:`narrow_returns` — does ``f`` return a value derived from an
  int32-or-narrower numpy cast?  Propagates through project-internal
  wrappers so ``def idx(): return np.int32(k)`` taints its callers.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from typing import TypeVar

from .context import dotted_name
from .project import FunctionInfo, Project

__all__ = [
    "fixpoint",
    "transitive_acquires",
    "entry_locks",
    "narrow_returns",
    "NARROW_INT_DTYPES",
]

T = TypeVar("T")

#: Integer dtypes narrower than the platform default that the
#: numeric-safety rule treats as overflow-capable.
NARROW_INT_DTYPES = frozenset({
    "int32", "int16", "int8", "uint32", "uint16", "uint8",
    "intc", "short", "byte", "uintc", "ushort", "ubyte",
})


def fixpoint(
    nodes: Iterable[str],
    initial: Callable[[str], T],
    transfer: Callable[[str, Callable[[str], T]], T],
    dependents: Callable[[str], Iterable[str]],
    *,
    max_rounds: int = 10_000,
) -> dict[str, T]:
    """Iterate ``transfer`` over ``nodes`` until facts stabilize.

    ``initial(n)`` seeds each node's fact; ``transfer(n, get)`` recomputes
    it (reading other nodes' current facts through ``get``); when a fact
    changes, every node in ``dependents(n)`` is re-enqueued.  Facts must
    support ``==``.  Termination is the analysis author's contract
    (finite lattice + monotone transfer); ``max_rounds`` is a backstop so
    a buggy transfer degrades into stale facts instead of a hang.
    """
    node_list = list(nodes)
    facts: dict[str, T] = {n: initial(n) for n in node_list}
    pending: list[str] = list(node_list)
    in_queue: set[str] = set(node_list)
    rounds = 0
    while pending and rounds < max_rounds:
        rounds += 1
        batch, pending = pending, []
        in_queue.clear()
        for n in batch:
            new = transfer(n, lambda k: facts[k])
            if new != facts[n]:
                facts[n] = new
                for d in dependents(n):
                    if d in facts and d not in in_queue:
                        pending.append(d)
                        in_queue.add(d)
    return facts


def _caller_map(project: Project) -> dict[str, list[str]]:
    callers: dict[str, list[str]] = {}
    for callee, sites in project.callers.items():
        callers[callee] = sorted({caller for caller, _ in sites})
    return callers


def transitive_acquires(project: Project) -> dict[str, frozenset[str]]:
    """qname → every lock token a call into it can acquire."""
    callers = _caller_map(project)

    def transfer(qname: str, get) -> frozenset[str]:
        fn = project.functions[qname]
        acc = set(fn.locks_acquired)
        for callee in project.callees(qname):
            acc |= get(callee)
        return frozenset(acc)

    return fixpoint(
        project.functions,
        lambda q: frozenset(project.functions[q].locks_acquired),
        transfer,
        lambda q: callers.get(q, ()),
    )


_TOP = frozenset({"⊤"})  # sentinel: "no resolved caller seen yet"


def entry_locks(project: Project) -> dict[str, frozenset[str]]:
    """qname → lock tokens provably held at *every* resolved call site.

    Functions never called through a resolved site (entry points, thread
    targets, dynamic dispatch) report ∅ — unknown callers mean no
    protection can be assumed.
    """
    # Dependents of f are its callees: when f's entry set (or held-at-site
    # sets derived from it) changes, each callee must be recomputed.
    def transfer(qname: str, get) -> frozenset[str]:
        acc: frozenset[str] | None = None
        for caller, site in project.callers.get(qname, ()):
            caller_entry = get(caller)
            base = frozenset() if caller_entry == _TOP else caller_entry
            held = site.locks_held | base
            acc = held if acc is None else (acc & held)
        return _TOP if acc is None else frozenset(acc)

    facts = fixpoint(
        project.functions,
        lambda q: _TOP,
        transfer,
        lambda q: project.callees(q),
    )
    return {
        q: (frozenset() if f == _TOP else f) for q, f in facts.items()
    }


# --------------------------------------------------------------------------- #
# narrow-int return analysis
# --------------------------------------------------------------------------- #


def _is_narrow_dtype_expr(node: ast.expr) -> bool:
    """``np.int32`` / ``"int32"`` / ``numpy.uint16`` …"""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in NARROW_INT_DTYPES
    name = dotted_name(node)
    if name is None:
        return False
    return name.split(".")[-1] in NARROW_INT_DTYPES


def expr_is_narrow(
    node: ast.expr,
    *,
    narrow_fns: Callable[[str], bool] | None = None,
    resolve_call: Callable[[ast.Call], str | None] | None = None,
    narrow_vars: frozenset[str] = frozenset(),
) -> bool:
    """Best-effort: does ``node`` evaluate to an int32-or-narrower array?

    Recognized sources: ``np.int32(x)``-style constructor calls,
    ``x.astype(np.int32)`` / ``x.astype("int32")``, numpy constructors
    with a narrow ``dtype=`` kwarg (``np.zeros(n, dtype=np.int32)``),
    subscripts of known-narrow names, and calls into project functions
    whose :func:`narrow_returns` summary is narrow.
    """
    if isinstance(node, ast.Name):
        return node.id in narrow_vars
    if isinstance(node, ast.Subscript):
        return expr_is_narrow(
            node.value, narrow_fns=narrow_fns,
            resolve_call=resolve_call, narrow_vars=narrow_vars,
        )
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    fname = dotted_name(func)
    # np.int32(x), numpy.uint16(x), ...
    if fname is not None and fname.split(".")[-1] in NARROW_INT_DTYPES:
        return True
    # x.astype(np.int32) / x.astype("int32")
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        for arg in node.args[:1]:
            if _is_narrow_dtype_expr(arg):
                return True
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_narrow_dtype_expr(kw.value):
                return True
        return False
    # np.zeros(..., dtype=np.int32) and friends.
    for kw in node.keywords:
        if kw.arg == "dtype" and _is_narrow_dtype_expr(kw.value):
            return True
    # A project function summarized as narrow-returning.
    if narrow_fns is not None and resolve_call is not None:
        callee = resolve_call(node)
        if callee is not None and narrow_fns(callee):
            return True
    return False


def _narrow_locals(
    fn: FunctionInfo,
    narrow: Callable[[str], bool],
    resolve: Callable[[ast.Call], str | None],
) -> frozenset[str]:
    """Names assigned a narrow expression anywhere in ``fn``.

    One forward pass per fixpoint round: assignments are scanned in source
    order, so chains like ``a = np.int32(n); b = a`` resolve within a
    round, while anything reassigned to a wide value later simply stays
    flagged — conservative, but assignments in this codebase are
    essentially single-static-assignment.
    """
    vars_: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and expr_is_narrow(
                node.value, narrow_fns=narrow, resolve_call=resolve,
                narrow_vars=frozenset(vars_),
            ):
                vars_.add(target.id)
    return frozenset(vars_)


def narrow_returns(project: Project) -> dict[str, bool]:
    """qname → True when the function can return a narrow-int value."""
    callers = _caller_map(project)
    resolvers: dict[str, Callable[[ast.Call], str | None]] = {}
    for qname, fn in project.functions.items():
        by_node = {id(c.node): c.callee for c in fn.calls}
        resolvers[qname] = lambda call, _m=by_node: _m.get(id(call))

    def transfer(qname: str, get) -> bool:
        fn = project.functions[qname]
        resolve = resolvers[qname]
        local_narrow = _narrow_locals(fn, get, resolve)
        return any(
            expr_is_narrow(
                r, narrow_fns=get, resolve_call=resolve,
                narrow_vars=local_narrow,
            )
            for r in fn.returns
        )

    return fixpoint(
        project.functions,
        lambda q: False,
        transfer,
        lambda q: callers.get(q, ()),
    )
