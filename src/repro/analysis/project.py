"""Whole-program context: module graph, call graph, per-function summaries.

PR 4's linter parsed each file once and ran purely file-local rules.  The
v2 layer builds one :class:`Project` over *every* linted
:class:`~repro.analysis.context.FileContext`:

* **module graph** — each file becomes a module (``src/repro/x/y.py`` →
  ``repro.x.y``); ``import`` / ``from ... import`` statements (absolute,
  relative, and aliased) are resolved *within the linted tree* into a
  per-module name-binding table;
* **function table** — every function and method gets a
  :class:`FunctionInfo` keyed by qualified name
  (``repro.fleet.supervisor:FleetSupervisor._begin_restart``) holding a
  summary of what rules care about: the call sites it contains (resolved
  through the binding tables, ``self``, annotated parameters, and
  constructor-typed locals), the lock tokens it acquires, the ``self``
  attributes it writes (and whether the write sits under a lock
  syntactically), and its return expressions;
* **call graph** — ``callers`` / ``callees`` maps over those qualified
  names, which the fixpoint analyses in :mod:`repro.analysis.dataflow`
  iterate.

Resolution is deliberately best-effort: anything dynamic (``getattr``,
values through containers, foreign libraries) stays unresolved, and every
interprocedural rule is written so that *unresolved* means *unknown*, never
*guilty*.  The lock-token scheme mirrors that: ``self.<...lock...>`` inside
class ``C`` of module ``M`` normalizes to ``M:C.<attr>``; a non-``self``
receiver is class-qualified when the variable's class is inferable (a
parameter annotation, a ``v = ClassName(...)`` assignment, or iteration
over an attribute whose ``__init__`` fills it with ``ClassName(...)``
elements) and falls back to the attribute-path bucket ``?.<attr>``
otherwise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .context import FileContext, dotted_name

__all__ = [
    "CallSite",
    "AttrWrite",
    "FunctionInfo",
    "ClassInfo",
    "Project",
    "build_project",
    "module_name",
    "is_lock_attr",
]

#: Attribute-name substrings that mark a ``with`` context manager as a lock
#: acquisition (same heuristic as the PR 4 lock-discipline rule).
_LOCK_TOKENS = ("lock", "mutex")


def is_lock_attr(attr: str) -> bool:
    low = attr.lower()
    return any(t in low for t in _LOCK_TOKENS)


def module_name(rel_path: str) -> str:
    """``src/repro/x/y.py`` → ``repro.x.y`` (``__init__`` → the package)."""
    parts = rel_path[:-3].split("/") if rel_path.endswith(".py") else rel_path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else rel_path


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    #: Resolved callee qualified name (``module:qual``), or ``None``.
    callee: str | None
    #: Lock tokens held *syntactically* at the call site (enclosing
    #: ``with <lock>:`` blocks within the same function).
    locks_held: frozenset[str]


@dataclass(frozen=True)
class AttrWrite:
    """One ``self.X = ...`` / ``self.X[...] op= ...`` statement."""

    node: ast.stmt
    attr: str
    #: True when the write sits under a ``with <lock>:`` block.
    locked: bool


@dataclass
class FunctionInfo:
    """The per-function summary every interprocedural rule queries."""

    qname: str  #: ``module:qual`` (methods: ``module:Class.name``)
    module: str
    rel_path: str
    cls: str | None  #: owning class qualified name (``module:Class``)
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: FileContext
    calls: list[CallSite] = field(default_factory=list)
    self_writes: list[AttrWrite] = field(default_factory=list)
    #: Lock tokens acquired anywhere in the body (syntactically).
    locks_acquired: set[str] = field(default_factory=set)
    #: Syntactic nesting edges: ``with A:`` containing ``with B:``.
    lock_edges: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: Return-value expressions (own body only, nested defs excluded).
    returns: list[ast.expr] = field(default_factory=list)
    #: Local variable name → inferred class qname (``module:Class``).
    var_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition plus the structure rules query."""

    qname: str  #: ``module:Class``
    module: str
    rel_path: str
    node: ast.ClassDef
    #: method name → function qname.
    methods: dict[str, str] = field(default_factory=dict)
    #: Base-class qnames resolved within the project.
    bases: list[str] = field(default_factory=list)
    #: ``self.<attr>`` → class qname of the value assigned to it
    #: (``self.x = ClassName(...)`` anywhere in the class body).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` → element class qname, for attributes filled with
    #: ``tuple(ClassName(...) for ...)`` / ``[ClassName(...) for ...]``.
    attr_elem_types: dict[str, str] = field(default_factory=dict)


class Project:
    """Every linted file, cross-referenced."""

    def __init__(self) -> None:
        #: rel_path → parsed context, for every file that parsed.
        self.contexts: dict[str, FileContext] = {}
        #: module name → rel_path.
        self.modules: dict[str, str] = {}
        #: module name → {local name → ("module", m) | ("obj", "m:qual")}.
        self.bindings: dict[str, dict[str, tuple[str, str]]] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: callee qname → list of (caller qname, CallSite).
        self.callers: dict[str, list[tuple[str, CallSite]]] = {}

    # ------------------------------ lookup ------------------------------ #
    def function(self, qname: str) -> FunctionInfo | None:
        return self.functions.get(qname)

    def callees(self, qname: str) -> list[str]:
        fn = self.functions.get(qname)
        if fn is None:
            return []
        return sorted({c.callee for c in fn.calls if c.callee is not None})

    def resolve_method(self, class_qname: str, name: str) -> str | None:
        """``module:Class`` + method name → function qname, walking
        project-known base classes (depth-limited, cycle-safe)."""
        seen: set[str] = set()
        stack = [class_qname]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            cls = self.classes.get(cur)
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name]
            stack.extend(cls.bases)
        return None

    def module_constants(self, module: str) -> dict[str, tuple[str, ...]]:
        """Module-level ``NAME = ("a", "b", ...)`` string-tuple constants.

        The contracts rule expands ``for key in SUMMED_COUNTERS:`` loops
        through this table, so dict-key sets declared once at module scope
        are still statically checkable.
        """
        rel = self.modules.get(module)
        if rel is None:
            return {}
        out: dict[str, tuple[str, ...]] = {}
        ctx = self.contexts[rel]
        for stmt in ctx.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            elems = _string_elements(stmt.value)
            if elems is not None:
                out[target.id] = elems
        return out


def _string_elements(node: ast.expr) -> tuple[str, ...] | None:
    """The elements of a literal tuple/list/set/frozenset of strings."""
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func in ("frozenset", "set", "tuple", "list") and len(node.args) == 1:
            return _string_elements(node.args[0])
        return None
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        elems = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                elems.append(elt.value)
            else:
                return None
        return tuple(elems)
    return None


# --------------------------------------------------------------------------- #
# build
# --------------------------------------------------------------------------- #


def build_project(contexts: dict[str, FileContext]) -> Project:
    """Cross-reference every parsed file into one :class:`Project`."""
    project = Project()
    project.contexts = dict(contexts)
    for rel in contexts:
        project.modules[module_name(rel)] = rel

    for rel, ctx in contexts.items():
        module = module_name(rel)
        project.bindings[module] = _collect_bindings(module, ctx.tree, project)

    # Classes first (method tables feed call resolution), then functions.
    for rel, ctx in contexts.items():
        module = module_name(rel)
        _collect_classes(project, module, rel, ctx)
    for cls in project.classes.values():
        _resolve_bases(project, cls)
    for rel, ctx in contexts.items():
        module = module_name(rel)
        _collect_functions(project, module, rel, ctx)
    # Attribute/element types need the class registry complete.
    for cls in project.classes.values():
        _collect_attr_types(project, cls)
    # Summaries (calls, locks, writes) need attr types, so a second pass.
    for fn in project.functions.values():
        _summarize_function(project, fn)
    for qname, fn in project.functions.items():
        for call in fn.calls:
            if call.callee is not None:
                project.callers.setdefault(call.callee, []).append(
                    (qname, call)
                )
    return project


def _collect_bindings(
    module: str, tree: ast.Module, project: Project
) -> dict[str, tuple[str, str]]:
    bindings: dict[str, tuple[str, str]] = {}
    package = module.rsplit(".", 1)[0] if "." in module else ""
    # A package's __init__ resolves relative imports against itself.
    if project.modules.get(module, "").endswith("__init__.py"):
        package = module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                local = alias.asname or target.split(".")[0]
                bound = target if alias.asname else target.split(".")[0]
                bindings[local] = ("module", bound)
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(node, module, package)
            if base is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                as_module = f"{base}.{alias.name}" if base else alias.name
                if as_module in project.modules:
                    bindings[local] = ("module", as_module)
                else:
                    bindings[local] = ("obj", f"{base}:{alias.name}")
    return bindings


def _resolve_from_base(
    node: ast.ImportFrom, module: str, package: str
) -> str | None:
    if node.level == 0:
        return node.module
    # Relative import: level 1 = current package, 2 = its parent, ...
    parts = package.split(".") if package else []
    up = node.level - 1
    if up > len(parts):
        return None
    base_parts = parts[: len(parts) - up] if up else parts
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts) if base_parts else None


def _collect_classes(
    project: Project, module: str, rel: str, ctx: FileContext
) -> None:
    for node in ctx.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        qname = f"{module}:{node.name}"
        cls = ClassInfo(qname=qname, module=module, rel_path=rel, node=node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = f"{module}:{node.name}.{stmt.name}"
        project.classes[qname] = cls


def _resolve_bases(project: Project, cls: ClassInfo) -> None:
    for base in cls.node.bases:
        resolved = _resolve_dotted(
            project, cls.module, dotted_name(base)
        )
        if resolved is not None and resolved in project.classes:
            cls.bases.append(resolved)


def _resolve_dotted(
    project: Project, module: str, name: str | None
) -> str | None:
    """A dotted name in ``module`` → project qname (``mod:qual``) or module.

    ``Foo`` defined locally → ``module:Foo``; ``pkg.mod.Foo`` through an
    ``import`` binding → ``pkg.mod:Foo``; unresolvable → ``None``.
    """
    if name is None:
        return None
    parts = name.split(".")
    bindings = project.bindings.get(module, {})
    head = parts[0]
    if head in bindings:
        kind, target = bindings[head]
        if kind == "obj":
            return target + ("." + ".".join(parts[1:]) if len(parts) > 1 else "")
        # module binding: walk the dotted tail for the longest module prefix.
        mod, rest = target, parts[1:]
        while rest and f"{mod}.{rest[0]}" in project.modules:
            mod = f"{mod}.{rest[0]}"
            rest = rest[1:]
        if not rest:
            return mod
        return f"{mod}:{'.'.join(rest)}"
    # A name defined in this very module?
    own = f"{module}:{name}"
    if own in project.classes or own in project.functions:
        return own
    if len(parts) > 1:
        own_head = f"{module}:{head}"
        if own_head in project.classes:
            return f"{module}:{name}"
    return None


def _collect_functions(
    project: Project, module: str, rel: str, ctx: FileContext
) -> None:
    def add(node, cls_qname: str | None, cls_name: str | None) -> None:
        qual = f"{cls_name}.{node.name}" if cls_name else node.name
        qname = f"{module}:{qual}"
        project.functions[qname] = FunctionInfo(
            qname=qname, module=module, rel_path=rel, cls=cls_qname,
            name=node.name, node=node, ctx=ctx,
        )

    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(node, None, None)
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(stmt, f"{module}:{node.name}", node.name)


def _class_call_target(project: Project, module: str, node: ast.expr) -> str | None:
    """``ClassName(...)`` (possibly dotted) → class qname, else ``None``."""
    if not isinstance(node, ast.Call):
        return None
    resolved = _resolve_dotted(project, module, dotted_name(node.func))
    if resolved is not None and resolved in project.classes:
        return resolved
    return None


def _collect_attr_types(project: Project, cls: ClassInfo) -> None:
    module = cls.module
    for node in ast.walk(cls.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        attr = target.attr
        direct = _class_call_target(project, module, node.value)
        if direct is not None:
            cls.attr_types[attr] = direct
            continue
        elem = _element_class(project, module, node.value)
        if elem is not None:
            cls.attr_elem_types[attr] = elem


def _element_class(
    project: Project, module: str, node: ast.expr
) -> str | None:
    """Element class of ``tuple(C(...) for ...)`` / ``[C(...) for ...]``."""
    if isinstance(node, ast.Call):
        func = dotted_name(node.func)
        if func in ("tuple", "list") and len(node.args) == 1:
            return _element_class(project, module, node.args[0])
        return None
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return _class_call_target(project, module, node.elt)
    if isinstance(node, (ast.List, ast.Tuple)):
        classes = {
            _class_call_target(project, module, elt) for elt in node.elts
        }
        if len(classes) == 1:
            (only,) = classes
            return only
    return None


# --------------------------------------------------------------------------- #
# per-function summaries
# --------------------------------------------------------------------------- #


def _infer_var_types(project: Project, fn: FunctionInfo) -> dict[str, str]:
    module = fn.module
    types: dict[str, str] = {}
    args = fn.node.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *filter(None, (args.vararg, args.kwarg)),
    ):
        if arg.annotation is None:
            continue
        ann = arg.annotation
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.split("|")[0].strip()
        else:
            name = dotted_name(ann)
        resolved = _resolve_dotted(project, module, name)
        if resolved is not None and resolved in project.classes:
            types[arg.arg] = resolved

    own_cls = project.classes.get(fn.cls) if fn.cls else None

    def attr_elem(value: ast.expr) -> str | None:
        """Element class of ``self.X`` via the owning class's summary."""
        if (
            own_cls is not None
            and isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return own_cls.attr_elem_types.get(value.attr)
        return None

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            direct = _class_call_target(project, module, node.value)
            if direct is not None:
                types[target.id] = direct
                continue
            if isinstance(node.value, ast.Subscript):
                elem = attr_elem(node.value.value)
                if elem is not None:
                    types[target.id] = elem
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                elem = attr_elem(node.iter)
                if elem is not None:
                    types[node.target.id] = elem
    return types


def _lock_token(project: Project, fn: FunctionInfo, expr: ast.expr) -> str | None:
    """Normalize a ``with`` context expression into a lock token."""
    name = dotted_name(expr)
    if name is None:
        return None
    parts = name.split(".")
    if not is_lock_attr(parts[-1]):
        return None
    if parts[0] == "self" and len(parts) > 1:
        if fn.cls is not None:
            return f"{fn.cls}.{'.'.join(parts[1:])}"
        return f"?.{'.'.join(parts[1:])}"
    if len(parts) > 1:
        receiver_cls = fn.var_types.get(parts[0])
        if receiver_cls is not None:
            return f"{receiver_cls}.{'.'.join(parts[1:])}"
        return f"?.{'.'.join(parts[1:])}"
    # Bare ``with lock:`` local — bucket by name.
    return f"?.{parts[0]}"


def _resolve_call(
    project: Project, fn: FunctionInfo, node: ast.Call
) -> str | None:
    func = node.func
    module = fn.module
    if isinstance(func, ast.Attribute):
        base = func.value
        # self.method(...) — own class, MRO within the project.
        if isinstance(base, ast.Name) and base.id == "self" and fn.cls:
            resolved = project.resolve_method(fn.cls, func.attr)
            if resolved is not None:
                return resolved
            # self.attr.method(...) handled below via attr types.
        # self.attr.method(...) — through the owning class's attr types.
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and fn.cls is not None
        ):
            own_cls = project.classes.get(fn.cls)
            if own_cls is not None:
                attr_cls = own_cls.attr_types.get(base.attr)
                if attr_cls is not None:
                    return project.resolve_method(attr_cls, func.attr)
            return None
        # var.method(...) — through inferred local types.
        if isinstance(base, ast.Name) and base.id in fn.var_types:
            return project.resolve_method(fn.var_types[base.id], func.attr)
    resolved = _resolve_dotted(project, module, dotted_name(func))
    if resolved is None:
        return None
    if resolved in project.functions:
        return resolved
    if resolved in project.classes:
        return project.classes[resolved].methods.get("__init__")
    # ``mod:Class.method`` spelled through a module binding.
    if ":" in resolved:
        mod, qual = resolved.split(":", 1)
        if "." in qual:
            head, tail = qual.split(".", 1)
            cls = project.classes.get(f"{mod}:{head}")
            if cls is not None and "." not in tail:
                return project.resolve_method(f"{mod}:{head}", tail)
    return None


def _summarize_function(project: Project, fn: FunctionInfo) -> None:
    fn.var_types = _infer_var_types(project, fn)

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its body runs later, not under these locks.
            for child in ast.iter_child_nodes(node):
                visit(child, ())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            tokens = []
            for item in node.items:
                token = _lock_token(project, fn, item.context_expr)
                if token is not None:
                    for outer in held + tuple(tokens):
                        fn.lock_edges.append((outer, token, item.context_expr))
                    tokens.append(token)
                    fn.locks_acquired.add(token)
            inner = held + tuple(tokens)
            for item in node.items:
                visit(item.context_expr, held)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, ast.Call):
            fn.calls.append(CallSite(
                node=node,
                callee=_resolve_call(project, fn, node),
                locks_held=frozenset(held),
            ))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_attr(target)
                if attr is not None:
                    fn.self_writes.append(AttrWrite(
                        node=node, attr=attr, locked=bool(held)
                    ))
        elif isinstance(node, ast.Return) and node.value is not None:
            fn.returns.append(node.value)
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.node.body:
        visit(stmt, ())


def _self_attr(target: ast.AST) -> str | None:
    """The ``X`` of a ``self.X = ...`` or ``self.X[...] = ...`` target."""
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None
