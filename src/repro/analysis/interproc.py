"""Interprocedural rule families: numeric-safety, lock-order, stats-contract.

These are *project rules*: they override :meth:`Rule.check_project` and run
once per lint over the :class:`~repro.analysis.project.Project`, querying
the fixpoint analyses in :mod:`repro.analysis.dataflow` instead of a single
file's AST.

``numeric-safety``
    In the model paths (the code whose outputs back the canonical sweep
    sha), flag arithmetic whose operands can be int32-narrowed — including
    through project-function returns — float accumulations pinned to a
    non-float64 dtype, and summation idioms whose accumulation order
    differs from the pinned ``np.sum`` pairwise path.
``lock-order``
    Build the project-wide lock-acquisition graph (syntactic ``with``
    nesting plus calls made while holding a lock, closed over
    :func:`~repro.analysis.dataflow.transitive_acquires`) and report every
    cycle as a potential deadlock.
``stats-contract``
    Cross-process dict contracts: every key the fleet fan-in reads from a
    worker payload must be produced by some configured producer; every
    ``EVENT_SCHEMAS`` kind/field must have an emit site; reporter field
    reads under ``kind == ...`` guards must stay within that kind's schema.
"""

from __future__ import annotations

import ast
from typing import Mapping

from .context import FileContext, dotted_name
from .dataflow import (
    entry_locks,
    expr_is_narrow,
    narrow_returns,
    transitive_acquires,
)
from .findings import Finding
from .project import FunctionInfo, Project, _string_elements
from .rules import Rule, _matches, register

__all__ = [
    "NumericSafetyRule",
    "LockOrderRule",
    "StatsContractRule",
]


# --------------------------------------------------------------------------- #
# numeric-safety
# --------------------------------------------------------------------------- #

#: BinOps where a narrow-int operand can overflow silently.
_OVERFLOW_OPS = {ast.Mult: "*", ast.Add: "+", ast.Pow: "**"}

#: Reduction entry points whose accumulator dtype can be pinned via dtype=.
_REDUCTIONS = frozenset({
    "sum", "prod", "cumsum", "cumprod", "dot", "einsum", "matmul", "trace",
})

_FLOAT_NARROW_DTYPES = frozenset({
    "float32", "float16", "single", "half", "longdouble",
})

#: numpy array factories: a variable assigned from one is a known ndarray
#: (used to flag builtin ``sum()`` over arrays).
_NP_FACTORIES = frozenset({
    "array", "asarray", "arange", "zeros", "ones", "empty", "full",
    "linspace", "concatenate", "stack", "where", "diff", "repeat", "tile",
})


def _dtype_kwarg(node: ast.Call) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


def _dtype_last(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name = dotted_name(node)
    return name.split(".")[-1] if name else None


@register
class NumericSafetyRule(Rule):
    """Numeric invariants of the canonical sweep, checked statically.

    The sweep's byte-identity argument (``docs/batching.md``) rests on two
    properties of the model paths: index arithmetic happens at int64 (the
    int32 views exist only as scipy constructor inputs, after a bounds
    guard), and every float accumulation runs through numpy's default
    pairwise float64 reduction.  This rule flags the static violations:
    ``*``/``+``/``**``/``@`` where an operand is provably int32-or-narrower
    (including values returned by project helpers, via the narrow-returns
    fixpoint), reductions pinned to a narrow int or non-float64 float
    accumulator via ``dtype=``, and alternative summation idioms
    (``math.fsum``, builtin ``sum`` over a numpy array) whose accumulation
    order differs from the pinned pairwise path.  Floor-division, modulo
    and subtraction on narrow ints are allowed — they cannot overflow the
    values the bounds guard admits.
    """

    id = "numeric-safety"
    title = "int32 narrowing and accumulation-order hazards in model paths"
    default_model_paths = (
        "src/repro/machine", "src/repro/formats", "src/repro/core",
    )

    def __init__(self, settings: Mapping | None = None) -> None:
        super().__init__(settings)
        self.model_paths = tuple(
            self.settings.get("model-paths", self.default_model_paths)
        )
        self.model_exclude = tuple(self.settings.get("model-exclude", ()))

    def _in_scope(self, rel_path: str) -> bool:
        if self.model_exclude and _matches(rel_path, self.model_exclude):
            return False
        return _matches(rel_path, self.model_paths)

    def check_project(self, project: Project) -> list[Finding]:
        narrow_fn = narrow_returns(project)
        findings: list[Finding] = []
        for qname in sorted(project.functions):
            fn = project.functions[qname]
            if not self._in_scope(fn.rel_path):
                continue
            findings.extend(self._check_function(fn, narrow_fn))
        return findings

    def _check_function(
        self, fn: FunctionInfo, narrow_fn: dict[str, bool]
    ) -> list[Finding]:
        resolve = {id(c.node): c.callee for c in fn.calls}

        def resolve_call(call: ast.Call) -> str | None:
            return resolve.get(id(call))

        def is_narrow_fn(qname: str) -> bool:
            return narrow_fn.get(qname, False)

        # Forward pass: names bound to narrow expressions.
        narrow_vars: set[str] = set()
        np_array_vars: set[str] = set()
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if expr_is_narrow(
                node.value, narrow_fns=is_narrow_fn,
                resolve_call=resolve_call,
                narrow_vars=frozenset(narrow_vars),
            ):
                narrow_vars.add(target.id)
            if isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                if name is not None and len(name.split(".")) > 1 and (
                    name.split(".")[-1] in _NP_FACTORIES
                    and name.split(".")[0] in ("np", "numpy")
                ):
                    np_array_vars.add(target.id)

        def directly_narrow(expr: ast.expr) -> bool:
            """Narrow *at this node* — Name/Subscript/Call forms only, so a
            parent BinOp over an already-flagged BinOp is not re-flagged."""
            if isinstance(expr, (ast.Name, ast.Subscript, ast.Call)):
                return expr_is_narrow(
                    expr, narrow_fns=is_narrow_fn, resolve_call=resolve_call,
                    narrow_vars=frozenset(narrow_vars),
                )
            return False

        findings: list[Finding] = []
        ctx = fn.ctx
        for node in ast.walk(fn.node):
            if isinstance(node, ast.BinOp):
                op_type = type(node.op)
                if op_type in _OVERFLOW_OPS and (
                    directly_narrow(node.left) or directly_narrow(node.right)
                ):
                    findings.append(self.finding(
                        ctx, node,
                        f"'{_OVERFLOW_OPS[op_type]}' on an int32-narrowed "
                        "operand can overflow silently; do the arithmetic "
                        "at int64 and narrow only at the consumer boundary",
                    ))
                elif op_type is ast.MatMult and (
                    directly_narrow(node.left) or directly_narrow(node.right)
                ):
                    findings.append(self.finding(
                        ctx, node,
                        "'@' on an int32-narrowed operand accumulates in a "
                        "narrow dtype and can overflow; widen to int64 first",
                    ))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(
                    ctx, node, directly_narrow, np_array_vars
                ))
        return findings

    def _check_call(
        self, ctx: FileContext, node: ast.Call, directly_narrow,
        np_array_vars: set[str],
    ) -> list[Finding]:
        name = dotted_name(node.func)
        last = name.split(".")[-1] if name else (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        findings: list[Finding] = []
        if name in ("math.fsum", "fsum"):
            findings.append(self.finding(
                ctx, node,
                "math.fsum accumulates in shadow extended precision; its "
                "result differs from the pinned np.sum pairwise path that "
                "the canonical sha assumes",
            ))
            return findings
        if name == "sum" and node.args and (
            isinstance(node.args[0], ast.Name)
            and node.args[0].id in np_array_vars
        ):
            findings.append(self.finding(
                ctx, node,
                "builtin sum() over a numpy array accumulates strictly "
                "left-to-right; use np.sum so the pinned pairwise "
                "accumulation order holds",
            ))
            return findings
        is_np_reduce = name in ("np.add.reduce", "numpy.add.reduce")
        if last in _REDUCTIONS or is_np_reduce:
            dtype = _dtype_kwarg(node)
            if dtype is not None:
                dt = _dtype_last(dtype)
                from .dataflow import NARROW_INT_DTYPES

                if dt in NARROW_INT_DTYPES:
                    findings.append(self.finding(
                        ctx, node,
                        f"reduction pinned to narrow int accumulator "
                        f"dtype={dt}; overflow wraps silently",
                    ))
                elif dt in _FLOAT_NARROW_DTYPES:
                    findings.append(self.finding(
                        ctx, node,
                        f"float accumulation into dtype={dt}; model "
                        "reductions must accumulate in float64 to match "
                        "the canonical output",
                    ))
            if last in ("dot", "matmul") or is_np_reduce:
                for arg in node.args:
                    if directly_narrow(arg):
                        findings.append(self.finding(
                            ctx, node,
                            f"{last} on an int32-narrowed operand "
                            "accumulates in a narrow dtype and can "
                            "overflow; widen to int64 first",
                        ))
                        break
        return findings


# --------------------------------------------------------------------------- #
# lock-order
# --------------------------------------------------------------------------- #


@register
class LockOrderRule(Rule):
    """Cycles in the project-wide lock-acquisition graph.

    Nodes are normalized lock tokens (``module:Class.attr`` for
    class-resolvable receivers, ``?.attr`` buckets otherwise).  An edge
    ``A → B`` means some execution path acquires ``B`` while holding
    ``A``: either a syntactic ``with`` nesting inside one function, or a
    call made under ``A`` into a function whose transitive-acquires
    summary contains ``B``.  Any cycle — including a self-edge, i.e.
    re-acquiring a non-reentrant lock — is a potential deadlock: two
    threads traversing the cycle from different entry points can each
    hold the lock the other needs.  Each distinct cycle is reported once,
    anchored at one witnessed edge site.
    """

    id = "lock-order"
    title = "lock-acquisition cycles (potential deadlock)"
    default_paths = (
        "src/repro/engine", "src/repro/serve", "src/repro/fleet",
        "src/repro/learn", "src/repro/resilience",
    )

    def check_project(self, project: Project) -> list[Finding]:
        acquires = transitive_acquires(project)
        # (A, B) -> first witnessed (FunctionInfo, ast node).
        edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}

        def add_edge(a: str, b: str, fn: FunctionInfo, node: ast.AST) -> None:
            edges.setdefault((a, b), (fn, node))

        for qname in sorted(project.functions):
            fn = project.functions[qname]
            if not self.applies_to(fn.rel_path):
                continue
            for a, b, node in fn.lock_edges:
                add_edge(a, b, fn, node)
            for call in fn.calls:
                if not call.locks_held or call.callee is None:
                    continue
                for inner in sorted(acquires.get(call.callee, ())):
                    for outer in sorted(call.locks_held):
                        add_edge(outer, inner, fn, call.node)

        return self._report_cycles(edges)

    def _report_cycles(
        self, edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]]
    ) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        findings: list[Finding] = []
        seen_cycles: set[tuple[str, ...]] = set()
        for scc in _tarjan_sccs(graph):
            if len(scc) == 1:
                node = scc[0]
                if node not in graph.get(node, ()):
                    continue  # singleton without a self-loop: no cycle
            cycle = tuple(sorted(scc))
            if cycle in seen_cycles:
                continue
            seen_cycles.add(cycle)
            fn, node, order = self._anchor(cycle, edges)
            if len(cycle) == 1:
                message = (
                    f"lock {cycle[0]} is re-acquired while already held "
                    "(self-deadlock unless the lock is reentrant)"
                )
            else:
                path = " -> ".join(order + (order[0],))
                message = (
                    f"lock-order cycle {path}: two threads can each hold "
                    "a lock the other needs (potential deadlock)"
                )
            findings.append(self.finding(fn.ctx, node, message))
        return findings

    @staticmethod
    def _anchor(
        cycle: tuple[str, ...],
        edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]],
    ) -> tuple[FunctionInfo, ast.AST, tuple[str, ...]]:
        """A deterministic witnessed edge inside the cycle, plus a
        rotation of the cycle starting at that edge."""
        members = set(cycle)
        in_cycle = sorted(
            (a, b) for (a, b) in edges if a in members and b in members
        )
        a, b = in_cycle[0]
        fn, node = edges[(a, b)]
        if len(cycle) == 1:
            return fn, node, cycle
        # Rotate so the report path starts at the witnessed edge.
        order = [a]
        rest = [t for t in cycle if t != a]
        # Greedy walk along known edges for a readable path.
        cur = a
        pairs = {e for e in in_cycle}
        while rest:
            nxt = next(
                (t for t in rest if (cur, t) in pairs), rest[0]
            )
            order.append(nxt)
            rest.remove(nxt)
            cur = nxt
        return fn, node, tuple(order)


def _tarjan_sccs(graph: dict[str, set[str]]) -> list[list[str]]:
    """Iterative Tarjan: strongly connected components, deterministic."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph[root])))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
    return sccs


# --------------------------------------------------------------------------- #
# stats-contract
# --------------------------------------------------------------------------- #

#: Fields EventBus.emit stamps onto every event.
_IMPLICIT_EVENT_FIELDS = frozenset({"ts", "event", "kind"})


@register
class StatsContractRule(Rule):
    """Dict keys that cross a process boundary must have both ends.

    Three checks, all static:

    * **consumer keys** — for each configured consumer function (the
      fleet ``merge_stats`` fan-in, the learn ``/stats`` merge), every
      literal key it reads from an externally-supplied payload (a
      parameter or anything derived from one, including loops over
      module-level key tuples like ``SUMMED_COUNTERS``) must be produced
      by some configured producer function (dict-literal keys, ``d[k] =``
      stores, ``dict(k=...)``, ``{**base, ...}``).
    * **schema producers** — every kind declared in the event registry's
      ``EVENT_SCHEMAS`` dict literal must have at least one
      ``bus.emit("kind", ...)`` site somewhere in the project, and every
      declared field must appear at some emit site (a ``**splat`` emit
      covers all of that kind's fields).
    * **reporter fields** — in the configured reporter modules, reads of
      ``event["f"]`` / ``event.get("f")`` inside a ``kind == "K"`` branch
      must name a field of ``K``'s schema (plus the implicit ``ts`` /
      ``event`` stamps); ungoverned reads are checked against the union
      of all schemas.
    """

    id = "stats-contract"
    title = "cross-process dict-key contracts"
    default_registry_module = "repro.engine.events"
    default_consumers: tuple[str, ...] = ()
    default_producers: tuple[str, ...] = ()
    default_reporter_paths: tuple[str, ...] = ()

    def __init__(self, settings: Mapping | None = None) -> None:
        super().__init__(settings)
        self.registry_module = self.settings.get(
            "registry-module", self.default_registry_module
        )
        self.consumers = tuple(
            self.settings.get("consumers", self.default_consumers)
        )
        self.producers = tuple(
            self.settings.get("producers", self.default_producers)
        )
        self.reporter_paths = tuple(
            self.settings.get("reporter-paths", self.default_reporter_paths)
        )
        #: Keys assumed produced out-of-band (escape hatch for payloads
        #: built dynamically, e.g. HTTP-layer envelopes).
        self.assume_produced = frozenset(
            self.settings.get("assume-produced", ())
        )

    # ------------------------------ entry ------------------------------ #
    def check_project(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_consumers(project))
        findings.extend(self._check_schemas(project))
        findings.extend(self._check_reporters(project))
        return findings

    # --------------------------- consumers ----------------------------- #
    def _check_consumers(self, project: Project) -> list[Finding]:
        if not self.consumers:
            return []
        produced = self._produced_keys(project) | self.assume_produced
        findings: list[Finding] = []
        for qname in self.consumers:
            fn = project.functions.get(qname)
            if fn is None:
                continue
            reads = _external_key_reads(project, fn)
            local_written = _written_keys(fn.node)
            for key, node in reads:
                if key in produced or key in local_written:
                    continue
                findings.append(self.finding(
                    fn.ctx, node,
                    f"{fn.name} reads key {key!r} from a worker payload "
                    "but no configured producer ever writes it; the read "
                    "will always hit its default",
                ))
        return findings

    def _produced_keys(self, project: Project) -> frozenset[str]:
        keys: set[str] = set()
        for qname in self.producers:
            fn = project.functions.get(qname)
            if fn is not None:
                keys |= _written_keys(fn.node)
        return frozenset(keys)

    # ---------------------------- schemas ------------------------------ #
    def _schemas(
        self, project: Project
    ) -> tuple[FileContext | None, dict[str, tuple[frozenset[str], int]]]:
        """Statically parsed ``EVENT_SCHEMAS`` (field set + decl line)."""
        rel = project.modules.get(self.registry_module)
        if rel is None:
            return None, {}
        ctx = project.contexts[rel]
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            else:
                continue
            if not (
                isinstance(target, ast.Name)
                and target.id == "EVENT_SCHEMAS"
                and isinstance(value, ast.Dict)
            ):
                continue
            out: dict[str, tuple[frozenset[str], int]] = {}
            for key, val in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    continue
                fields = _string_elements(val) or ()
                out[key.value] = (frozenset(fields), key.lineno)
            return ctx, out
        return ctx, {}

    @staticmethod
    def _emit_sites(
        project: Project,
    ) -> dict[str, list[tuple[frozenset[str] | None, str]]]:
        """kind → list of (kwarg field set | None for **splat, rel_path)."""
        sites: dict[str, list[tuple[frozenset[str] | None, str]]] = {}
        for rel in sorted(project.contexts):
            ctx = project.contexts[rel]
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "emit"
                ):
                    continue
                target = dotted_name(func.value)
                if target is None or "bus" not in target.lower():
                    continue
                if not node.args or not (
                    isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                kind = node.args[0].value
                if any(kw.arg is None for kw in node.keywords):
                    sites.setdefault(kind, []).append((None, rel))
                else:
                    fields = frozenset(kw.arg for kw in node.keywords)
                    sites.setdefault(kind, []).append((fields, rel))
        return sites

    def _check_schemas(self, project: Project) -> list[Finding]:
        ctx, schemas = self._schemas(project)
        if ctx is None or not schemas:
            return []
        sites = self._emit_sites(project)
        findings: list[Finding] = []
        for kind in schemas:
            declared, lineno = schemas[kind]
            kind_sites = sites.get(kind, [])
            anchor = _LineAnchor(lineno)
            if not kind_sites:
                findings.append(self.finding(
                    ctx, anchor,
                    f"event kind {kind!r} is declared in EVENT_SCHEMAS but "
                    "never emitted anywhere in the project",
                ))
                continue
            if any(fields is None for fields, _ in kind_sites):
                continue  # a **splat emit can carry any declared field
            covered: set[str] = set()
            for fields, _ in kind_sites:
                covered |= fields
            for field in sorted(declared - covered):
                findings.append(self.finding(
                    ctx, anchor,
                    f"field {field!r} of event kind {kind!r} is declared "
                    "but no emit site ever produces it",
                ))
        return findings

    # --------------------------- reporters ----------------------------- #
    def _check_reporters(self, project: Project) -> list[Finding]:
        ctx, schemas = self._schemas(project)
        if not schemas or not self.reporter_paths:
            return []
        union_fields: set[str] = set(_IMPLICIT_EVENT_FIELDS)
        for fields, _ in schemas.values():
            union_fields |= fields
        findings: list[Finding] = []
        for rel in sorted(project.contexts):
            if not _matches(rel, self.reporter_paths):
                continue
            fctx = project.contexts[rel]
            for node in ast.walk(fctx.tree):
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                params = {a.arg for a in node.args.args}
                if "event" not in params:
                    continue
                findings.extend(self._check_reporter_fn(
                    fctx, node, schemas, frozenset(union_fields)
                ))
        return findings

    def _check_reporter_fn(
        self, ctx: FileContext, fn: ast.AST,
        schemas: dict[str, tuple[frozenset[str], int]],
        union_fields: frozenset[str],
    ) -> list[Finding]:
        findings: list[Finding] = []

        def allowed_for(kinds: frozenset[str]) -> frozenset[str]:
            if not kinds:
                return union_fields
            out = set(_IMPLICIT_EVENT_FIELDS)
            for k in kinds:
                out |= schemas.get(k, (frozenset(), 0))[0]
            return frozenset(out)

        def visit(node: ast.AST, kinds: frozenset[str]) -> None:
            if isinstance(node, ast.If):
                test_kinds = _kinds_in_test(node.test)
                visit(node.test, kinds)
                # Innermost governing compare wins; unknown tests inherit.
                body_kinds = test_kinds if test_kinds else kinds
                for child in node.body:
                    visit(child, body_kinds)
                for child in node.orelse:
                    visit(child, kinds)
                return
            key = _event_field_read(node)
            if key is not None and key not in allowed_for(kinds):
                scope = (
                    f"kind {sorted(kinds)!r}" if kinds else "any kind"
                )
                findings.append(self.finding(
                    ctx, node,
                    f"reporter reads event field {key!r} under {scope} "
                    "but no schema declares it; the read always misses",
                ))
            for child in ast.iter_child_nodes(node):
                visit(child, kinds)

        for stmt in fn.body:
            visit(stmt, frozenset())
        return findings


class _LineAnchor:
    """Minimal node stand-in: a finding anchored at a bare line number."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno


def _kinds_in_test(test: ast.expr) -> frozenset[str]:
    """``kind == "K"`` literals governing an If body (BoolOps included)."""
    kinds: set[str] = set()

    def scan(node: ast.expr) -> None:
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                scan(value)
            return
        if not isinstance(node, ast.Compare):
            return
        if not all(isinstance(op, ast.Eq) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        mentions_kind = any(
            (isinstance(o, ast.Name) and o.id == "kind")
            or (
                isinstance(o, ast.Subscript)
                and isinstance(o.slice, ast.Constant)
                and o.slice.value in ("event", "kind")
            )
            or (
                isinstance(o, ast.Call)
                and isinstance(o.func, ast.Attribute)
                and o.func.attr == "get"
                and o.args
                and isinstance(o.args[0], ast.Constant)
                and o.args[0].value in ("event", "kind")
            )
            for o in operands
        )
        if not mentions_kind:
            return
        for o in operands:
            if isinstance(o, ast.Constant) and isinstance(o.value, str):
                kinds.add(o.value)

    scan(test)
    return frozenset(kinds)


def _event_field_read(node: ast.AST) -> str | None:
    """The literal key of an ``event["f"]`` / ``event.get("f")`` read."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "event"
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "event"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


# --------------------------------------------------------------------------- #
# consumer-side taint + key collection helpers
# --------------------------------------------------------------------------- #

_TAINT_PROPAGATING_METHODS = frozenset({"get", "items", "values", "copy"})


def _written_keys(fn_node: ast.AST) -> frozenset[str]:
    """Every literal dict key the function writes, any way it can.

    Dict literals (``{"k": v}``, ``{**base, "k": v}``), subscript stores
    and aug-stores (``d["k"] = v``), and ``dict(k=...)`` keywords.
    """
    keys: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
        elif isinstance(node, ast.Call) and (
            isinstance(node.func, ast.Name) and node.func.id == "dict"
        ):
            for kw in node.keywords:
                if kw.arg is not None:
                    keys.add(kw.arg)
    return frozenset(keys)


def _key_set_vars(
    project: Project, fn: FunctionInfo
) -> dict[str, tuple[str, ...]]:
    """Loop variables ranging over module-level string-tuple constants.

    ``for key in SUMMED_COUNTERS:`` binds ``key`` to the tuple's elements;
    a read ``payload.get(key)`` then expands to every element.  Constants
    are resolved in the consumer's own module first, then through its
    import bindings.
    """
    consts = dict(project.module_constants(fn.module))
    for local, (kind, target) in project.bindings.get(fn.module, {}).items():
        if kind == "obj" and ":" in target:
            mod, name = target.split(":", 1)
            other = project.module_constants(mod)
            if name in other:
                consts[local] = other[name]
    out: dict[str, tuple[str, ...]] = {}

    def bind(target: ast.expr, iter_expr: ast.expr) -> None:
        iter_name = dotted_name(iter_expr)
        if isinstance(target, ast.Name) and iter_name in consts:
            # A variable reused across loops over different key tuples
            # expands to the union — over-approximate, which only makes
            # the produced-key requirement stricter, never looser.
            prior = out.get(target.id, ())
            merged = prior + tuple(
                k for k in consts[iter_name] if k not in prior
            )
            out[target.id] = merged

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, node.iter)
        elif isinstance(node, ast.comprehension):
            bind(node.target, node.iter)
    return out


def _external_key_reads(
    project: Project, fn: FunctionInfo
) -> list[tuple[str, ast.AST]]:
    """Literal keys ``fn`` reads from parameter-derived (external) values."""
    args = fn.node.args
    tainted: set[str] = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    }
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            tainted.add(extra.arg)

    def is_tainted(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Subscript):
            return is_tainted(expr.value)
        if isinstance(expr, ast.Call) and isinstance(
            expr.func, ast.Attribute
        ):
            if expr.func.attr in _TAINT_PROPAGATING_METHODS:
                return is_tainted(expr.func.value)
        return False

    # Propagate taint through assignments / loops until stable.
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and (
                    target.id not in tainted and is_tainted(node.value)
                ):
                    tainted.add(target.id)
                    changed = True
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if is_tainted(node.iter):
                    for name_node in ast.walk(node.target):
                        if isinstance(name_node, ast.Name) and (
                            name_node.id not in tainted
                        ):
                            tainted.add(name_node.id)
                            changed = True
            elif isinstance(node, ast.comprehension):
                if is_tainted(node.iter):
                    for name_node in ast.walk(node.target):
                        if isinstance(name_node, ast.Name) and (
                            name_node.id not in tainted
                        ):
                            tainted.add(name_node.id)
                            changed = True

    key_sets = _key_set_vars(project, fn)

    def keys_of(expr: ast.expr) -> tuple[str, ...]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return (expr.value,)
        if isinstance(expr, ast.Name) and expr.id in key_sets:
            return key_sets[expr.id]
        return ()

    reads: list[tuple[str, ast.AST]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Subscript) and is_tainted(node.value):
            for key in keys_of(node.slice):
                reads.append((key, node))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and is_tainted(node.func.value)
        ):
            for key in keys_of(node.args[0]):
                reads.append((key, node))
    return reads
