"""The rule set: project invariants as AST checks.

Each rule is a :class:`Rule` subclass registered with :func:`register`; the
runner instantiates every registered rule with its ``[tool.reprolint.rules.*]``
settings table and calls :meth:`Rule.check` once per applicable file.  Rules
share the parsed :class:`~repro.analysis.context.FileContext` — they never
re-parse, and path scoping (which files a rule applies to) lives in
configuration, not in the rule logic.

Shipped rules:

``determinism``
    No wall-clock reads, unseeded RNGs, or legacy global-state RNG calls in
    the model/simulator paths (``model-paths``), and no unsorted
    ``Path.glob`` / ``os.listdir``-style directory iteration anywhere:
    byte-determinism of the sweep is the repo's headline guarantee.
``atomic-write``
    Modules that own ``.repro_cache`` state must write through
    :func:`repro.ioutils.atomic_write_json` — never raw ``open(..., "w")``,
    ``json.dump`` or ``write_text`` — so readers can never observe a
    truncated cache file.
``lock-discipline``
    An attribute ever assigned under ``with self._lock:`` in a class is
    lock-protected: any later mutation outside a lock block (except in
    ``__init__``, before the object is shared) is a data race.
``event-schema``
    ``bus.emit(kind, ...)`` call sites must use a kind declared in
    :data:`repro.engine.events.EVENT_SCHEMAS` and pass exactly its declared
    fields; reporter modules may only compare ``kind`` against declared
    kinds.  Catches typo'd event names at lint time instead of as silently
    dropped progress lines.
``float-equality``
    No ``==`` / ``!=`` against non-zero float literals in model/simulator
    code (comparisons with literal ``0.0`` — breakdown guards à la
    ``krylov.py`` — are permitted).
``fault-site``
    Every ``fault_point("site")`` hook must name a site registered in
    :data:`repro.resilience.faults.SITE_CATALOG` — the one catalog fault
    plans are validated against — so a typo'd hook can't silently become
    un-injectable.
``envelope-io``
    Modules that own ``.repro_cache`` state must *read* through
    :func:`repro.ioutils.read_envelope` / ``read_envelope_lines`` — never
    raw ``json.loads`` / ``json.load`` / ``Path.read_text`` /
    ``read_bytes`` — so every cache load verifies the artifact's CRC32
    envelope and corruption is detected instead of parsed (the read-side
    twin of ``atomic-write``; see docs/durability.md).
"""

from __future__ import annotations

import ast
import inspect
from typing import TYPE_CHECKING, Iterable, Mapping

from .context import FileContext, dotted_name
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover
    from .project import Project

__all__ = [
    "Rule",
    "register",
    "RULE_REGISTRY",
    "DeterminismRule",
    "AtomicWriteRule",
    "EnvelopeIoRule",
    "LockDisciplineRule",
    "EventSchemaRule",
    "FloatEqualityRule",
    "FaultSiteRule",
    "SUPPRESSION_RULE_ID",
    "UNUSED_SUPPRESSION_RULE_ID",
]

#: Pseudo rule id used by the runner for malformed ``# repro: noqa`` comments.
SUPPRESSION_RULE_ID = "suppression"

#: Pseudo rule id used by the runner for ``# repro: noqa`` comments that no
#: longer suppress any finding (full runs only — a ``--rule`` subset can't
#: tell stale from out-of-scope).
UNUSED_SUPPRESSION_RULE_ID = "unused-suppression"

RULE_REGISTRY: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    RULE_REGISTRY[cls.id] = cls
    return cls


def _matches(rel_path: str, prefixes: Iterable[str]) -> bool:
    for prefix in prefixes:
        prefix = prefix.rstrip("/")
        if rel_path == prefix or rel_path.startswith(prefix + "/"):
            return True
    return False


class Rule:
    """Base class: path scoping plus a ``check(ctx)`` hook."""

    id: str = "?"
    title: str = ""
    #: Default path prefixes (relative to the lint root, posix) the rule
    #: applies to; empty means every linted file.  Overridden by the
    #: ``paths`` / ``exclude`` keys of the rule's settings table.
    default_paths: tuple[str, ...] = ()
    default_exclude: tuple[str, ...] = ()

    def __init__(self, settings: Mapping | None = None) -> None:
        settings = dict(settings or {})
        self.paths = tuple(settings.get("paths", self.default_paths))
        self.exclude = tuple(settings.get("exclude", self.default_exclude))
        self.settings = settings

    def applies_to(self, rel_path: str) -> bool:
        if self.exclude and _matches(rel_path, self.exclude):
            return False
        return not self.paths or _matches(rel_path, self.paths)

    def check(self, ctx: FileContext) -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def check_project(self, project: "Project") -> list[Finding]:
        """Whole-program hook: runs once per lint over the full project.

        Rules that override this are *project rules*: the runner calls
        ``check_project`` after every file is parsed and skips their
        per-file :meth:`check` (which remains available for the legacy
        single-file :func:`~repro.analysis.runner.lint_file` API).
        """
        return []

    @classmethod
    def is_project_rule(cls) -> bool:
        return cls.check_project is not Rule.check_project

    @classmethod
    def explain(cls) -> str:
        """Human-readable rationale for ``lint --explain <rule-id>``."""
        doc = inspect.cleandoc(cls.__doc__ or "").strip()
        header = f"{cls.id} — {cls.title}" if cls.title else cls.id
        return f"{header}\n\n{doc}" if doc else header

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 0),
            message=message,
            snippet=ctx.line_text(node),
        )


# --------------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------------- #

_TIME_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
})

_RNG_FACTORIES = frozenset({
    "np.random.default_rng", "numpy.random.default_rng",
})

_DIR_ITER_ATTRS = frozenset({"glob", "rglob", "iterdir"})
_DIR_ITER_CALLS = frozenset({"os.listdir", "os.scandir"})


@register
class DeterminismRule(Rule):
    """Wall clocks, unseeded RNGs and directory-order dependence.

    The wall-clock and RNG checks are scoped to the ``model-paths`` setting
    (the simulator/model code whose outputs must be byte-deterministic);
    timing/calibration modules are opted out via ``model-exclude``.  The
    unsorted-directory-iteration check applies to every linted file: resume
    and stats behavior must never depend on readdir order.
    """

    id = "determinism"
    title = "byte-determinism of model outputs"
    default_model_paths = (
        "src/repro/machine", "src/repro/formats", "src/repro/core",
    )
    #: Timing/calibration modules: they measure the wall clock by design.
    default_model_exclude = (
        "src/repro/machine/stream.py",
        "src/repro/core/selection.py",
        "src/repro/engine/pool.py",
        "src/repro/serve/service.py",
    )

    def __init__(self, settings: Mapping | None = None) -> None:
        super().__init__(settings)
        self.model_paths = tuple(
            self.settings.get("model-paths", self.default_model_paths)
        )
        self.model_exclude = tuple(
            self.settings.get("model-exclude", self.default_model_exclude)
        )

    def _in_model_paths(self, rel_path: str) -> bool:
        if self.model_exclude and _matches(rel_path, self.model_exclude):
            return False
        return _matches(rel_path, self.model_paths)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        model_scope = self._in_model_paths(ctx.rel_path)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if model_scope and name in _TIME_CALLS:
                findings.append(self.finding(
                    ctx, node,
                    f"wall-clock read {name}() in a model path; model "
                    "outputs must not depend on timing",
                ))
            elif model_scope and name in _RNG_FACTORIES:
                if not node.args and not node.keywords:
                    findings.append(self.finding(
                        ctx, node,
                        f"unseeded {name}() in a model path; pass an "
                        "explicit seed",
                    ))
            elif model_scope and name is not None and (
                name.startswith(("random.", "np.random.", "numpy.random."))
                and name not in _RNG_FACTORIES
            ):
                findings.append(self.finding(
                    ctx, node,
                    f"global-state RNG call {name}() in a model path; use "
                    "a seeded np.random.default_rng(seed)",
                ))
            elif self._is_unsorted_dir_iteration(ctx, node, name):
                findings.append(self.finding(
                    ctx, node,
                    "directory iteration without sorted(); readdir order "
                    "is filesystem-dependent",
                ))
        return findings

    @staticmethod
    def _is_unsorted_dir_iteration(
        ctx: FileContext, node: ast.Call, name: str | None
    ) -> bool:
        is_dir_iter = name in _DIR_ITER_CALLS or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DIR_ITER_ATTRS
        )
        if not is_dir_iter:
            return False
        for anc in ctx.ancestors(node):
            if (isinstance(anc, ast.Call)
                    and isinstance(anc.func, ast.Name)
                    and anc.func.id == "sorted"):
                return False
        return True


# --------------------------------------------------------------------------- #
# atomic-write
# --------------------------------------------------------------------------- #

_WRITE_MODES = frozenset("wxa+")


@register
class AtomicWriteRule(Rule):
    """Cache owners must write through ``atomic_write_json``.

    Scoped (via ``paths``) to the modules that own ``.repro_cache`` state;
    :mod:`repro.ioutils` itself — the one place the tmp-file + ``os.replace``
    dance is implemented — is simply not listed.
    """

    id = "atomic-write"
    title = "crash-safe cache writes"
    default_paths = (
        "src/repro/engine/shards.py",
        "src/repro/serve/store.py",
        "src/repro/core/profiling.py",
        "src/repro/bench/harness.py",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if name == "json.dump":
                findings.append(self.finding(
                    ctx, node,
                    "raw json.dump in a cache-owning module; route through "
                    "repro.ioutils.atomic_write_json",
                ))
            elif attr in ("write_text", "write_bytes"):
                findings.append(self.finding(
                    ctx, node,
                    f"raw Path.{attr} in a cache-owning module; route "
                    "through repro.ioutils.atomic_write_json",
                ))
            elif (name == "open" or attr == "open") and self._writes(node):
                findings.append(self.finding(
                    ctx, node,
                    "open() for writing in a cache-owning module; route "
                    "through repro.ioutils.atomic_write_json",
                ))
        return findings

    @staticmethod
    def _writes(node: ast.Call) -> bool:
        mode = None
        args = node.args
        # Path.open(mode) has mode first; builtin open(file, mode) second.
        is_method = isinstance(node.func, ast.Attribute)
        idx = 0 if is_method else 1
        if len(args) > idx:
            mode = args[idx]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return False  # default mode is read-only; dynamic modes skipped
        return any(c in _WRITE_MODES for c in mode.value)


# --------------------------------------------------------------------------- #
# envelope-io
# --------------------------------------------------------------------------- #


@register
class EnvelopeIoRule(Rule):
    """Cache owners must read through the verifying envelope helpers.

    The read-side twin of :class:`AtomicWriteRule`: a cache artifact
    parsed with raw ``json.loads`` / ``json.load`` (or slurped with
    ``Path.read_text`` / ``read_bytes`` first) skips the CRC32 envelope
    check, so a torn or bit-flipped file is *trusted* instead of
    quarantined.  Scoped to the modules that own ``.repro_cache`` state;
    :mod:`repro.ioutils` and :mod:`repro.durability` — where the
    verification itself lives — are simply not listed.  ``json.dumps`` is
    fine (serialization feeds the envelope writers); it is the decode
    direction that must verify.
    """

    id = "envelope-io"
    title = "verifying cache reads"
    default_paths = (
        "src/repro/engine/shards.py",
        "src/repro/serve/store.py",
        "src/repro/core/profiling.py",
        "src/repro/bench/harness.py",
        "src/repro/learn/registry.py",
        "src/repro/learn/tracelog.py",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            attr = (
                node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if name in ("json.loads", "json.load"):
                findings.append(self.finding(
                    ctx, node,
                    f"raw {name} in a cache-owning module; route through "
                    "repro.ioutils.read_envelope so corruption is "
                    "detected, not parsed",
                ))
            elif attr in ("read_text", "read_bytes"):
                findings.append(self.finding(
                    ctx, node,
                    f"raw Path.{attr} in a cache-owning module; route "
                    "through repro.ioutils.read_envelope / "
                    "read_envelope_lines",
                ))
        return findings


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #


@register
class LockDisciplineRule(Rule):
    """Attributes written under a lock are written *only* under a lock.

    For each class: any ``self.X`` (or ``self.X[...]``) assigned inside a
    ``with self.<...lock...>:`` block is considered lock-protected.  A
    later assignment or augmented assignment to the same attribute outside
    a lock block — anywhere but ``__init__``, which runs before the object
    is shared — is reported.  Reads are not checked (snapshotting a counter
    racily is a judgement call; torn writes never are).

    On full runs the check is *interprocedural*: a write inside a helper
    counts as locked when the caller-side entry-lock analysis proves some
    lock is held at every resolved call into that helper — so factoring
    ``with self._lock: self._stats[...] = v`` into an unlocked helper is
    neither a false positive (the caller holds the lock) nor a missed race
    (a helper reachable without the lock is still flagged).
    """

    id = "lock-discipline"
    title = "lock-protected attribute mutation"
    default_paths = ("src/repro/serve", "src/repro/engine")

    def check_project(self, project: "Project") -> list[Finding]:
        from .dataflow import entry_locks

        entry = entry_locks(project)
        # Gather writes per class across every function in scope.
        per_class: dict[str, list[tuple]] = {}
        for qname, fn in project.functions.items():
            if fn.cls is None or not self.applies_to(fn.rel_path):
                continue
            # A helper is effectively locked when every resolved call
            # into it provably holds some lock.
            fn_entry_locked = bool(entry.get(qname))
            for write in fn.self_writes:
                effective = write.locked or fn_entry_locked
                per_class.setdefault(fn.cls, []).append(
                    (fn, write, effective)
                )
        findings = []
        for cls_qname in sorted(per_class):
            writes = per_class[cls_qname]
            protected = {
                w.attr for _, w, effective in writes
                # Entry-lock-only writes count: an attribute mutated only
                # in helpers that every caller enters under a lock is
                # still lock-protected, so a new unlocked path is flagged.
                if effective
            }
            cls_name = cls_qname.split(":", 1)[1]
            for fn, write, effective in writes:
                if effective or write.attr not in protected:
                    continue
                if fn.name == "__init__":
                    continue
                findings.append(self.finding(
                    fn.ctx, write.node,
                    f"self.{write.attr} is assigned under a lock elsewhere "
                    f"in {cls_name} but mutated here without one (no lock "
                    "held at any resolved call site either)",
                ))
        return findings

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        return findings

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> list[Finding]:
        protected: set[str] = set()
        writes: list[tuple[ast.stmt, str, bool]] = []  # (node, attr, locked)
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self._self_attr(target)
                if attr is None:
                    continue
                locked = self._under_lock(ctx, node, cls)
                if locked:
                    protected.add(attr)
                writes.append((node, attr, locked))
        findings = []
        for node, attr, locked in writes:
            if locked or attr not in protected:
                continue
            fn = ctx.enclosing_function(node)
            if fn is not None and fn.name == "__init__":
                continue
            findings.append(self.finding(
                ctx, node,
                f"self.{attr} is assigned under a lock elsewhere in "
                f"{cls.name} but mutated here without one",
            ))
        return findings

    @staticmethod
    def _self_attr(target: ast.AST) -> str | None:
        """The ``X`` of a ``self.X = ...`` or ``self.X[...] = ...`` target."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
        return None

    @staticmethod
    def _under_lock(
        ctx: FileContext, node: ast.AST, cls: ast.ClassDef
    ) -> bool:
        for anc in ctx.ancestors(node):
            if anc is cls:
                return False
            if isinstance(anc, ast.With):
                for item in anc.items:
                    name = dotted_name(item.context_expr)
                    if name is not None and (
                        name.startswith("self.") and "lock" in name.lower()
                    ):
                        return True
        return False


# --------------------------------------------------------------------------- #
# event-schema
# --------------------------------------------------------------------------- #


@register
class EventSchemaRule(Rule):
    """Emit sites and reporters stay in sync with the event registry.

    Checks every ``<...bus...>.emit(kind, field=...)`` call with a literal
    kind: the kind must exist in the registry and the keyword fields must
    match its declared field set exactly (a ``**splat`` downgrades the
    check to kind membership only).  Inside the modules listed in
    ``reporter-paths``, comparisons of a bare ``kind`` variable against a
    string literal are also checked against the registry.
    """

    id = "event-schema"
    title = "registered engine event kinds and fields"
    default_reporter_paths = ("src/repro/engine/events.py",)

    def __init__(self, settings: Mapping | None = None) -> None:
        super().__init__(settings)
        self.reporter_paths = tuple(
            self.settings.get("reporter-paths", self.default_reporter_paths)
        )
        self._registry: Mapping[str, frozenset[str]] | None = None

    @property
    def registry(self) -> Mapping[str, frozenset[str]]:
        if self._registry is None:
            from ..engine.events import EVENT_SCHEMAS

            self._registry = EVENT_SCHEMAS
        return self._registry

    @registry.setter
    def registry(self, value: Mapping[str, frozenset[str]]) -> None:
        self._registry = value

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        reporter_scope = _matches(ctx.rel_path, self.reporter_paths)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_emit(ctx, node))
            elif reporter_scope and isinstance(node, ast.Compare):
                findings.extend(self._check_kind_compare(ctx, node))
        return findings

    def _check_emit(self, ctx: FileContext, node: ast.Call) -> list[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
            return []
        target = dotted_name(func.value)
        if target is None or "bus" not in target.lower():
            return []
        if not node.args or not (
            isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            return []  # dynamic kind: out of static reach
        kind = node.args[0].value
        if kind not in self.registry:
            return [self.finding(
                ctx, node,
                f"emit of unregistered event kind {kind!r}; declare it in "
                "repro.engine.events.EVENT_SCHEMAS",
            )]
        if any(kw.arg is None for kw in node.keywords):
            return []  # **fields splat: fields not statically known
        given = {kw.arg for kw in node.keywords}
        declared = self.registry[kind]
        findings = []
        missing = declared - given
        extra = given - declared
        if missing:
            findings.append(self.finding(
                ctx, node,
                f"emit({kind!r}) is missing declared field(s) "
                f"{sorted(missing)}",
            ))
        if extra:
            findings.append(self.finding(
                ctx, node,
                f"emit({kind!r}) passes undeclared field(s) "
                f"{sorted(extra)}; extend EVENT_SCHEMAS if intentional",
            ))
        return findings

    def _check_kind_compare(
        self, ctx: FileContext, node: ast.Compare
    ) -> list[Finding]:
        if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return []
        operands = [node.left, *node.comparators]
        names = {dotted_name(o) for o in operands}
        if "kind" not in names and not any(
            isinstance(o, ast.Subscript)
            and isinstance(o.slice, ast.Constant)
            and o.slice.value == "event"
            for o in operands
        ):
            return []
        findings = []
        for operand in operands:
            if (isinstance(operand, ast.Constant)
                    and isinstance(operand.value, str)
                    and operand.value not in self.registry):
                findings.append(self.finding(
                    ctx, node,
                    f"comparison against unregistered event kind "
                    f"{operand.value!r}",
                ))
        return findings


# --------------------------------------------------------------------------- #
# fault-site
# --------------------------------------------------------------------------- #


@register
class FaultSiteRule(Rule):
    """``fault_point`` hooks name sites registered in the catalog.

    Fault plans are validated against
    :data:`repro.resilience.faults.SITE_CATALOG` at construction, so a
    hook whose literal site string is missing from the catalog can never
    be triggered by any plan — it is dead chaos surface, usually a typo.
    Calls with a dynamic (non-literal) site are out of static reach and
    skipped; calls with no site argument are reported.
    """

    id = "fault-site"
    title = "registered fault-injection sites"

    def __init__(self, settings: Mapping | None = None) -> None:
        super().__init__(settings)
        self._catalog: frozenset[str] | None = None

    @property
    def catalog(self) -> frozenset[str]:
        if self._catalog is None:
            from ..resilience.faults import SITE_CATALOG

            self._catalog = frozenset(SITE_CATALOG)
        return self._catalog

    @catalog.setter
    def catalog(self, value) -> None:
        self._catalog = frozenset(value)

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if callee != "fault_point":
                continue
            if not node.args:
                findings.append(self.finding(
                    ctx, node,
                    "fault_point() call without a site argument",
                ))
                continue
            site = node.args[0]
            if not (isinstance(site, ast.Constant)
                    and isinstance(site.value, str)):
                continue  # dynamic site: out of static reach
            if site.value not in self.catalog:
                findings.append(self.finding(
                    ctx, node,
                    f"fault_point site {site.value!r} is not registered in "
                    "repro.resilience.faults.SITE_CATALOG; no plan can "
                    "ever trigger it",
                ))
        return findings


# --------------------------------------------------------------------------- #
# float-equality
# --------------------------------------------------------------------------- #


@register
class FloatEqualityRule(Rule):
    """No exact equality against non-zero float literals in model code.

    Comparisons with literal ``0.0`` are permitted: exact-zero breakdown
    guards (``if beta == 0.0``) are the standard Krylov idiom and are
    well-defined in IEEE 754.
    """

    id = "float-equality"
    title = "exact float comparison"
    default_paths = (
        "src/repro/machine",
        "src/repro/core",
        "src/repro/formats",
        "src/repro/solvers",
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            for operand in [node.left, *node.comparators]:
                if (isinstance(operand, ast.Constant)
                        and isinstance(operand.value, float)
                        and operand.value != 0.0):
                    findings.append(self.finding(
                        ctx, node,
                        f"exact comparison against float literal "
                        f"{operand.value!r}; use a tolerance "
                        "(math.isclose / abs diff)",
                    ))
                    break
        return findings
