"""SARIF 2.1.0 output for GitHub code scanning.

:func:`to_sarif` converts post-baseline findings into one SARIF run so CI
can upload them with ``github/codeql-action/upload-sarif`` and surface
them as pull-request annotations.  The emitter sticks to the stable core
of the spec: one ``run``, driver-level rule metadata (id, short
description, full ``--explain`` text), and one ``result`` per finding
with a physical location and the linter's content fingerprint (line
numbers excluded, so annotations survive unrelated edits — the same
property the JSON baseline relies on).
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from .findings import Finding
from .rules import RULE_REGISTRY

__all__ = ["to_sarif", "sarif_json", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Pseudo rules the runner emits that have no registry class.
_PSEUDO_RULES: Mapping[str, str] = {
    "parse": "file does not parse",
    "suppression": "malformed # repro: noqa suppression",
    "unused-suppression": "stale # repro: noqa suppression",
}


def _rule_metadata(rule_ids: list[str]) -> list[dict]:
    rules = []
    for rule_id in rule_ids:
        cls = RULE_REGISTRY.get(rule_id)
        if cls is not None:
            rules.append({
                "id": rule_id,
                "name": cls.__name__,
                "shortDescription": {"text": cls.title or rule_id},
                "fullDescription": {"text": cls.explain()},
                "defaultConfiguration": {"level": "error"},
            })
        else:
            rules.append({
                "id": rule_id,
                "shortDescription": {
                    "text": _PSEUDO_RULES.get(rule_id, rule_id)
                },
                "defaultConfiguration": {"level": "error"},
            })
    return rules


def to_sarif(
    findings: Iterable[Finding], *, tool_version: str = "2.0"
) -> dict:
    """One SARIF 2.1.0 log dict covering ``findings``."""
    findings = list(findings)
    rule_ids = sorted({f.rule for f in findings} | set(RULE_REGISTRY))
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "ROOT",
                    },
                    "region": {"startLine": max(f.line, 1)},
                },
            }],
            "partialFingerprints": {
                "reprolint/v1": f.fingerprint,
            },
        }
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": (
                        "https://github.com/repro/repro/blob/main/docs/lint.md"
                    ),
                    "version": tool_version,
                    "rules": _rule_metadata(rule_ids),
                },
            },
            "originalUriBaseIds": {
                "ROOT": {"description": {
                    "text": "project root (pyproject.toml directory)",
                }},
            },
            "results": results,
        }],
    }


def sarif_json(findings: Iterable[Finding]) -> str:
    return json.dumps(to_sarif(findings), indent=2, sort_keys=False)
