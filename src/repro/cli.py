"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table1
    python -m repro sweep --progress        # run & cache the full sweep
    python -m repro table2 table3 fig2 fig3 fig4 table4 colind
    python -m repro all                     # everything, in paper order
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench import experiments
from .bench.harness import SweepConfig, load_or_run_sweep

__all__ = ["main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "table4",
    "colind",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv",
        description=(
            "Reproduction of 'Performance Models for Blocked Sparse "
            "Matrix-Vector Multiplication Kernels' (ICPP 2009)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=_EXPERIMENTS + ("sweep", "all"),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="directory for the cached sweep results",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-matrix progress while sweeping",
    )
    return parser


def _run_one(name: str, sweep) -> str:
    if name == "table1":
        return experiments.table1().render()
    if name == "table2":
        return experiments.table2(sweep).render()
    if name == "table3":
        return experiments.table3(sweep).render()
    if name == "fig2":
        return experiments.figure2(sweep).render()
    if name == "fig3":
        return "\n\n".join(
            experiments.figure3(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "fig4":
        return "\n\n".join(
            experiments.figure4(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "table4":
        return experiments.table4(sweep).render()
    if name == "colind":
        return experiments.colind_zero().render()
    raise ValueError(name)  # pragma: no cover - argparse restricts choices


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(_EXPERIMENTS)

    needs_sweep = any(
        e in ("table2", "table3", "fig2", "fig3", "fig4", "table4", "sweep")
        for e in wanted
    )
    sweep = None
    if needs_sweep:
        sweep = load_or_run_sweep(
            SweepConfig(), cache_dir=args.cache_dir, progress=args.progress
        )
        if "sweep" in wanted:
            print(
                f"sweep ready: {len(sweep.matrices)} matrices, "
                f"{sum(len(m.records) for m in sweep.matrices)} records "
                f"({sweep.elapsed_s:.0f}s)"
            )
            wanted = [e for e in wanted if e != "sweep"]

    for name in wanted:
        print(_run_one(name, sweep))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
