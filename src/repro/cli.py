"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table1
    python -m repro sweep --progress              # full sweep, all cores
    python -m repro sweep --jobs 2 --run-log run.jsonl
    python -m repro sweep --matrices 1,27,30 --precisions dp --threads 1
    python -m repro sweep --fresh                 # ignore partial shards
    python -m repro table2 table3 fig2 fig3 fig4 table4 colind
    python -m repro all                           # everything, paper order
    python -m repro advise pwtk --top 3           # format advisor, one matrix
    python -m repro advise path/to/matrix.mtx --no-prune
    python -m repro serve --port 8077             # advisor HTTP service
    python -m repro serve --port 0 --request-timeout 30 --max-inflight 4
    python -m repro serve --fault-plan plan.json  # chaos drill (docs/resilience.md)
    python -m repro serve --learn --train-interval 30  # online learning (docs/learning.md)
    python -m repro train                         # offline refit from the trace
    python -m repro fleet --workers 4 --port 8077 # sharded fleet (docs/serving.md)
    python -m repro loadtest --mix chaos --seed 7 # deterministic load harness
    python -m repro lint                          # invariant linter (see docs/lint.md)
    python -m repro lint --rule determinism --format json
    python -m repro fsck                          # verify the cache tree (docs/durability.md)
    python -m repro fsck --repair --gc --max-bytes 50000000

Sweeps run on the :mod:`repro.engine` worker pool: ``--jobs N`` picks the
number of worker processes (default: all cores), completed per-matrix
shards persist under ``<cache-dir>/shards/`` so an interrupted sweep
resumes where it stopped (``--resume``, the default; ``--fresh`` discards
them), and ``--run-log PATH`` appends machine-readable JSONL events
(shard start/finish/retry/quarantine, throughput, worker utilization).
``--matrices/--precisions/--threads`` restrict the sweep for quick runs;
each restriction is a separately-cached configuration.
"""

from __future__ import annotations

import argparse
import sys
import threading
from pathlib import Path
from typing import Sequence

from .bench import experiments
from .bench.harness import SweepConfig, load_or_run_sweep

__all__ = ["main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "table4",
    "colind",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv",
        description=(
            "Reproduction of 'Performance Models for Blocked Sparse "
            "Matrix-Vector Multiplication Kernels' (ICPP 2009)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=_EXPERIMENTS + ("sweep", "all"),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="directory for the cached sweep results",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-shard progress while sweeping",
    )
    engine = parser.add_argument_group("sweep engine")
    engine.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: all cores)",
    )
    resume = engine.add_mutually_exclusive_group()
    resume.add_argument(
        "--resume",
        dest="resume",
        action="store_true",
        default=True,
        help="reuse shards from an interrupted sweep (default)",
    )
    resume.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="discard partial shards and recompute everything",
    )
    engine.add_argument(
        "--run-log",
        default=None,
        metavar="PATH",
        help="append machine-readable JSONL engine events to PATH",
    )
    _add_fault_plan_flag(engine)
    engine.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the per-shard phase-timing breakdown "
            "(convert/stats/simulate/models seconds)"
        ),
    )
    engine.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        default=True,
        help=(
            "evaluate candidates one cell at a time instead of through the "
            "whole-matrix array program (bit-identical escape hatch)"
        ),
    )
    engine.add_argument(
        "--compare-batched",
        action="store_true",
        help=(
            "run the configured sweep through both the batched and the "
            "per-cell paths, diff the records field-by-field and print the "
            "first divergence (exit 1 if any)"
        ),
    )
    subset = parser.add_argument_group(
        "sweep subsetting (each combination caches separately)"
    )
    subset.add_argument(
        "--matrices",
        default=None,
        metavar="I,J,...",
        help="restrict the sweep to these 1-based suite indices",
    )
    subset.add_argument(
        "--precisions",
        default=None,
        metavar="P,...",
        help="restrict to these precisions (from: sp,dp)",
    )
    subset.add_argument(
        "--threads",
        default=None,
        metavar="T,...",
        help="restrict to these thread counts (from: 1,2,4)",
    )
    return parser


def _add_fault_plan_flag(parser) -> None:
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help=(
            "install a chaos fault-injection plan: inline JSON or a path "
            "to a JSON file (see docs/resilience.md); default: the "
            "REPRO_FAULT_PLAN environment variable, if set"
        ),
    )


def _apply_fault_plan(spec: str | None) -> str | None:
    """Install the requested fault plan; returns an error message or None.

    ``--fault-plan`` wins over ``REPRO_FAULT_PLAN``; with neither set this
    is a no-op.  The env plan is re-read *strictly* here: the tolerant
    import-time hook only warns on a malformed plan, but an operator who
    reached the CLI intending chaos should get a hard error instead of a
    silently fault-free run.
    """
    from .resilience.faults import (
        install_plan,
        install_plan_from_env,
        load_plan_spec,
    )

    try:
        if spec is not None:
            install_plan(load_plan_spec(spec))
        else:
            install_plan_from_env()
    except (ValueError, OSError) as exc:
        return f"invalid fault plan: {exc}"
    return None


def _config_from_args(args: argparse.Namespace) -> SweepConfig:
    kwargs: dict = {}
    if args.matrices is not None:
        kwargs["suite_indices"] = tuple(
            int(s) for s in args.matrices.split(",") if s
        )
    if args.precisions is not None:
        kwargs["precisions"] = tuple(
            s for s in args.precisions.split(",") if s
        )
    if args.threads is not None:
        kwargs["thread_counts"] = tuple(
            int(s) for s in args.threads.split(",") if s
        )
    return SweepConfig(**kwargs)


def _validate_sweep_args(args: argparse.Namespace) -> str | None:
    """A human-readable problem with the sweep flags, or ``None``."""
    if args.jobs is not None and args.jobs < 1:
        return f"--jobs must be >= 1, got {args.jobs}"
    config = _config_from_args(args)
    if not config.precisions:
        return "--precisions selected nothing"
    if not config.thread_counts:
        return "--threads selected nothing"
    if config.suite_indices is not None and not config.suite_indices:
        return "--matrices selected no suite entries"
    try:
        config.entries()
    except KeyError as exc:
        return str(exc.args[0])
    return None


def _run_one(name: str, sweep) -> str:
    if name == "table1":
        return experiments.table1().render()
    if name == "table2":
        return experiments.table2(sweep).render()
    if name == "table3":
        return experiments.table3(sweep).render()
    if name == "fig2":
        return experiments.figure2(sweep).render()
    if name == "fig3":
        return "\n\n".join(
            experiments.figure3(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "fig4":
        return "\n\n".join(
            experiments.figure4(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "table4":
        return experiments.table4(sweep).render()
    if name == "colind":
        return experiments.colind_zero().render()
    raise ValueError(name)  # pragma: no cover - argparse restricts choices


def _build_advise_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv advise",
        description=(
            "Recommend the fastest (format, block, implementation) for a "
            "matrix — a suite entry name/index or a Matrix Market file."
        ),
    )
    parser.add_argument(
        "matrix",
        help="suite entry name, 1-based suite index, or path to a .mtx file",
    )
    parser.add_argument(
        "--model",
        default="overlap",
        choices=("mem", "memcomp", "overlap"),
        help="performance model used for the ranking (default: overlap)",
    )
    parser.add_argument(
        "--precision", default="dp", choices=("sp", "dp"),
        help="value precision (default: dp)",
    )
    parser.add_argument(
        "--top", type=int, default=3, metavar="N",
        help="how many ranked candidates to print (default: 3)",
    )
    parser.add_argument(
        "--no-prune",
        dest="prune",
        action="store_false",
        help="evaluate the exhaustive candidate space (no feature pruning)",
    )
    parser.add_argument(
        "--no-cache",
        dest="use_cache",
        action="store_false",
        help="skip the recommendation cache (always recompute)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="directory for the recommendation cache",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full recommendation as JSON instead of a table",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the evaluation's phase-timing breakdown",
    )
    _add_fault_plan_flag(parser)
    return parser


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv serve",
        description=(
            "Run the advisor HTTP service (POST /advise, GET /healthz, "
            "GET /stats)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8077,
        help="port to listen on; 0 picks a free one (printed on startup)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="directory for the recommendation cache",
    )
    fleet = parser.add_argument_group("fleet")
    fleet.add_argument(
        "--profile-dir",
        default=None,
        metavar="DIR",
        help=(
            "directory for the calibrated-profile store (default: the "
            "cache dir); fleet workers point this at a shared dir so only "
            "the first worker pays calibration"
        ),
    )
    fleet.add_argument(
        "--worker-id", type=int, default=None, metavar="N",
        help="stamp this id into /stats (set by the fleet supervisor)",
    )
    fleet.add_argument(
        "--warmup",
        action="store_true",
        help=(
            "calibrate in the background on startup; /readyz answers 503 "
            "until the profile is ready"
        ),
    )
    hardening = parser.add_argument_group("hardening")
    hardening.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help=(
            "concurrent /advise requests admitted before shedding with a "
            "503 (default: 8)"
        ),
    )
    hardening.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-request deadline; an over-budget advise answers 504 "
            "(default: unbounded)"
        ),
    )
    hardening.add_argument(
        "--max-body-bytes", type=int, default=None, metavar="BYTES",
        help="request-body ceiling; bigger bodies answer 413 (default: 8 MiB)",
    )
    hardening.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "how long a SIGTERM drain waits for in-flight requests "
            "(default: 10)"
        ),
    )
    learn = parser.add_argument_group("online learning (docs/learning.md)")
    learn.add_argument(
        "--learn",
        action="store_true",
        help=(
            "enable the online training loop: trace-log every request, "
            "shadow-evaluate the learned selector, serve model-guided "
            "answers when a model is published"
        ),
    )
    learn.add_argument(
        "--train-interval", type=float, default=None, metavar="SECONDS",
        help=(
            "refit and hot-swap the model in-process every SECONDS "
            "(default: no in-process trainer; run 'repro train' offline)"
        ),
    )
    learn.add_argument(
        "--holdout-mod", type=int, default=8, metavar="N",
        help=(
            "hold out 1-in-N matrix fingerprints for shadow evaluation; "
            "they are always served by the analytic model (default: 8)"
        ),
    )
    learn.add_argument(
        "--drift-threshold", type=float, default=0.5, metavar="GAP",
        help=(
            "rolling holdout-disagreement gap that trips the drift "
            "alarm into model-based fallback (default: 0.5)"
        ),
    )
    learn.add_argument(
        "--drift-window", type=int, default=32, metavar="N",
        help="rolling-window length for the shadow gap (default: 32)",
    )
    _add_fault_plan_flag(parser)
    return parser


def _advise_main(argv: Sequence[str]) -> int:
    import json as _json

    from .serve.service import AdvisorService

    args = _build_advise_parser().parse_args(argv)
    if args.top < 1:
        print(f"error: --top must be >= 1, got {args.top}", file=sys.stderr)
        return 2
    error = _apply_fault_plan(args.fault_plan)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = AdvisorService(cache_dir=args.cache_dir)
    try:
        rec = service.advise(
            args.matrix,
            model=args.model,
            precision=args.precision,
            prune=args.prune,
            use_cache=args.use_cache,
        )
    except Exception as exc:  # surface as a CLI error, not a traceback
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        payload = rec.to_payload()
        payload["cache_hit"] = rec.cache_hit
        payload["elapsed_s"] = rec.elapsed_s
        print(_json.dumps(payload, indent=2))
        return 0
    source = "cache" if rec.cache_hit else "evaluated"
    print(
        f"{args.matrix}: {rec.nrows} x {rec.ncols}, {rec.nnz} nonzeros"
        f"  [{source} {rec.n_candidates_evaluated}/{rec.n_candidates_total}"
        f" candidates, {rec.elapsed_s:.2f}s]"
    )
    width = max(len(r.label) for r in rec.top(args.top))
    for rank, r in enumerate(rec.top(args.top), start=1):
        print(
            f"  {rank}. {r.label:<{width}}  "
            f"predicted {r.predicted_s * 1e3:.3f} ms/spmv"
        )
    if args.profile:
        if rec.phase_timings:
            breakdown = " ".join(
                f"{k}={v:.3f}s" for k, v in sorted(rec.phase_timings.items())
            )
            print(f"  phases: {breakdown}")
        else:
            print("  phases: n/a (served from a cache entry without timings)")
    return 0


def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv lint",
        description=(
            "AST-based invariant linter: determinism, atomic-write, lock "
            "and event-schema discipline (see docs/lint.md)."
        ),
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; sarif = SARIF 2.1.0 for "
             "GitHub code scanning)",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="ID",
        help="print what a rule checks and why, then exit",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with every current finding and exit 0",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help=(
            "project root containing pyproject.toml (default: nearest "
            "ancestor of the working directory)"
        ),
    )
    return parser


def _lint_main(argv: Sequence[str]) -> int:
    import json as _json

    from .analysis import (
        apply_baseline,
        find_project_root,
        load_baseline,
        load_config,
        run_lint,
        save_baseline,
    )

    args = _build_lint_parser().parse_args(argv)
    if args.explain is not None:
        from .analysis import RULE_REGISTRY

        cls = RULE_REGISTRY.get(args.explain)
        if cls is None:
            known = ", ".join(sorted(RULE_REGISTRY))
            print(
                f"error: unknown rule id {args.explain!r}; known: {known}",
                file=sys.stderr,
            )
            return 2
        print(cls.explain())
        return 0
    root = args.root if args.root is not None else find_project_root()
    config = load_config(root)
    only = tuple(args.rule) if args.rule else None
    try:
        result = run_lint(config, only=only)
        baseline = load_baseline(config.baseline_path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        save_baseline(config.baseline_path, result.findings)
        print(
            f"baseline updated: {len(result.findings)} finding(s) recorded "
            f"in {config.baseline_path}"
        )
        return 0

    new, baselined = apply_baseline(result.findings, baseline)
    if args.format == "sarif":
        from .analysis import sarif_json

        print(sarif_json(new))
        return 1 if new else 0
    if args.format == "json":
        print(_json.dumps({
            "findings": [f.to_payload() for f in new],
            "files_checked": result.files_checked,
            "suppressed": result.suppressed,
            "baselined": baselined,
            "clean": not new,
        }, indent=2))
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"checked {result.files_checked} file(s): "
            f"{len(new)} finding(s), {result.suppressed} suppressed, "
            f"{baselined} baselined"
        )
        print(summary if not new else f"\n{summary}")
    return 1 if new else 0


def _serve_main(argv: Sequence[str]) -> int:
    import errno

    from .durability.fsck import fsck_tree
    from .serve import server as server_mod
    from .serve.service import AdvisorService

    args = _build_serve_parser().parse_args(argv)
    error = _apply_fault_plan(args.fault_plan)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.train_interval is not None and not args.learn:
        print("error: --train-interval requires --learn", file=sys.stderr)
        return 2
    # Heal the cache partition before any store opens it (and before the
    # server answers /readyz): corrupt artifacts quarantine, torn trace
    # segments are rewritten, orphaned tmp files go — a worker restarted
    # after a hard crash starts from a verified tree.
    fsck_report = fsck_tree(args.cache_dir, repair=True)
    if fsck_report.findings:
        print(
            f"fsck: repaired cache {args.cache_dir} — "
            + ", ".join(
                f"{kind}: {n}" for kind, n in sorted(
                    fsck_report.counts().items()
                )
            ),
            file=sys.stderr,
            flush=True,
        )
    service_kwargs: dict = {"worker_id": args.worker_id}
    if args.profile_dir is not None:
        from .core.profiling import ProfileStore

        service_kwargs["profile_cache"] = ProfileStore(args.profile_dir)
    if args.learn:
        from .learn import LearnConfig

        if args.holdout_mod < 1:
            print(
                f"error: --holdout-mod must be >= 1, got {args.holdout_mod}",
                file=sys.stderr,
            )
            return 2
        service_kwargs["learn_config"] = LearnConfig(
            holdout_mod=args.holdout_mod,
            drift_threshold=args.drift_threshold,
            drift_window=args.drift_window,
            train_interval_s=args.train_interval,
        )
    service = AdvisorService(cache_dir=args.cache_dir, **service_kwargs)
    if service.learn is not None and args.train_interval is not None:
        service.learn.start_trainer()
    if args.warmup:
        service.start_warmup()
    kwargs: dict = {}
    if args.max_inflight is not None:
        kwargs["max_inflight"] = args.max_inflight
    if args.request_timeout is not None:
        kwargs["request_timeout_s"] = args.request_timeout
    if args.max_body_bytes is not None:
        kwargs["max_body_bytes"] = args.max_body_bytes
    if args.drain_timeout is not None:
        kwargs["drain_timeout_s"] = args.drain_timeout
    try:
        server = server_mod.create_server(
            service, host=args.host, port=args.port, **kwargs
        )
    except OSError as exc:
        if exc.errno == errno.EADDRINUSE:
            print(
                f"error: port {args.port} on {args.host} is already in use "
                "— a stale 'repro serve' process may still be listening; "
                "stop it or pass a different --port (0 picks a free one)",
                file=sys.stderr,
            )
            return 1
        raise
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"advisor listening on http://{host}:{port}"
        "  (POST /advise, GET /healthz, /readyz, /stats)",
        flush=True,
    )
    clean = server_mod.run_server(server)
    if service.learn is not None:
        service.learn.stop()
    return 0 if clean else 1


def _build_train_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv train",
        description=(
            "Refit the learned selector from the request trace a "
            "learn-enabled advisor logged, and publish the model as a "
            "versioned artifact (docs/learning.md).  A running 'serve "
            "--learn' on the same cache dir hot-swaps it without restart."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="cache root holding the trace log and the model store",
    )
    parser.add_argument(
        "--min-samples", type=int, default=8, metavar="N",
        help="eligible trace records required to publish (default: 8)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=4, metavar="N",
        help="decision-tree depth limit (default: 4)",
    )
    parser.add_argument(
        "--min-samples-leaf", type=int, default=2, metavar="N",
        help="minimum samples per tree leaf (default: 2)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the training summary as JSON",
    )
    return parser


def _train_main(argv: Sequence[str]) -> int:
    import json as _json

    from .learn import ModelRegistry, TraceLog, train_once

    args = _build_train_parser().parse_args(argv)
    tracelog = TraceLog(args.cache_dir)
    registry = ModelRegistry(args.cache_dir)
    summary = train_once(
        tracelog,
        registry,
        trigger="cli",
        min_samples=args.min_samples,
        max_depth=args.max_depth,
        min_samples_leaf=args.min_samples_leaf,
    )
    if args.json:
        print(_json.dumps(summary, indent=2))
    elif summary["published"]:
        print(
            f"published model {summary['version']} "
            f"({summary['samples']} samples from {summary['records']} "
            f"trace records, {summary['elapsed_s']:.2f}s)"
        )
    else:
        print(
            f"not published: {summary['records']} trace record(s), "
            f"{summary['samples']} eligible — need --min-samples "
            f"{args.min_samples} model-made records with features "
            "(run traffic through 'repro serve --learn' first)"
        )
    return 0 if summary["published"] else 1


def _build_fleet_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv fleet",
        description=(
            "Run a multi-process advisor fleet: N supervised 'repro serve' "
            "workers behind a content-sharded balancer (docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes to supervise (default: 2)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8077,
        help=(
            "balancer port; 0 picks a free one (printed on startup); "
            "workers always bind ephemeral ports"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help=(
            "cache root; each worker owns <cache-dir>/fleet/worker-<id>/ "
            "and all share the profile store at <cache-dir>"
        ),
    )
    parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="per-worker admission bound (default: the server default of 8)",
    )
    parser.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline forwarded to every worker",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="per-worker SIGTERM drain budget",
    )
    _add_fault_plan_flag(parser)
    return parser


def _fleet_main(argv: Sequence[str]) -> int:
    import signal

    from .fleet import (
        BalancerRequestHandler,
        FleetBalancer,
        FleetConfig,
        FleetSupervisor,
    )

    args = _build_fleet_parser().parse_args(argv)
    try:
        config = FleetConfig(
            workers=args.workers,
            cache_dir=args.cache_dir,
            host=args.host,
            max_inflight=args.max_inflight,
            request_timeout_s=args.request_timeout,
            drain_timeout_s=args.drain_timeout,
            # Workers re-parse the spec themselves; validate it up front so
            # a typo fails here, not N times in worker stderr logs.
            fault_plan=args.fault_plan,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fault_plan is not None:
        error = _apply_fault_plan(args.fault_plan)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
    supervisor = FleetSupervisor(config)
    print(
        f"starting {args.workers} worker(s) "
        f"(cache root {args.cache_dir})...",
        flush=True,
    )
    try:
        supervisor.start()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    balancer = FleetBalancer(
        (args.host, args.port), BalancerRequestHandler, supervisor
    )
    host, port = balancer.server_address[0], balancer.server_address[1]
    print(
        f"fleet balancer listening on http://{host}:{port}"
        f"  ({args.workers} workers; POST /advise, GET /healthz, /readyz, "
        "/stats)",
        flush=True,
    )

    stop = threading.Event()
    installed: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
            stop.set()

        for sig in (signal.SIGTERM, signal.SIGINT):
            installed[sig] = signal.signal(sig, _request_stop)
    loop = threading.Thread(target=balancer.serve_forever, daemon=True)
    loop.start()
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        balancer.shutdown()
        balancer.server_close()
        loop.join(timeout=5)
        clean = supervisor.shutdown()
        for sig, old in installed.items():
            signal.signal(sig, old)
    return 0 if clean else 1


def _build_loadtest_parser() -> argparse.ArgumentParser:
    from .fleet.replay import DEFAULT_MATRICES, MIXES

    parser = argparse.ArgumentParser(
        prog="repro-spmv loadtest",
        description=(
            "Replay a deterministic traffic mix against a freshly spawned "
            "fleet and print the benchmark table (docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--mix", choices=MIXES, default="steady",
        help="traffic shape (default: steady)",
    )
    parser.add_argument(
        "--seed", type=int, default=1337,
        help="replay seed; equal seeds give byte-identical request "
        "sequences (default: 1337)",
    )
    parser.add_argument(
        "--requests", type=int, default=60, metavar="N",
        help="requests to replay (default: 60)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent closed-loop clients (default: 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="fleet size (default: 2)",
    )
    parser.add_argument(
        "--matrices", default=",".join(DEFAULT_MATRICES), metavar="NAMES",
        help=(
            "comma-separated suite entry names to draw requests from "
            f"(default: {','.join(DEFAULT_MATRICES)})"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="cache root for the spawned fleet",
    )
    parser.add_argument(
        "--single",
        action="store_true",
        help=(
            "drive one worker directly instead of a balanced fleet "
            "(the single-process baseline; ignores --workers)"
        ),
    )
    parser.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the serial cache-warming pass before the measured run",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the table as JSON to this path",
    )
    return parser


def _loadtest_main(argv: Sequence[str]) -> int:
    import json as _json

    from .fleet import (
        BalancerRequestHandler,
        FleetBalancer,
        FleetConfig,
        FleetSupervisor,
        WorkerProcess,
        build_plan,
        run_load,
        warm_fleet,
    )

    args = _build_loadtest_parser().parse_args(argv)
    matrices = tuple(s for s in args.matrices.split(",") if s)
    try:
        plan = build_plan(args.mix, args.seed, args.requests, matrices)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    fault_plan = (
        _json.dumps(plan.fault_plan) if plan.fault_plan is not None else None
    )
    # Chaos budget: shed (503) and deadline (504) are documented, anything
    # else — connection resets included — is a violation.
    allowed = (200, 503, 504) if args.mix == "chaos" else (200,)

    supervisor = None
    balancer = None
    single = None
    loop = None
    try:
        if args.single:
            single = WorkerProcess(
                0, cache_dir=args.cache_dir, fault_plan=fault_plan
            )
            single.spawn()
            if not single.wait_ready(300.0):
                print("error: worker never became ready", file=sys.stderr)
                return 1
            base_url = single.base_url
            on_midpoint = None
            workers = 1
        else:
            config = FleetConfig(
                workers=args.workers,
                cache_dir=args.cache_dir,
                fault_plan=fault_plan,
            )
            supervisor = FleetSupervisor(config)
            supervisor.start()
            balancer = FleetBalancer(
                ("127.0.0.1", 0), BalancerRequestHandler, supervisor
            )
            loop = threading.Thread(
                target=balancer.serve_forever, daemon=True
            )
            loop.start()
            host, port = balancer.server_address[:2]
            base_url = f"http://{host}:{port}"
            workers = args.workers
            victim = args.seed % args.workers
            sup = supervisor

            def on_midpoint() -> None:
                sup.kill_worker(victim)
            if plan.kill_worker_at is None:
                on_midpoint = None
        print(
            f"loadtest: mix={plan.mix} seed={plan.seed} "
            f"requests={len(plan.requests)} clients={args.clients} "
            f"workers={workers} target={base_url}",
            file=sys.stderr,
            flush=True,
        )
        if not args.no_warm:
            warm_fleet(base_url, plan)
        table = run_load(
            base_url,
            plan,
            clients=args.clients,
            allowed_statuses=allowed,
            on_midpoint=on_midpoint,
        )
        table["workers"] = workers
        table["single"] = bool(args.single)
    finally:
        if balancer is not None:
            balancer.shutdown()
            balancer.server_close()
            if loop is not None:
                loop.join(timeout=5)
        if supervisor is not None:
            supervisor.shutdown()
        if single is not None:
            single.stop()
    print(_json.dumps(table, indent=2))
    if args.output is not None:
        Path(args.output).write_text(
            _json.dumps(table, indent=2) + "\n", encoding="utf-8"
        )
    if table["violations"]:
        print(
            f"error: {len(table['violations'])} request(s) outside the "
            f"status budget {sorted(allowed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _build_fsck_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv fsck",
        description=(
            "Verify every cache artifact's checksummed envelope across "
            "the cache root and all fleet worker partitions; optionally "
            "repair (quarantine corrupt artifacts, rewrite torn trace "
            "segments, sweep orphaned tmp files) and garbage-collect "
            "(docs/durability.md).  Exit 0 when the tree is clean, 1 "
            "when unrepaired problems remain."
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="cache root to verify (default: .repro_cache)",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help=(
            "heal what verification finds: quarantine corrupt artifacts, "
            "rewrite torn trace segments, remove stale tmp files"
        ),
    )
    parser.add_argument(
        "--gc",
        action="store_true",
        help=(
            "after verification, delete rebuildable artifacts oldest-"
            "first until the tree fits --max-bytes (profiles, the model "
            "pointer and the model it references are never collected)"
        ),
    )
    parser.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="size bound for --gc",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    return parser


def _fsck_main(argv: Sequence[str]) -> int:
    import json as _json

    from .durability.fsck import fsck_tree

    args = _build_fsck_parser().parse_args(argv)
    if args.gc and args.max_bytes is None:
        print("error: --gc requires --max-bytes", file=sys.stderr)
        return 2
    if args.max_bytes is not None and not args.gc:
        print("error: --max-bytes requires --gc", file=sys.stderr)
        return 2
    if args.max_bytes is not None and args.max_bytes < 0:
        print(
            f"error: --max-bytes must be >= 0, got {args.max_bytes}",
            file=sys.stderr,
        )
        return 2
    report = fsck_tree(
        args.cache_dir,
        repair=args.repair,
        gc_max_bytes=args.max_bytes if args.gc else None,
    )
    if args.format == "json":
        print(_json.dumps(report.to_payload(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _compare_batched(config: SweepConfig, progress: bool) -> int:
    """``--compare-batched``: run both sweep paths and diff every record.

    Runs serially and uncached (the point is to execute both paths, not to
    read a cache), sharing one profile calibration.  Prints the first
    field-level divergence; exit 1 on any difference.
    """
    from .bench.harness import diff_sweep_results, run_sweep
    from .core.profiling import ProfileCache

    profile_cache = ProfileCache()
    batched = run_sweep(
        config=config, progress=progress, profile_cache=profile_cache,
        batch=True,
    )
    percell = run_sweep(
        config=config, progress=progress, profile_cache=profile_cache,
        batch=False,
    )
    diff = diff_sweep_results(batched, percell)
    n_records = sum(len(m.records) for m in batched.matrices)
    if diff is None:
        identical = batched.canonical_json() == percell.canonical_json()
        print(
            f"compare-batched: OK — {n_records} records across "
            f"{len(batched.matrices)} matrices identical "
            f"(canonical bytes match: {identical})"
        )
        return 0 if identical else 1
    print(f"compare-batched: DIVERGENCE — {diff}")
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "advise":
        return _advise_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "train":
        return _train_main(argv[1:])
    if argv and argv[0] == "fleet":
        return _fleet_main(argv[1:])
    if argv and argv[0] == "loadtest":
        return _loadtest_main(argv[1:])
    if argv and argv[0] == "fsck":
        return _fsck_main(argv[1:])
    if argv and argv[0] == "lint":
        try:
            return _lint_main(argv[1:])
        except BrokenPipeError:
            # stdout piped into a pager/head that exited early; not an
            # error — mirror the conventional SIGPIPE exit status.
            sys.stderr.close()
            return 141
    args = _build_parser().parse_args(argv)
    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(_EXPERIMENTS)

    needs_sweep = any(
        e in ("table2", "table3", "fig2", "fig3", "fig4", "table4", "sweep")
        for e in wanted
    )
    sweep = None
    if needs_sweep:
        error = _validate_sweep_args(args) or _apply_fault_plan(
            args.fault_plan
        )
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.compare_batched:
            return _compare_batched(_config_from_args(args), args.progress)
        sweep = load_or_run_sweep(
            _config_from_args(args),
            cache_dir=args.cache_dir,
            progress=args.progress,
            jobs=args.jobs,  # None = os.cpu_count(), resolved by the engine
            resume=args.resume,
            run_log=args.run_log,
            profile=args.profile,
            batch=args.batch,
        )
        if sweep.missing:
            print(
                "warning: sweep is partial — quarantined matrices: "
                + ", ".join(str(i) for i in sweep.missing),
                file=sys.stderr,
            )
        if "sweep" in wanted:
            print(
                f"sweep ready: {len(sweep.matrices)} matrices, "
                f"{sum(len(m.records) for m in sweep.matrices)} records "
                f"({sweep.elapsed_s:.0f}s)"
            )
            wanted = [e for e in wanted if e != "sweep"]

    for name in wanted:
        print(_run_one(name, sweep))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
