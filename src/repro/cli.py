"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro table1
    python -m repro sweep --progress              # full sweep, all cores
    python -m repro sweep --jobs 2 --run-log run.jsonl
    python -m repro sweep --matrices 1,27,30 --precisions dp --threads 1
    python -m repro sweep --fresh                 # ignore partial shards
    python -m repro table2 table3 fig2 fig3 fig4 table4 colind
    python -m repro all                           # everything, paper order

Sweeps run on the :mod:`repro.engine` worker pool: ``--jobs N`` picks the
number of worker processes (default: all cores), completed per-matrix
shards persist under ``<cache-dir>/shards/`` so an interrupted sweep
resumes where it stopped (``--resume``, the default; ``--fresh`` discards
them), and ``--run-log PATH`` appends machine-readable JSONL events
(shard start/finish/retry/quarantine, throughput, worker utilization).
``--matrices/--precisions/--threads`` restrict the sweep for quick runs;
each restriction is a separately-cached configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .bench import experiments
from .bench.harness import SweepConfig, load_or_run_sweep

__all__ = ["main"]

_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "table4",
    "colind",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-spmv",
        description=(
            "Reproduction of 'Performance Models for Blocked Sparse "
            "Matrix-Vector Multiplication Kernels' (ICPP 2009)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=_EXPERIMENTS + ("sweep", "all"),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro_cache",
        help="directory for the cached sweep results",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-shard progress while sweeping",
    )
    engine = parser.add_argument_group("sweep engine")
    engine.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sweep (default: all cores)",
    )
    resume = engine.add_mutually_exclusive_group()
    resume.add_argument(
        "--resume",
        dest="resume",
        action="store_true",
        default=True,
        help="reuse shards from an interrupted sweep (default)",
    )
    resume.add_argument(
        "--fresh",
        dest="resume",
        action="store_false",
        help="discard partial shards and recompute everything",
    )
    engine.add_argument(
        "--run-log",
        default=None,
        metavar="PATH",
        help="append machine-readable JSONL engine events to PATH",
    )
    subset = parser.add_argument_group(
        "sweep subsetting (each combination caches separately)"
    )
    subset.add_argument(
        "--matrices",
        default=None,
        metavar="I,J,...",
        help="restrict the sweep to these 1-based suite indices",
    )
    subset.add_argument(
        "--precisions",
        default=None,
        metavar="P,...",
        help="restrict to these precisions (from: sp,dp)",
    )
    subset.add_argument(
        "--threads",
        default=None,
        metavar="T,...",
        help="restrict to these thread counts (from: 1,2,4)",
    )
    return parser


def _config_from_args(args: argparse.Namespace) -> SweepConfig:
    kwargs: dict = {}
    if args.matrices is not None:
        kwargs["suite_indices"] = tuple(
            int(s) for s in args.matrices.split(",") if s
        )
    if args.precisions is not None:
        kwargs["precisions"] = tuple(
            s for s in args.precisions.split(",") if s
        )
    if args.threads is not None:
        kwargs["thread_counts"] = tuple(
            int(s) for s in args.threads.split(",") if s
        )
    return SweepConfig(**kwargs)


def _validate_sweep_args(args: argparse.Namespace) -> str | None:
    """A human-readable problem with the sweep flags, or ``None``."""
    if args.jobs is not None and args.jobs < 1:
        return f"--jobs must be >= 1, got {args.jobs}"
    config = _config_from_args(args)
    if not config.precisions:
        return "--precisions selected nothing"
    if not config.thread_counts:
        return "--threads selected nothing"
    if config.suite_indices is not None and not config.suite_indices:
        return "--matrices selected no suite entries"
    try:
        config.entries()
    except KeyError as exc:
        return str(exc.args[0])
    return None


def _run_one(name: str, sweep) -> str:
    if name == "table1":
        return experiments.table1().render()
    if name == "table2":
        return experiments.table2(sweep).render()
    if name == "table3":
        return experiments.table3(sweep).render()
    if name == "fig2":
        return experiments.figure2(sweep).render()
    if name == "fig3":
        return "\n\n".join(
            experiments.figure3(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "fig4":
        return "\n\n".join(
            experiments.figure4(sweep, p).render() for p in ("sp", "dp")
        )
    if name == "table4":
        return experiments.table4(sweep).render()
    if name == "colind":
        return experiments.colind_zero().render()
    raise ValueError(name)  # pragma: no cover - argparse restricts choices


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(_EXPERIMENTS)

    needs_sweep = any(
        e in ("table2", "table3", "fig2", "fig3", "fig4", "table4", "sweep")
        for e in wanted
    )
    sweep = None
    if needs_sweep:
        error = _validate_sweep_args(args)
        if error is not None:
            print(f"error: {error}", file=sys.stderr)
            return 2
        sweep = load_or_run_sweep(
            _config_from_args(args),
            cache_dir=args.cache_dir,
            progress=args.progress,
            jobs=args.jobs,  # None = os.cpu_count(), resolved by the engine
            resume=args.resume,
            run_log=args.run_log,
        )
        if sweep.missing:
            print(
                "warning: sweep is partial — quarantined matrices: "
                + ", ".join(str(i) for i in sweep.missing),
                file=sys.stderr,
            )
        if "sweep" in wanted:
            print(
                f"sweep ready: {len(sweep.matrices)} matrices, "
                f"{sum(len(m.records) for m in sweep.matrices)} records "
                f"({sweep.elapsed_s:.0f}s)"
            )
            wanted = [e for e in wanted if e != "sweep"]

    for name in wanted:
        print(_run_one(name, sweep))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
