"""Shared filesystem helpers: atomic JSON writes and stale-tmp cleanup.

Every persistent artifact in this package — the monolithic sweep cache, the
engine's per-matrix shards, the advisor's recommendation entries, the
calibrated machine profiles — reaches disk through :func:`atomic_write_json`,
so readers only ever see a complete old file or a complete new one.  The
write goes to a pid-stamped ``<name>.<pid>-<seq>.tmp`` sibling first and is
then renamed over the target; the per-process sequence number keeps
concurrent threads writing the same target from sharing a tmp file.

Two failure modes used to leak those tmp files:

* an exception between creating the tmp file and renaming it (full disk,
  unserializable payload surfacing mid-write, permission loss) — now handled
  by the ``try``/``finally``-style cleanup in :func:`atomic_write_json`;
* a hard crash (``kill -9``, OOM) that no in-process cleanup can catch —
  handled by :func:`remove_stale_tmp_files`, which every cache-directory
  owner calls on open to sweep up orphans whose writer is provably gone.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import time
from pathlib import Path

from .resilience.faults import fault_point

__all__ = [
    "CACHE_DECODE_ERRORS",
    "atomic_write_json",
    "append_jsonl",
    "append_jsonl_lines",
    "append_jsonl_many",
    "remove_stale_tmp_files",
]

logger = logging.getLogger(__name__)

#: Exceptions that mark a cache file as corrupt (truncated write, schema
#: drift, hand-edited JSON) rather than as a programming error.
CACHE_DECODE_ERRORS = (json.JSONDecodeError, KeyError, TypeError, ValueError)

#: Age past which a ``*.tmp`` file carrying no recognizable writer pid is
#: considered orphaned.
STALE_TMP_AGE_S = 3600.0

#: Per-process sequence for tmp-file names: two threads saving the same
#: target concurrently must not share a tmp file, or the loser's
#: ``os.replace`` finds it already renamed away.
_TMP_SEQ = itertools.count()


def atomic_write_json(path: str | Path, payload: object) -> None:
    """Write ``payload`` as JSON atomically (tmp file + ``os.replace``).

    Readers see either the old content or the new one, never a truncated
    target.  If anything raises between creating the tmp file and renaming
    it, the tmp file is removed before the exception propagates; tmp files
    a hard crash still leaves behind are swept by
    :func:`remove_stale_tmp_files` on the next cache-dir open.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".{os.getpid()}-{next(_TMP_SEQ)}.tmp")
    try:
        # Chaos hooks (no-ops unless a FaultPlan is installed): the first
        # can corrupt the serialized text, the second models a crash in
        # the window between the tmp write and the rename.
        tmp.write_text(
            fault_point("ioutils.atomic_write_json.data", json.dumps(payload))
        )
        fault_point("ioutils.atomic_write_json.replace")
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def append_jsonl(path: str | Path, record: dict) -> int:
    """Append ``record`` as one JSON line to ``path``; returns bytes written.

    The line is serialized first and written with a single ``write`` call on
    an ``O_APPEND`` handle, so concurrent appenders (threads or processes)
    interleave whole lines, never fragments.  Readers tolerate a torn final
    line from a hard crash by skipping lines that fail to parse — this is a
    log, not a datastore, which is why the tmp-file + rename dance of
    :func:`atomic_write_json` would be the wrong tool here.
    """
    return append_jsonl_many(path, (record,))


def append_jsonl_many(path: str | Path, records) -> int:
    """Append each of ``records`` as a JSON line; returns bytes written.

    One ``open`` and one ``write`` for the whole batch — the amortized
    shape behind a buffered log's flush.  Same whole-lines-only guarantee
    as :func:`append_jsonl`.
    """
    return append_jsonl_lines(
        path, [json.dumps(record, sort_keys=True) for record in records]
    )


def append_jsonl_lines(path: str | Path, lines) -> int:
    """Append pre-serialized JSON ``lines`` (no trailing newlines).

    The serialize-once half of :func:`append_jsonl_many`: callers that
    already hold each record's canonical JSON text (a buffered log doing
    its own size accounting) append it without a second ``json.dumps``
    pass.  Returns bytes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = "".join(line + "\n" for line in lines)
    if not text:
        return 0
    with path.open("a", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
    return len(text.encode("utf-8"))


def _writer_pid(name: str) -> int | None:
    """The pid embedded in a ``<name>.<pid>-<seq>.tmp`` file name, if any.

    Plain ``<name>.<pid>.tmp`` stamps (the pre-sequence layout) parse too.
    """
    parts = name.split(".")
    if len(parts) < 3 or parts[-1] != "tmp":
        return None
    pid_part = parts[-2].split("-", 1)[0]
    if pid_part.isdigit():
        return int(pid_part)
    return None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the pid exists but belongs to someone else.
        return True
    return True


def remove_stale_tmp_files(
    root: str | Path, *, max_age_s: float = STALE_TMP_AGE_S
) -> list[Path]:
    """Delete orphaned ``*.tmp`` files directly under ``root``.

    A tmp file is orphaned when the writer pid embedded in its name is no
    longer alive, or — for tmp files with no recognizable pid — when it is
    older than ``max_age_s``.  Tmp files of live writers (concurrent
    processes mid-write, including this one) are left alone.  Returns the
    removed paths.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    removed: list[Path] = []
    for tmp in sorted(root.glob("*.tmp")):
        pid = _writer_pid(tmp.name)
        if pid is not None:
            stale = not _pid_alive(pid)
        else:
            try:
                stale = time.time() - tmp.stat().st_mtime > max_age_s
            except OSError:
                continue  # vanished underneath us
        if not stale:
            continue
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            continue
        logger.warning("removed stale tmp file %s", tmp)
        removed.append(tmp)
    return removed
