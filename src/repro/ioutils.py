"""Shared filesystem helpers: atomic JSON writes and stale-tmp cleanup.

Every persistent artifact in this package — the monolithic sweep cache, the
engine's per-matrix shards, the advisor's recommendation entries, the
calibrated machine profiles — reaches disk through :func:`atomic_write_json`,
so readers only ever see a complete old file or a complete new one.  The
write goes to a pid-stamped ``<name>.<pid>-<seq>.tmp`` sibling first and is
then renamed over the target; the per-process sequence number keeps
concurrent threads writing the same target from sharing a tmp file.

Two failure modes used to leak those tmp files:

* an exception between creating the tmp file and renaming it (full disk,
  unserializable payload surfacing mid-write, permission loss) — now handled
  by the ``try``/``finally``-style cleanup in :func:`atomic_write_json`;
* a hard crash (``kill -9``, OOM) that no in-process cleanup can catch —
  handled by :func:`remove_stale_tmp_files`, which every cache-directory
  owner calls on open to sweep up orphans whose writer is provably gone.

Atomicity alone cannot detect content damage (a corrupting writer, disk
rot, a hand-edited file), so artifacts additionally carry a checksummed
envelope: :func:`write_envelope` / :func:`read_envelope` wrap
:mod:`repro.durability.envelope` around the same atomic-write machinery,
and :func:`append_envelope_lines` / :func:`read_envelope_lines` do the
per-line equivalent for JSONL logs.  Write failures (``ENOSPC`` and
friends) surface as the typed :class:`~repro.errors.CacheWriteError`, so
cache owners degrade to serving from memory instead of crashing.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import time
from pathlib import Path

from .durability.envelope import (
    EnvelopeError,
    decode_envelope,
    decode_line,
    encode_envelope,
    encode_line,
)
from .errors import CacheWriteError
from .resilience.faults import fault_point

__all__ = [
    "CACHE_DECODE_ERRORS",
    "CacheWriteError",
    "EnvelopeError",
    "atomic_write_json",
    "atomic_write_text",
    "write_envelope",
    "read_envelope",
    "read_envelope_lines",
    "append_jsonl",
    "append_jsonl_lines",
    "append_jsonl_many",
    "append_envelope_lines",
    "remove_stale_tmp_files",
]

logger = logging.getLogger(__name__)

#: Exceptions that mark a cache file as corrupt (truncated write, schema
#: drift, hand-edited JSON) rather than as a programming error.
CACHE_DECODE_ERRORS = (json.JSONDecodeError, KeyError, TypeError, ValueError)

#: Age past which a ``*.tmp`` file carrying no recognizable writer pid is
#: considered orphaned.
STALE_TMP_AGE_S = 3600.0

#: Per-process sequence for tmp-file names: two threads saving the same
#: target concurrently must not share a tmp file, or the loser's
#: ``os.replace`` finds it already renamed away.
_TMP_SEQ = itertools.count()


def atomic_write_json(path: str | Path, payload: object) -> None:
    """Write ``payload`` as JSON atomically (tmp file + ``os.replace``).

    Readers see either the old content or the new one, never a truncated
    target.  If anything raises between creating the tmp file and renaming
    it, the tmp file is removed before the exception propagates; tmp files
    a hard crash still leaves behind are swept by
    :func:`remove_stale_tmp_files` on the next cache-dir open.
    """
    _atomic_write_text(Path(path), json.dumps(payload))


def write_envelope(
    path: str | Path, payload: object, *, schema: int = 1
) -> None:
    """Write ``payload`` atomically inside a checksummed envelope.

    The durable counterpart of :func:`atomic_write_json`: same tmp-file +
    ``os.replace`` discipline, but the artifact carries the magic / CRC32
    header of :mod:`repro.durability.envelope`, so :func:`read_envelope`
    *detects* any torn or mangled content instead of trusting it.
    ``schema`` is the owning store's schema number (surfaced to ``repro
    fsck``); the writer generation token is stamped automatically.
    """
    gen = f"{os.getpid()}-{next(_TMP_SEQ)}"
    _atomic_write_text(
        Path(path), encode_envelope(payload, schema=schema, gen=gen)
    )


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write raw ``text`` atomically (tmp + rename, same as the JSON
    variants).  For callers that build their own line format — e.g.
    ``repro fsck`` rewriting a JSONL segment minus its torn lines."""
    _atomic_write_text(Path(path), text)


def _atomic_write_text(path: Path, text: str) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            path.name + f".{os.getpid()}-{next(_TMP_SEQ)}.tmp"
        )
    except OSError as exc:
        raise CacheWriteError(
            f"cannot prepare cache write to {path}: {exc}"
        ) from exc
    try:
        # Chaos hooks (no-ops unless a FaultPlan is installed): the first
        # can corrupt the serialized text, the second models a crash in
        # the window between the tmp write and the rename.
        tmp.write_text(
            fault_point("ioutils.atomic_write_json.data", text)
        )
        fault_point("ioutils.atomic_write_json.replace")
        os.replace(tmp, path)
    except BaseException as exc:
        tmp.unlink(missing_ok=True)
        if isinstance(exc, OSError):
            # ENOSPC, EACCES, a vanished directory: a typed, catchable
            # signal so cache owners degrade instead of crashing.
            raise CacheWriteError(
                f"cache write to {path} failed: {exc}"
            ) from exc
        raise


def read_envelope(path: str | Path, *, fault_site: str | None = None):
    """Verify and parse one artifact written by :func:`write_envelope`.

    Legacy plain-JSON artifacts (pre-envelope caches) parse through the
    fallback in :func:`~repro.durability.envelope.decode_envelope`.
    Raises :class:`~repro.durability.envelope.EnvelopeError` (a member of
    :data:`CACHE_DECODE_ERRORS`) on any corruption, and ``OSError`` if
    the file cannot be read at all.  ``fault_site`` optionally threads
    the raw bytes through a chaos :func:`fault_point` before decoding.
    """
    data = Path(path).read_bytes()
    if fault_site is not None:
        data = fault_point(fault_site, data)
    payload, _ = decode_envelope(data)
    return payload


def read_envelope_lines(path: str | Path):
    """Yield ``(lineno, record, error)`` per non-blank JSONL line.

    Exactly one of ``record`` / ``error`` is ``None``: a line that fails
    integrity verification yields its :class:`EnvelopeError` instead of a
    record, and the caller decides whether to skip (a log reader) or
    repair (``repro fsck``).  Legacy plain-JSON lines parse through the
    per-line fallback.  ``OSError`` on the file itself propagates.
    """
    # Tolerant decode: undecodable bytes become replacement characters,
    # which then fail that line's CRC/JSON check — a mangled line must
    # surface as a per-line error, not kill the whole read.
    text = Path(path).read_bytes().decode("utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            yield lineno, decode_line(line), None
        except EnvelopeError as exc:
            yield lineno, None, exc


def append_jsonl(path: str | Path, record: dict) -> int:
    """Append ``record`` as one JSON line to ``path``; returns bytes written.

    The line is serialized first and written with a single ``write`` call on
    an ``O_APPEND`` handle, so concurrent appenders (threads or processes)
    interleave whole lines, never fragments.  Readers tolerate a torn final
    line from a hard crash by skipping lines that fail to parse — this is a
    log, not a datastore, which is why the tmp-file + rename dance of
    :func:`atomic_write_json` would be the wrong tool here.
    """
    return append_jsonl_many(path, (record,))


def append_jsonl_many(path: str | Path, records) -> int:
    """Append each of ``records`` as a JSON line; returns bytes written.

    One ``open`` and one ``write`` for the whole batch — the amortized
    shape behind a buffered log's flush.  Same whole-lines-only guarantee
    as :func:`append_jsonl`.
    """
    return append_jsonl_lines(
        path, [json.dumps(record, sort_keys=True) for record in records]
    )


def append_jsonl_lines(path: str | Path, lines) -> int:
    """Append pre-serialized JSON ``lines`` (no trailing newlines).

    The serialize-once half of :func:`append_jsonl_many`: callers that
    already hold each record's canonical JSON text (a buffered log doing
    its own size accounting) append it without a second ``json.dumps``
    pass.  Returns bytes written.
    """
    path = Path(path)
    text = "".join(line + "\n" for line in lines)
    if not text:
        return 0
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Chaos hook: corrupt the batch about to be appended, or model a
        # crash (kill) in the append window itself.
        text = fault_point("ioutils.append_jsonl.write", text)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
    except OSError as exc:
        raise CacheWriteError(
            f"log append to {path} failed: {exc}"
        ) from exc
    return len(text.encode("utf-8"))


def append_envelope_lines(path: str | Path, json_lines) -> int:
    """Append pre-serialized JSON lines, each wrapped in a line envelope.

    The JSONL counterpart of :func:`write_envelope`:
    :func:`read_envelope_lines` verifies each line's CRC on the way back,
    so a torn append or a flipped byte is detected and skipped rather
    than parsed into a wrong record.  Returns bytes written.
    """
    return append_jsonl_lines(path, [encode_line(line) for line in json_lines])


def _writer_pid(name: str) -> int | None:
    """The pid embedded in a ``<name>.<pid>-<seq>.tmp`` file name, if any.

    Plain ``<name>.<pid>.tmp`` stamps (the pre-sequence layout) parse too.
    """
    parts = name.split(".")
    if len(parts) < 3 or parts[-1] != "tmp":
        return None
    pid_part = parts[-2].split("-", 1)[0]
    if pid_part.isdigit():
        return int(pid_part)
    return None


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        # EPERM and friends: the pid exists but belongs to someone else.
        return True
    return True


def remove_stale_tmp_files(
    root: str | Path, *, max_age_s: float = STALE_TMP_AGE_S
) -> list[Path]:
    """Delete orphaned ``*.tmp`` files directly under ``root``.

    A tmp file is orphaned when the writer pid embedded in its name is no
    longer alive, or — for tmp files with no recognizable pid — when it is
    older than ``max_age_s``.  Tmp files of live writers (concurrent
    processes mid-write, including this one) are left alone.  Returns the
    removed paths.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    removed: list[Path] = []
    for tmp in sorted(root.glob("*.tmp")):
        pid = _writer_pid(tmp.name)
        if pid is not None:
            stale = not _pid_alive(pid)
        else:
            try:
                stale = time.time() - tmp.stat().st_mtime > max_age_s
            except OSError:
                continue  # vanished underneath us
        if not stale:
            continue
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            continue
        logger.warning("removed stale tmp file %s", tmp)
        removed.append(tmp)
    return removed
