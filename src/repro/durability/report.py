"""Quarantine and event plumbing for detected cache damage.

When a cache owner's verify-on-load fails, the file is **moved** to
``<cache_root>/quarantine/`` (same filesystem, so the move is atomic)
with a ``.why.json`` sidecar recording who detected what — the evidence
survives for ``repro fsck`` and the operator instead of being unlinked.

Detection and write failures are also forwarded to a process-global
listener (installed by the sweep engine and the advisor service, the two
components that own an event bus) which re-emits them as the
``cache_corrupt_detected`` / ``cache_write_failed`` events declared in
:data:`repro.engine.events.EVENT_SCHEMAS` — so a chaos run's corruption
history lands in the same JSONL run log as everything else.  The
last-installed listener wins, mirroring the ``FaultPlan.on_inject``
convention in :mod:`repro.resilience.faults`.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Callable

from ..ioutils import write_envelope

__all__ = [
    "QUARANTINE_DIR",
    "set_durability_listener",
    "clear_durability_listener",
    "report_corruption",
    "report_write_failure",
    "quarantine_artifact",
]

logger = logging.getLogger(__name__)

#: Directory (under the cache root) quarantined artifacts are moved to.
QUARANTINE_DIR = "quarantine"

_LISTENER: Callable[[dict], None] | None = None


def set_durability_listener(callback: Callable[[dict], None]) -> None:
    """Install the process-wide corruption/write-failure forwarder."""
    global _LISTENER
    _LISTENER = callback


def clear_durability_listener() -> None:
    global _LISTENER
    _LISTENER = None


def _forward(info: dict) -> None:
    listener = _LISTENER
    if listener is None:
        return
    try:
        listener(info)
    except Exception:  # pragma: no cover - reporting must never re-raise
        logger.debug("durability listener failed", exc_info=True)


def report_corruption(
    *, owner: str, path: str | Path, error: Exception, quarantined: bool
) -> dict:
    """Log + forward one detected-corruption incident; returns the info."""
    info = {
        "kind": "cache_corrupt_detected",
        "owner": owner,
        "path": str(path),
        "error": str(error),
        "error_type": type(error).__name__,
        "quarantined": bool(quarantined),
    }
    logger.warning(
        "corrupt %s cache artifact %s (%s: %s)%s",
        owner, path, info["error_type"], error,
        "; quarantined" if quarantined else "",
    )
    _forward(info)
    return info


def report_write_failure(
    *, owner: str, path: str | Path, error: Exception
) -> dict:
    """Log + forward one failed cache write; returns the info."""
    info = {
        "kind": "cache_write_failed",
        "owner": owner,
        "path": str(path),
        "error": str(error),
        "error_type": type(error).__name__,
    }
    logger.warning(
        "%s cache write to %s failed (%s: %s); degrading to in-memory",
        owner, path, info["error_type"], error,
    )
    _forward(info)
    return info


def quarantine_dir(cache_root: str | Path) -> Path:
    return Path(cache_root) / QUARANTINE_DIR


def quarantine_artifact(
    path: str | Path,
    cache_root: str | Path,
    *,
    owner: str,
    error: Exception,
) -> Path | None:
    """Move a corrupt artifact into quarantine and report the incident.

    Returns the quarantine destination, or ``None`` when the move itself
    failed (the artifact is then unlinked as a last resort — a corrupt
    file must never stay where a loader could find it again).  Name
    collisions get a ``-<n>`` suffix so repeated corruption of the same
    artifact keeps every specimen.
    """
    path = Path(path)
    qdir = quarantine_dir(cache_root)
    dest: Path | None = None
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        candidate = qdir / path.name
        n = 1
        while candidate.exists():
            n += 1
            candidate = qdir / f"{path.stem}-{n}{path.suffix}"
        os.replace(path, candidate)
        dest = candidate
    except OSError as exc:
        logger.warning(
            "could not quarantine %s (%s); unlinking instead", path, exc
        )
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - racing cleanup
            pass
    if dest is not None:
        try:
            write_envelope(dest.with_name(dest.name + ".why.json"), {
                "original_path": str(path),
                "owner": owner,
                "error": str(error),
                "error_type": type(error).__name__,
            })
        except Exception:  # pragma: no cover - sidecar is best-effort
            logger.debug("quarantine sidecar write failed", exc_info=True)
    report_corruption(
        owner=owner, path=path, error=error, quarantined=dest is not None
    )
    return dest
