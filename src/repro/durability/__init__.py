"""Crash-consistent cache storage: envelopes, fsck, and torture testing.

Every JSON/JSONL artifact under ``.repro_cache/`` is wrapped in a
checksummed *envelope* (:mod:`repro.durability.envelope`) so a torn
write, a flipped bit or a hand-mangled file is always **detected** on
load — never silently served.  Detection feeds three consumers:

* the cache owners themselves, which quarantine a corrupt file to
  ``<cache>/quarantine/`` and rebuild or degrade
  (:mod:`repro.durability.report`);
* ``repro fsck``, the offline walk/repair/GC tool
  (:mod:`repro.durability.fsck`);
* the seeded power-loss torture harness that SIGKILLs writers
  mid-``fault_point`` and asserts no crash ever yields a corrupt load
  (:mod:`repro.durability.torture`).

This ``__init__`` deliberately imports only the dependency-free codec:
:mod:`repro.ioutils` imports :mod:`.envelope` at import time, so pulling
:mod:`.report`/:mod:`.fsck` (which import ioutils back) in here would
make the package import order circular.  Import those submodules
explicitly.
"""

from __future__ import annotations

from .envelope import (
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    EnvelopeError,
    EnvelopeMeta,
    decode_envelope,
    decode_line,
    encode_envelope,
    encode_line,
    is_enveloped,
)

__all__ = [
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "EnvelopeError",
    "EnvelopeMeta",
    "decode_envelope",
    "decode_line",
    "encode_envelope",
    "encode_line",
    "is_enveloped",
]
