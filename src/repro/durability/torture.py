"""Power-loss torture harness: kill cache writers mid-write, prove safety.

The harness drives every durable cache owner — sweep shards, advisor
recommendation entries, calibrated profiles, the request-trace log and
the versioned model registry — through seeded crash-at-write-site cycles.
Each cycle forks a child process, installs a :class:`FaultPlan` whose
``kill`` rule SIGKILLs the child at one of the write-path fault sites
(the serialized-data window, the tmp-to-target rename window, or the
JSONL append), runs one real owner write, and then — in the surviving
parent — loads the artifact back through the owner's own API.

The invariant under test (pinned by ``tests/test_durability.py``):

    A crash at ANY write site never yields a corrupt or wrong load.
    The reader sees the previous payload, the new payload, or nothing
    (missing / quarantined) — never a mix, never garbage parsed as data.

A fraction of cycles swaps the SIGKILL for a ``corrupt`` rule (the
serialized bytes are mangled but the write completes), which proves the
envelope *detects* damage rather than trusting whatever parses — the
owner quarantines the artifact and reports ``None``.

After the crash loop, ``fsck_tree(..., repair=True)`` must heal the tree
(quarantining what the loop corrupted, sweeping stale tmp files the
rename-window kills left behind) and a second, read-only fsck must come
back clean.

Runnable standalone (CI's ``durability`` job does)::

    python -m repro.durability.torture --cycles 40 --seed 7 [--json]

Same seed, same cycle count => the same owner/site/action schedule and
the same verdict — a failure reproduces exactly.
"""

from __future__ import annotations

import os
import random
import signal
import sys
from pathlib import Path

from ..resilience.faults import FaultPlan, FaultRule, install_plan
from .fsck import fsck_tree

__all__ = [
    "OWNERS",
    "TortureFailure",
    "run_torture",
]

#: Write-path fault sites, with how many times one owner write hits each.
_DATA_SITE = "ioutils.atomic_write_json.data"
_REPLACE_SITE = "ioutils.atomic_write_json.replace"
_APPEND_SITE = "ioutils.append_jsonl.write"


class TortureFailure(AssertionError):
    """The durability invariant was violated (a corrupt or wrong load)."""


# ------------------------------------------------------------------------- #
# Owner adapters: one real write + one real load per cache owner
# ------------------------------------------------------------------------- #

class _ShardOwner:
    """Sweep shards (:class:`repro.engine.shards.ShardStore`)."""

    name = "shards"
    #: (site, hits per write): one shard save is one atomic write.
    sites = ((_DATA_SITE, 1), (_REPLACE_SITE, 1))
    corrupt_site = _DATA_SITE

    @staticmethod
    def _matrix(cycle: int):
        from ..bench.harness import MatrixSweep, SweepRecord

        return MatrixSweep(
            idx=1, name="torture", domain="synthetic", geometry=False,
            special=False, nrows=4, ncols=4, nnz=8,
            records=[SweepRecord(
                kind="csr", block=None, impl="scalar", precision="dp",
                nthreads=1, t_real=float(cycle), t_mem=0.0, t_comp=0.0,
                t_latency=0.0, ws_bytes=0, padding_ratio=1.0, n_blocks=1,
                predictions={},
            )],
        )

    def write(self, cache_dir: Path, cycle: int) -> None:
        from ..engine.shards import ShardStore

        ShardStore(cache_dir).save(1, self._matrix(cycle))

    def observe(self, cache_dir: Path) -> int | None:
        from ..engine.shards import ShardStore

        matrix = ShardStore(cache_dir).load(1)
        if matrix is None:
            return None
        return int(matrix.records[0].t_real)


class _AdvisorOwner:
    """Recommendation entries (:class:`repro.serve.store.AdvisorStore`)."""

    name = "advisor"
    sites = ((_DATA_SITE, 1), (_REPLACE_SITE, 1))
    corrupt_site = _DATA_SITE

    _FP, _TOKEN = "torture-fp", "torture-token"

    def _key(self) -> str:
        from ..serve.store import AdvisorStore

        return AdvisorStore.key(self._FP, "opts", self._TOKEN)

    def write(self, cache_dir: Path, cycle: int) -> None:
        from ..serve.store import AdvisorStore

        AdvisorStore(cache_dir).save(
            self._key(), {"cycle": cycle},
            fingerprint=self._FP, token=self._TOKEN,
        )

    def observe(self, cache_dir: Path) -> int | None:
        from ..serve.store import AdvisorStore

        payload = AdvisorStore(cache_dir).load(
            self._key(), token=self._TOKEN
        )
        if payload is None:
            return None
        return int(payload["cycle"])


class _ProfileOwner:
    """Calibrated profiles (:class:`repro.core.profiling.ProfileStore`).

    Uses a synthetic :class:`BlockProfile` (the cycle number rides in
    ``latency_cost_s``) so no real ~3 s calibration runs; the disk path
    is exactly the production one.
    """

    name = "profiles"
    sites = ((_DATA_SITE, 1), (_REPLACE_SITE, 1))
    corrupt_site = _DATA_SITE

    @staticmethod
    def _machine():
        from ..machine import get_preset

        return get_preset("core2-xeon-2.66")

    def write(self, cache_dir: Path, cycle: int) -> None:
        from ..core.profiling import BlockProfile, ProfileStore
        from ..types import Impl, Precision

        profile = BlockProfile(
            machine_name="core2-xeon-2.66",
            precision=Precision.DP,
            t_b={(("csr", None), Impl.SCALAR): 1e-9},
            nof={(("csr", None), Impl.SCALAR): 1.0},
            latency_cost_s=float(cycle),
        )
        ProfileStore(cache_dir).store_profile(self._machine(), "dp", profile)

    def observe(self, cache_dir: Path) -> int | None:
        from ..core.profiling import ProfileStore

        profile = ProfileStore(cache_dir).load_cached(self._machine(), "dp")
        if profile is None or profile.latency_cost_s is None:
            return None
        return int(profile.latency_cost_s)


class _TraceOwner:
    """The JSONL request trace (:class:`repro.learn.tracelog.TraceLog`).

    A log, not a single-slot store: :meth:`observe` returns the set of
    cycle ids on disk, and the invariant is that every record read back
    was genuinely written — a torn append is skipped, never misread.
    """

    name = "learn-trace"
    sites = ((_APPEND_SITE, 1),)
    corrupt_site = _APPEND_SITE

    def write(self, cache_dir: Path, cycle: int) -> None:
        from ..learn.tracelog import TraceLog

        # flush_records=1: the append hits the disk (and the fault site)
        # immediately instead of sitting in the buffer.
        TraceLog(cache_dir, flush_records=1).append({"cycle": cycle})

    def observe(self, cache_dir: Path) -> set[int]:
        from ..learn.tracelog import TraceLog

        return {
            int(record["cycle"])
            for record in TraceLog(cache_dir).records()
            if "cycle" in record
        }


class _ModelOwner:
    """The versioned model registry (artifact + ``current`` pointer).

    One publish is two atomic writes, so the kill schedule also lands in
    the window *between* them — the crash that must leave a valid orphan
    artifact, never a dangling or torn pointer.
    """

    name = "models"
    sites = ((_DATA_SITE, 2), (_REPLACE_SITE, 2))
    corrupt_site = _DATA_SITE

    @staticmethod
    def _tree_payload(cycle: int) -> dict:
        return {
            "max_depth": 1,
            "min_samples_leaf": 1,
            "classes": [f"k{cycle}"],
            "root": {"label": f"k{cycle}"},
        }

    def write(self, cache_dir: Path, cycle: int) -> None:
        from ..learn.registry import ModelRegistry

        ModelRegistry(cache_dir).publish(self._tree_payload(cycle))

    def observe(self, cache_dir: Path) -> int | None:
        from ..learn.registry import ModelRegistry

        registry = ModelRegistry(cache_dir)
        registry.reload()
        tree, _version = registry.current()
        if tree is None:
            return None
        label = tree.to_payload()["root"]["label"]
        if not label.startswith("k"):
            raise TortureFailure(f"model label {label!r} is not ours")
        return int(label[1:])


OWNERS = (
    _ShardOwner(), _AdvisorOwner(), _ProfileOwner(), _TraceOwner(),
    _ModelOwner(),
)


# ------------------------------------------------------------------------- #
# The crash loop
# ------------------------------------------------------------------------- #

def _write_in_child(owner, cache_dir: Path, cycle: int, plan: FaultPlan) -> int:
    """Fork, install ``plan``, run one owner write; returns wait status.

    ``os._exit`` keeps the child from running the parent's atexit hooks
    or flushing its inherited stdio twice; a ``kill`` rule firing means
    even that never runs — exactly the power-loss model.
    """
    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:
        status = 1
        try:
            install_plan(plan)
            owner.write(cache_dir, cycle)
            status = 0
        except BaseException:
            status = 1
        finally:
            os._exit(status)
    _, wstatus = os.waitpid(pid, 0)
    return wstatus


def run_torture(
    cache_dir: str | Path, *, cycles: int = 40, seed: int = 0
) -> dict:
    """Run ``cycles`` seeded crash-at-write-site cycles; returns a summary.

    Owners rotate round-robin (every owner is exercised whenever
    ``cycles >= 5``); the site, the hit index within the write, and the
    action (SIGKILL, with a ~1-in-4 corrupt mix) come from the seeded
    RNG.  The summary's ``ok`` is ``True`` iff no cycle observed a wrong
    or corrupt payload AND the post-loop fsck repair left a clean tree.
    """
    cache_dir = Path(cache_dir)
    rng = random.Random(seed)
    violations: list[str] = []
    kills = 0
    corruptions = 0
    per_owner: dict[str, dict] = {
        owner.name: {"writes": 0, "prev": 0, "new": 0, "none": 0}
        for owner in OWNERS
    }
    # Last value each single-slot owner was observed holding (None until
    # a write survives); the trace owner tracks the set of attempted ids.
    last_seen: dict[str, int | None] = {owner.name: None for owner in OWNERS}
    trace_written: set[int] = set()

    for cycle in range(1, cycles + 1):
        owner = OWNERS[(cycle - 1) % len(OWNERS)]
        action = "corrupt" if rng.random() < 0.25 else "kill"
        if action == "corrupt":
            site, nth = owner.corrupt_site, 1
        else:
            site, max_nth = rng.choice(owner.sites)
            nth = rng.randint(1, max_nth)
        plan = FaultPlan(
            [FaultRule(site=site, action=action, nth=nth)], seed=seed
        )
        if owner.name == "learn-trace":
            trace_written.add(cycle)
        wstatus = _write_in_child(owner, cache_dir, cycle, plan)
        if action == "kill":
            kills += 1
            if not (
                os.WIFSIGNALED(wstatus)
                and os.WTERMSIG(wstatus) == signal.SIGKILL
            ):
                violations.append(
                    f"cycle {cycle}: {owner.name} child survived a kill "
                    f"rule at {site} (status {wstatus})"
                )
                continue
        else:
            corruptions += 1

        stats = per_owner[owner.name]
        stats["writes"] += 1
        try:
            observed = owner.observe(cache_dir)
        except TortureFailure as exc:
            violations.append(f"cycle {cycle}: {exc}")
            continue
        except Exception as exc:  # a load must never raise, whatever broke
            violations.append(
                f"cycle {cycle}: {owner.name} load raised "
                f"{type(exc).__name__}: {exc} (after {action} at {site})"
            )
            continue
        if owner.name == "learn-trace":
            bogus = observed - trace_written
            if bogus:
                violations.append(
                    f"cycle {cycle}: trace read back records never "
                    f"written: {sorted(bogus)}"
                )
            stats["new" if cycle in observed else "none"] += 1
        else:
            allowed = {cycle, last_seen[owner.name], None}
            if observed not in allowed:
                violations.append(
                    f"cycle {cycle}: {owner.name} loaded {observed!r}, "
                    f"expected one of {allowed} (after {action} at "
                    f"{site} nth={nth})"
                )
                continue
            if observed == cycle:
                stats["new"] += 1
            elif observed is None:
                stats["none"] += 1
            else:
                stats["prev"] += 1
            last_seen[owner.name] = observed

    repair_report = fsck_tree(cache_dir, repair=True)
    final_report = fsck_tree(cache_dir)
    return {
        "cycles": cycles,
        "seed": seed,
        "kills": kills,
        "corruptions": corruptions,
        "per_owner": per_owner,
        "violations": violations,
        "fsck_repaired": len(
            [f for f in repair_report.findings if f.repaired]
        ),
        "fsck_findings": repair_report.counts(),
        "clean_after_repair": final_report.clean,
        "ok": not violations and final_report.clean,
    }


def main(argv=None) -> int:
    import argparse
    import json as _json
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.durability.torture",
        description=(
            "Seeded power-loss torture for the cache layer: SIGKILL "
            "writers mid-write, assert no crash ever yields a corrupt "
            "load, then prove 'repro fsck --repair' heals the tree."
        ),
    )
    parser.add_argument(
        "--cycles", type=int, default=40, metavar="N",
        help="crash cycles to run (default: 40)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="schedule seed; equal seeds give identical runs (default: 0)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache root to torture (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full summary as JSON",
    )
    args = parser.parse_args(argv)
    if args.cycles < 1:
        print(f"error: --cycles must be >= 1, got {args.cycles}",
              file=sys.stderr)
        return 2
    cache_dir = (
        Path(args.cache_dir) if args.cache_dir is not None
        else Path(tempfile.mkdtemp(prefix="repro-torture-"))
    )
    summary = run_torture(cache_dir, cycles=args.cycles, seed=args.seed)
    if args.json:
        print(_json.dumps(summary, indent=2))
    else:
        print(
            f"torture: {summary['cycles']} cycles (seed {summary['seed']}) "
            f"— {summary['kills']} kills, {summary['corruptions']} "
            f"corruptions, {summary['fsck_repaired']} fsck repair(s), "
            f"clean after repair: {summary['clean_after_repair']}"
        )
        for line in summary["violations"]:
            print(f"  VIOLATION: {line}")
    if not summary["ok"]:
        print("torture: FAILED — the durability invariant was violated",
              file=sys.stderr)
        return 1
    print("torture: OK — no crash produced a corrupt load")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
