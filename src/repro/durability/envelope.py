"""The checksummed envelope wrapped around every cache artifact.

Layout (one header line, then the payload JSON verbatim)::

    #%repro-env%1 schema=<int> len=<bytes> crc32=<8 hex> gen=<writer>\\n
    {"the": "payload", ...}

* ``#%repro-env%1`` — magic plus envelope-format version.  The leading
  ``#`` guarantees an enveloped file can never parse as plain JSON, so
  the legacy/enveloped decision is unambiguous in both directions.
* ``schema`` — the owning store's schema number, surfaced so ``repro
  fsck`` can report it without knowing every owner's payload shape (the
  owners keep validating the ``schema`` key *inside* their payloads
  exactly as before).
* ``len`` — byte length of the payload, catching truncation even when
  the lost suffix would not change the CRC of what remains.
* ``crc32`` — CRC-32 (:func:`zlib.crc32`) over
  ``"<version>|<schema>|<gen>|" + payload bytes``.  Folding the header
  fields into the checksum means a flip in *any* byte of the file is
  detected: magic/len/spacing damage breaks the header parse, crc-field
  damage breaks hex parsing or the comparison, schema/gen damage changes
  the checksum input, payload damage changes the checksum itself.
* ``gen`` — the writer's generation token (``<pid>-<seq>``), identifying
  which process produced the artifact when debugging a corrupt cache.

Decoding falls back to plain ``json.loads`` when the magic is absent, so
caches written before this format keep loading (``meta.enveloped`` tells
the caller which path served it).  Every failure mode raises
:class:`EnvelopeError`, a :class:`ValueError` subclass — it lands in
:data:`repro.ioutils.CACHE_DECODE_ERRORS` and flows through the owners'
existing corrupt-cache recovery unchanged.

JSONL lines use a compact per-line variant, ``%e1%<8 hex>%<json>``, with
the same legacy fallback and the same always-detected guarantee.

This module is deliberately pure stdlib with no intra-package imports:
:mod:`repro.ioutils` builds its file primitives on top of it.
"""

from __future__ import annotations

import json
import re
import zlib
from dataclasses import dataclass

__all__ = [
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "LINE_MAGIC",
    "EnvelopeError",
    "EnvelopeMeta",
    "encode_envelope",
    "decode_envelope",
    "is_enveloped",
    "encode_line",
    "decode_line",
    "is_enveloped_line",
]

#: Current envelope-format version (the ``1`` in the magic).
ENVELOPE_VERSION = 1

#: File-envelope magic; a header line starts with this or the file is
#: treated as legacy plain JSON.
ENVELOPE_MAGIC = "#%repro-env%"

#: JSONL line-envelope magic.
LINE_MAGIC = "%e1%"

_HEADER_RE = re.compile(
    r"\A#%repro-env%(\d+) schema=(\d+) len=(\d+) "
    r"crc32=([0-9a-f]{8}) gen=([0-9A-Za-z._-]+)\Z"
)

_LINE_RE = re.compile(r"\A%e1%([0-9a-f]{8})%(.+)\Z", re.DOTALL)


class EnvelopeError(ValueError):
    """An artifact failed integrity verification (torn, flipped, garbage).

    A :class:`ValueError` so it is already a member of
    :data:`repro.ioutils.CACHE_DECODE_ERRORS`: every pre-envelope
    corrupt-recovery path catches it without modification.
    """


@dataclass(frozen=True)
class EnvelopeMeta:
    """What :func:`decode_envelope` learned about the artifact's wrapper."""

    enveloped: bool
    version: int | None = None
    schema: int | None = None
    gen: str | None = None


def _crc(schema: int, gen: str, payload: bytes) -> int:
    seed = zlib.crc32(f"{ENVELOPE_VERSION}|{schema}|{gen}|".encode("ascii"))
    return zlib.crc32(payload, seed) & 0xFFFFFFFF


def encode_envelope(
    payload: object, *, schema: int = 1, gen: str = "0-0"
) -> str:
    """Serialize ``payload`` to enveloped text (header line + JSON)."""
    body = json.dumps(payload)
    body_bytes = body.encode("utf-8")
    header = (
        f"{ENVELOPE_MAGIC}{ENVELOPE_VERSION} schema={schema} "
        f"len={len(body_bytes)} crc32={_crc(schema, gen, body_bytes):08x} "
        f"gen={gen}"
    )
    return header + "\n" + body


def is_enveloped(data: bytes | str) -> bool:
    """Whether ``data`` claims to be enveloped (magic present)."""
    if isinstance(data, bytes):
        return data.startswith(ENVELOPE_MAGIC.encode("ascii"))
    return data.startswith(ENVELOPE_MAGIC)


def decode_envelope(data: bytes | str) -> tuple[object, EnvelopeMeta]:
    """Verify and parse an artifact; returns ``(payload, meta)``.

    Accepts bytes (preferred: length/CRC checks are byte-exact) or
    already-decoded text.  Legacy plain-JSON artifacts parse with
    ``meta.enveloped`` False.  Raises :class:`EnvelopeError` on any
    damage — there is no input for which damage yields a wrong payload.
    """
    if isinstance(data, str):
        raw = data.encode("utf-8", errors="surrogatepass")
    else:
        raw = data
    if not is_enveloped(raw):
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EnvelopeError(f"artifact is not valid UTF-8: {exc}") from exc
        try:
            return json.loads(text), EnvelopeMeta(enveloped=False)
        except json.JSONDecodeError as exc:
            raise EnvelopeError(
                f"legacy artifact is not valid JSON: {exc}"
            ) from exc
    header_bytes, sep, body_bytes = raw.partition(b"\n")
    try:
        header = header_bytes.decode("ascii")
    except UnicodeDecodeError as exc:
        raise EnvelopeError(f"envelope header is not ASCII: {exc}") from exc
    match = _HEADER_RE.match(header)
    if match is None:
        raise EnvelopeError(f"malformed envelope header {header[:80]!r}")
    version, schema, length = (int(match.group(i)) for i in (1, 2, 3))
    crc_hex, gen = match.group(4), match.group(5)
    if version != ENVELOPE_VERSION:
        raise EnvelopeError(
            f"unsupported envelope version {version} "
            f"(this build reads version {ENVELOPE_VERSION})"
        )
    if not sep:
        raise EnvelopeError("envelope has a header but no payload")
    if len(body_bytes) != length:
        raise EnvelopeError(
            f"payload is {len(body_bytes)} bytes, header declares {length} "
            "(truncated or padded artifact)"
        )
    if _crc(schema, gen, body_bytes) != int(crc_hex, 16):
        raise EnvelopeError("payload CRC mismatch (corrupt artifact)")
    try:
        body = body_bytes.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise EnvelopeError(f"payload is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:  # pragma: no cover - CRC-protected
        raise EnvelopeError(f"enveloped payload is not JSON: {exc}") from exc
    return payload, EnvelopeMeta(
        enveloped=True, version=version, schema=schema, gen=gen
    )


# ---------------------------------------------------------------------- #
# Per-line variant for JSONL logs
# ---------------------------------------------------------------------- #

def encode_line(json_text: str) -> str:
    """Wrap one pre-serialized JSON line as ``%e1%<crc32>%<json>``."""
    crc = zlib.crc32(json_text.encode("utf-8")) & 0xFFFFFFFF
    return f"{LINE_MAGIC}{crc:08x}%{json_text}"


def is_enveloped_line(line: str) -> bool:
    return line.startswith(LINE_MAGIC)


def decode_line(line: str) -> object:
    """Verify and parse one JSONL line (enveloped or legacy plain JSON).

    Raises :class:`EnvelopeError` on a torn or mangled line; a reader of
    a log skips such lines, it never trusts them.
    """
    if not is_enveloped_line(line):
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise EnvelopeError(
                f"legacy log line is not valid JSON: {exc}"
            ) from exc
    match = _LINE_RE.match(line)
    if match is None:
        raise EnvelopeError(f"malformed line envelope {line[:60]!r}")
    crc_hex, body = match.group(1), match.group(2)
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != int(crc_hex, 16):
        raise EnvelopeError("log line CRC mismatch (torn or corrupt line)")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:  # pragma: no cover - CRC-protected
        raise EnvelopeError(f"enveloped log line is not JSON: {exc}") from exc
