"""Cache-tree verification, repair and GC — the engine behind ``repro fsck``.

:func:`fsck_tree` walks every artifact a cache root can hold — the
monolithic sweep caches, per-matrix shards and their quarantine markers,
advisor recommendation entries, calibrated machine profiles, versioned
model artifacts plus the ``current`` pointer, and the JSONL request-trace
segments — across the root itself *and* every fleet worker partition
(``fleet/worker-<id>/``), and verifies each one's checksummed envelope
(:mod:`repro.durability.envelope`).  Findings come in three severities:

* **problems** (``corrupt``, ``torn-line``, ``stale-tmp``) — an artifact
  that fails integrity verification, a trace line whose CRC or JSON does
  not check out, or a ``*.tmp`` file whose writer is provably gone;
* **informational** (``legacy``, ``orphan``) — a pre-envelope plain-JSON
  artifact (loads fine through the read-through fallback, rewritten with
  a checksum on its next save) and a model artifact the ``current``
  pointer does not reference (the normal residue of a crash between the
  artifact write and the pointer swap);
* **gc** — files removed by the size-bound garbage collector.

With ``repair=True`` the walk heals what it reports: corrupt artifacts
move to ``quarantine/`` (evidence survives for the operator, exactly as
the owners themselves do on load), torn trace segments are atomically
rewritten minus their bad lines, and orphaned tmp files are removed.
Every owner treats a missing artifact as a cache miss, so repair never
loses data an owner could still have used — that is why fleet workers run
``fsck_tree(..., repair=True)`` on startup before answering ``/readyz``.

``gc_max_bytes`` bounds the tree: rebuildable artifacts (sweeps, shards,
advisor entries, trace segments, quarantined evidence, unreferenced model
artifacts) are deleted oldest-first — deterministically ordered by
``(mtime_ns, path)`` — until the tree fits.  Calibrated profiles, the
``current`` pointer and the artifact it references are never collected:
they are the only cache entries whose loss costs more than a recompute.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..ioutils import (
    STALE_TMP_AGE_S,
    CacheWriteError,
    _pid_alive,
    _writer_pid,
    atomic_write_text,
    read_envelope_lines,
)
from .envelope import EnvelopeError, decode_envelope, encode_line
from .report import QUARANTINE_DIR, quarantine_artifact

__all__ = [
    "PROBLEM_KINDS",
    "Finding",
    "FsckReport",
    "fsck_tree",
]

#: Finding kinds that make a tree un-``clean`` until repaired.
PROBLEM_KINDS = ("corrupt", "torn-line", "stale-tmp")


@dataclass
class Finding:
    """One fsck observation: what, where, and whether it was healed."""

    kind: str
    owner: str
    path: str
    detail: str = ""
    repaired: bool = False

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "owner": self.owner,
            "path": self.path,
            "detail": self.detail,
            "repaired": self.repaired,
        }

    def render(self) -> str:
        tag = f"{self.kind}/repaired" if self.repaired else self.kind
        detail = f" — {self.detail}" if self.detail else ""
        return f"  [{tag}] {self.owner}: {self.path}{detail}"


@dataclass
class FsckReport:
    """The full outcome of one :func:`fsck_tree` walk."""

    root: str
    files_checked: int = 0
    lines_checked: int = 0
    bytes_total: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def problems(self) -> list[Finding]:
        return [f for f in self.findings if f.kind in PROBLEM_KINDS]

    @property
    def unrepaired(self) -> list[Finding]:
        return [f for f in self.problems if not f.repaired]

    @property
    def clean(self) -> bool:
        """No problem survives (informational findings don't count)."""
        return not self.unrepaired

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def to_payload(self) -> dict:
        return {
            "root": self.root,
            "files_checked": self.files_checked,
            "lines_checked": self.lines_checked,
            "bytes_total": self.bytes_total,
            "counts": self.counts(),
            "clean": self.clean,
            "findings": [f.to_payload() for f in self.findings],
        }

    def render(self) -> str:
        lines = [
            f"fsck {self.root}: {self.files_checked} file(s), "
            f"{self.lines_checked} trace line(s), "
            f"{self.bytes_total} bytes"
        ]
        lines.extend(f.render() for f in self.findings)
        if self.clean:
            lines.append("clean")
        else:
            lines.append(f"{len(self.unrepaired)} unrepaired problem(s)")
        return "\n".join(lines)


def fsck_tree(
    cache_dir: str | Path,
    *,
    repair: bool = False,
    gc_max_bytes: int | None = None,
) -> FsckReport:
    """Verify (and optionally heal / bound) one cache tree.

    Walks the root and every ``fleet/worker-*`` partition.  A missing
    root is trivially clean — fsck runs before first use too.
    """
    root = Path(cache_dir)
    report = FsckReport(root=str(root))
    if not root.is_dir():
        return report
    for sub in _partition_roots(root):
        _scan_partition(sub, report, repair)
    _check_tmp_files(root, report, repair)
    report.bytes_total = _tree_bytes(root)
    if gc_max_bytes is not None:
        _collect_garbage(root, report, gc_max_bytes)
        report.bytes_total = _tree_bytes(root)
    return report


# ------------------------------------------------------------------------- #
# Walking
# ------------------------------------------------------------------------- #

def _partition_roots(cache_root: Path):
    """The top root plus each fleet worker's private cache partition.

    A worker partition is a full cache root of its own (its owners pass
    the partition as ``cache_dir``), so corrupt artifacts quarantine
    *inside* the partition — the same place the owners would put them.
    """
    yield cache_root
    fleet = cache_root / "fleet"
    if fleet.is_dir():
        yield from sorted(
            p for p in fleet.glob("worker-*") if p.is_dir()
        )


def _scan_partition(root: Path, report: FsckReport, repair: bool) -> None:
    for path in sorted(root.glob("sweep_*.json")):
        _check_artifact(path, "sweep", root, report, repair)
    shards = root / "shards"
    if shards.is_dir():
        for fpdir in sorted(p for p in shards.iterdir() if p.is_dir()):
            for path in sorted(fpdir.glob("shard_*.json")):
                _check_artifact(path, "shards", root, report, repair)
            for path in sorted(fpdir.glob("shard_*.quarantine")):
                _check_artifact(path, "shards", root, report, repair)
    advisor = root / "advisor"
    if advisor.is_dir():
        for path in sorted(advisor.glob("rec_*.json")):
            _check_artifact(path, "advisor", root, report, repair)
    profiles = root / "profiles"
    if profiles.is_dir():
        for path in sorted(profiles.glob("profile_*.json")):
            _check_artifact(path, "profiles", root, report, repair)
    _scan_models(root, report, repair)
    learn = root / "learn"
    if learn.is_dir():
        for path in sorted(learn.glob("trace-*.jsonl")):
            _check_trace_segment(path, report, repair)


def _scan_models(root: Path, report: FsckReport, repair: bool) -> None:
    """Model artifacts + the ``current`` pointer, with orphan detection."""
    models = root / "learn" / "models"
    if not models.is_dir():
        return
    referenced: str | None = None
    pointer = models / "current.json"
    if pointer.exists():
        payload = _check_artifact(pointer, "models", root, report, repair)
        if isinstance(payload, dict):
            version = payload.get("version")
            if isinstance(version, str):
                referenced = version
    for path in sorted(models.glob("model_*.json")):
        payload = _check_artifact(path, "models", root, report, repair)
        if payload is None:
            continue
        version = path.name[len("model_"):-len(".json")]
        if version != referenced:
            # Normal residue of publish's artifact-then-pointer order: a
            # crash between the two, or an old version after a re-train.
            # Loadable evidence, GC-eligible, not a problem.
            report.findings.append(Finding(
                kind="orphan",
                owner="models",
                path=str(path),
                detail="not referenced by current.json",
            ))


def _check_artifact(
    path: Path, owner: str, cache_root: Path, report: FsckReport,
    repair: bool,
):
    """Verify one enveloped artifact; returns its payload when it checks
    out (enveloped or legacy), ``None`` otherwise."""
    report.files_checked += 1
    try:
        data = path.read_bytes()
    except OSError as exc:
        report.findings.append(Finding(
            kind="corrupt", owner=owner, path=str(path),
            detail=f"unreadable: {exc}",
        ))
        return None
    try:
        payload, meta = decode_envelope(data)
    except EnvelopeError as exc:
        finding = Finding(
            kind="corrupt", owner=owner, path=str(path), detail=str(exc),
        )
        if repair:
            quarantine_artifact(path, cache_root, owner=owner, error=exc)
            finding.repaired = not path.exists()
            if finding.repaired:
                finding.detail += " -> quarantined"
        report.findings.append(finding)
        return None
    if not meta.enveloped:
        report.findings.append(Finding(
            kind="legacy", owner=owner, path=str(path),
            detail="plain JSON (no checksum); re-enveloped on next save",
        ))
    return payload


def _check_trace_segment(
    path: Path, report: FsckReport, repair: bool
) -> None:
    report.files_checked += 1
    try:
        entries = list(read_envelope_lines(path))
    except OSError as exc:
        report.findings.append(Finding(
            kind="corrupt", owner="learn-trace", path=str(path),
            detail=f"unreadable: {exc}",
        ))
        return
    report.lines_checked += len(entries)
    bad = [lineno for lineno, _, error in entries if error is not None]
    if not bad:
        return
    shown = ", ".join(str(n) for n in bad[:5])
    more = "..." if len(bad) > 5 else ""
    finding = Finding(
        kind="torn-line", owner="learn-trace", path=str(path),
        detail=f"{len(bad)} bad line(s): {shown}{more}",
    )
    if repair:
        good = [
            json.dumps(record, sort_keys=True)
            for _, record, error in entries
            if error is None
        ]
        # Rewrite keeps only verifying records; legacy plain lines come
        # back enveloped, so a repaired segment is fully checksummed.
        text = "".join(encode_line(line) + "\n" for line in good)
        try:
            atomic_write_text(path, text)
        except CacheWriteError as exc:
            finding.detail += f" (rewrite failed: {exc})"
        else:
            finding.repaired = True
            finding.detail += " -> rewritten"
    report.findings.append(finding)


def _check_tmp_files(
    cache_root: Path, report: FsckReport, repair: bool
) -> None:
    """Orphaned ``*.tmp`` files anywhere in the tree (one pass, so fleet
    partitions are not double-counted)."""
    for tmp in sorted(cache_root.rglob("*.tmp")):
        if QUARANTINE_DIR in tmp.parts:
            continue
        report.files_checked += 1
        pid = _writer_pid(tmp.name)
        if pid is not None:
            stale = not _pid_alive(pid)
        else:
            try:
                stale = time.time() - tmp.stat().st_mtime > STALE_TMP_AGE_S
            except OSError:
                continue  # vanished underneath us
        if not stale:
            continue
        finding = Finding(
            kind="stale-tmp", owner="tmp", path=str(tmp),
            detail="writer is gone",
        )
        if repair:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            else:
                finding.repaired = True
                finding.detail += " -> removed"
        report.findings.append(finding)


# ------------------------------------------------------------------------- #
# GC
# ------------------------------------------------------------------------- #

def _tree_bytes(cache_root: Path) -> int:
    total = 0
    for path in sorted(cache_root.rglob("*")):
        try:
            if path.is_file():
                total += path.stat().st_size
        except OSError:
            continue
    return total


def _gc_candidates(cache_root: Path):
    """Every rebuildable artifact, as ``(path, owner)`` pairs.

    Excluded on purpose: calibrated profiles (minutes to rebuild), the
    ``current`` pointer and the model artifact it references (the live
    model), and tmp files (the stale-tmp check owns those).
    """
    for root in _partition_roots(cache_root):
        for path in sorted(root.glob("sweep_*.json")):
            yield path, "sweep"
        shards = root / "shards"
        if shards.is_dir():
            for path in sorted(shards.rglob("shard_*")):
                if path.is_file():
                    yield path, "shards"
        advisor = root / "advisor"
        if advisor.is_dir():
            for path in sorted(advisor.glob("rec_*.json")):
                yield path, "advisor"
        learn = root / "learn"
        if learn.is_dir():
            for path in sorted(learn.glob("trace-*.jsonl")):
                yield path, "learn-trace"
        models = root / "learn" / "models"
        if models.is_dir():
            referenced: str | None = None
            try:
                payload, _ = decode_envelope(
                    (models / "current.json").read_bytes()
                )
                if isinstance(payload, dict):
                    version = payload.get("version")
                    if isinstance(version, str):
                        referenced = version
            except (OSError, EnvelopeError):
                pass
            for path in sorted(models.glob("model_*.json")):
                version = path.name[len("model_"):-len(".json")]
                if version != referenced:
                    yield path, "models"
        quarantine = root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in sorted(quarantine.iterdir()):
                if path.is_file():
                    yield path, "quarantine"


def _collect_garbage(
    cache_root: Path, report: FsckReport, max_bytes: int
) -> None:
    """Delete rebuildable artifacts, oldest first, until the tree fits.

    Deterministic: victims are ordered by ``(mtime_ns, path)``, so two
    runs over the same tree collect the same files in the same order.
    """
    total = _tree_bytes(cache_root)
    if total <= max_bytes:
        return
    victims = []
    for path, owner in _gc_candidates(cache_root):
        try:
            st = path.stat()
        except OSError:
            continue
        victims.append((st.st_mtime_ns, str(path), st.st_size, path, owner))
    victims.sort(key=lambda v: (v[0], v[1]))
    for _, _, size, path, owner in victims:
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= size
        report.findings.append(Finding(
            kind="gc", owner=owner, path=str(path),
            detail=f"removed ({size} bytes)", repaired=True,
        ))
