"""Matrix substrate: synthetic generators, the Table I suite, structural
statistics and Matrix Market I/O."""

from . import generators
from .mmio import read_matrix_market, write_matrix_market
from .stats import MatrixStats, analyze, block_fill, diag_fill, run_lengths
from .suite import SUITE, SuiteEntry, entry_names, get_entry

__all__ = [
    "generators",
    "SUITE",
    "SuiteEntry",
    "get_entry",
    "entry_names",
    "MatrixStats",
    "analyze",
    "block_fill",
    "diag_fill",
    "run_lengths",
    "read_matrix_market",
    "write_matrix_market",
]
