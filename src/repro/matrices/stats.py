"""Structural statistics of sparse patterns.

These are the quantities the paper's discussion revolves around: row-length
distribution (loop overhead), horizontal run lengths (1D-VBL blocks),
per-shape block fill (BCSR padding), diagonal fill (BCSD padding) and
matrix bandwidth.  Used by the examples, the suite report and the tests
that assert each synthetic generator reproduces its structural class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.blockstats import BlockStats, bcsd_block_stats, bcsr_block_stats
from ..formats.coo import COOMatrix

__all__ = [
    "MatrixStats",
    "analyze",
    "block_fill",
    "diag_fill",
    "fill_of",
    "full_block_fraction",
    "run_lengths",
]


@dataclass(frozen=True)
class MatrixStats:
    """Summary statistics of one sparse pattern."""

    nrows: int
    ncols: int
    nnz: int
    row_min: int
    row_mean: float
    row_max: int
    empty_rows: int
    mean_run_length: float
    bandwidth: int
    fill_2x2: float
    fill_3x3: float
    fill_1x4: float
    diag_fill_4: float

    @property
    def density(self) -> float:
        if self.nrows == 0 or self.ncols == 0:
            return 0.0
        return self.nnz / (self.nrows * self.ncols)


def run_lengths(coo: COOMatrix) -> np.ndarray:
    """Lengths of maximal horizontal runs of consecutive nonzeros."""
    if coo.nnz == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.empty(coo.nnz, dtype=bool)
    starts[0] = True
    starts[1:] = (coo.rows[1:] != coo.rows[:-1]) | (
        coo.cols[1:] != coo.cols[:-1] + 1
    )
    first = np.flatnonzero(starts)
    return np.diff(np.append(first, coo.nnz))


def fill_of(stats: BlockStats) -> float:
    """Mean block occupancy of one analysed blocking (1.0 = no padding)."""
    if stats.n_blocks == 0:
        return 1.0
    return stats.nnz / stats.nnz_stored


def full_block_fraction(stats: BlockStats) -> float:
    """Fraction of nonzeros that sit in completely filled blocks.

    The quantity the decomposed formats care about: BCSR-DEC/BCSD-DEC only
    pay off when a sizable share of the nonzeros can be split into full,
    padding-free blocks.
    """
    if stats.nnz == 0:
        return 0.0
    return float(stats.nnz_in_full_block().mean())


def block_fill(coo: COOMatrix, r: int, c: int) -> float:
    """Mean occupancy of the aligned ``r x c`` blocks (1.0 = no padding)."""
    return fill_of(bcsr_block_stats(coo, r, c))


def diag_fill(coo: COOMatrix, b: int) -> float:
    """Mean occupancy of the size-``b`` diagonal blocks."""
    return fill_of(bcsd_block_stats(coo, b))


def analyze(coo: COOMatrix) -> MatrixStats:
    """Compute the full statistics bundle for a pattern."""
    counts = coo.row_counts()
    runs = run_lengths(coo)
    bandwidth = int(np.abs(coo.cols - coo.rows).max()) if coo.nnz else 0
    return MatrixStats(
        nrows=coo.nrows,
        ncols=coo.ncols,
        nnz=coo.nnz,
        row_min=int(counts.min()) if counts.size else 0,
        row_mean=float(counts.mean()) if counts.size else 0.0,
        row_max=int(counts.max()) if counts.size else 0,
        empty_rows=int((counts == 0).sum()),
        mean_run_length=float(runs.mean()) if runs.size else 0.0,
        bandwidth=bandwidth,
        fill_2x2=block_fill(coo, 2, 2),
        fill_3x3=block_fill(coo, 3, 3),
        fill_1x4=block_fill(coo, 1, 4),
        diag_fill_4=diag_fill(coo, 4),
    )
