"""Matrix Market I/O (coordinate format).

The paper's suite comes from Tim Davis' collection, distributed as Matrix
Market files.  This reader/writer lets users run the identical harness on
the real matrices when they have them; the reproduction itself uses the
synthetic suite (no network access — see DESIGN.md).

Supports the ``matrix coordinate`` header with ``real``, ``integer`` and
``pattern`` fields and ``general``/``symmetric``/``skew-symmetric``
symmetries.  Indices are 1-based on disk, 0-based in memory.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from ..errors import MatrixMarketError
from ..formats.coo import COOMatrix

__all__ = [
    "read_matrix_market",
    "read_matrix_market_text",
    "write_matrix_market",
]

_SUPPORTED_FIELDS = ("real", "integer", "pattern")
_SUPPORTED_SYMMETRIES = ("general", "symmetric", "skew-symmetric")


def _open(path: str | Path, mode: str) -> IO:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _data_lines(handle: IO) -> Iterator[str]:
    for line in handle:
        line = line.strip()
        if line and not line.startswith("%"):
            yield line


def read_matrix_market(path: str | Path) -> COOMatrix:
    """Read a Matrix Market coordinate file (optionally gzipped)."""
    with _open(path, "r") as fh:
        return _read_handle(fh, source=str(path))


def read_matrix_market_text(text: str, *, source: str = "<string>") -> COOMatrix:
    """Parse Matrix Market coordinate data held in a string.

    Same grammar as :func:`read_matrix_market`; used by the advisor service
    to accept matrices posted over HTTP without touching the filesystem.
    """
    return _read_handle(io.StringIO(text), source=source)


def _read_handle(fh: IO, *, source: str) -> COOMatrix:
    path = source
    header = fh.readline().strip().split()
    if len(header) != 5 or header[0] != "%%MatrixMarket":
        raise MatrixMarketError(f"bad header in {path}: {' '.join(header)}")
    _, objtype, fmt, field, symmetry = (h.lower() for h in header)
    if objtype != "matrix" or fmt != "coordinate":
        raise MatrixMarketError(
            f"only 'matrix coordinate' files are supported, got "
            f"{objtype} {fmt}"
        )
    if field not in _SUPPORTED_FIELDS:
        raise MatrixMarketError(f"unsupported field {field!r}")
    if symmetry not in _SUPPORTED_SYMMETRIES:
        raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

    lines = _data_lines(fh)
    try:
        size_line = next(lines)
    except StopIteration:
        raise MatrixMarketError(f"missing size line in {path}") from None
    try:
        nrows, ncols, nnz = (int(tok) for tok in size_line.split())
    except ValueError:
        raise MatrixMarketError(
            f"bad size line in {path}: {size_line!r}"
        ) from None

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = None if field == "pattern" else np.empty(nnz, dtype=np.float64)
    k = 0
    for line in lines:
        if k >= nnz:
            raise MatrixMarketError(f"more entries than declared in {path}")
        tok = line.split()
        rows[k] = int(tok[0]) - 1
        cols[k] = int(tok[1]) - 1
        if vals is not None:
            if len(tok) < 3:
                raise MatrixMarketError(
                    f"missing value on line {line!r} of {path}"
                )
            vals[k] = float(tok[2])
        k += 1
    if k != nnz:
        raise MatrixMarketError(
            f"{path} declares {nnz} entries but contains {k}"
        )

    if symmetry in ("symmetric", "skew-symmetric"):
        off = rows != cols
        extra_r, extra_c = cols[off], rows[off]
        rows = np.concatenate([rows, extra_r])
        cols = np.concatenate([cols, extra_c])
        if vals is not None:
            mirror = vals[off]
            if symmetry == "skew-symmetric":
                mirror = -mirror
            vals = np.concatenate([vals, mirror])
    return COOMatrix(nrows, ncols, rows, cols, vals)


def write_matrix_market(path: str | Path, coo: COOMatrix) -> None:
    """Write a COO matrix as a general real/pattern coordinate file."""
    field = "pattern" if coo.values is None else "real"
    with _open(path, "w") as fh:
        fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
        fh.write("% written by repro (blocked SpMV reproduction)\n")
        fh.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
        if coo.values is None:
            for i, j in zip(coo.rows.tolist(), coo.cols.tolist()):
                fh.write(f"{i + 1} {j + 1}\n")
        else:
            for i, j, v in zip(
                coo.rows.tolist(), coo.cols.tolist(), coo.values.tolist()
            ):
                fh.write(f"{i + 1} {j + 1} {v!r}\n")
