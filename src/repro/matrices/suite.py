"""The 30-matrix evaluation suite (paper Table I), rebuilt synthetically.

Each entry pairs one matrix of the paper's suite with a synthetic generator
reproducing its structural class, scaled roughly 8-15x down so the full
sweep runs on one machine (see DESIGN.md, "Substitutions").  Working sets
all exceed the simulated 4 MiB L2 — the suite-level analogue of the paper's
">25 MB, so that none of them fits in the processor's cache".

Entries #1-#2 are the special matrices (dense, random); #3-#16 come from
problems without an underlying 2D/3D geometry; #17-#30 have one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..formats.coo import COOMatrix
from . import generators as g

__all__ = ["SuiteEntry", "SUITE", "get_entry", "entry_names"]


@dataclass(frozen=True)
class SuiteEntry:
    """One matrix of the evaluation suite."""

    idx: int
    name: str
    domain: str
    geometry: bool
    special: bool
    #: The original matrix's published size (Table I), for EXPERIMENTS.md.
    paper_rows: int
    paper_nnz: int
    paper_ws_mib: float
    builder: Callable[[], COOMatrix]
    note: str

    def build(self) -> COOMatrix:
        """Generate the (structure-only) pattern."""
        return self.builder()


def _e(idx, name, domain, geometry, special, prows, pnnz, pws, note, builder):
    return SuiteEntry(
        idx=idx,
        name=name,
        domain=domain,
        geometry=geometry,
        special=special,
        paper_rows=prows,
        paper_nnz=pnnz,
        paper_ws_mib=pws,
        builder=builder,
        note=note,
    )


SUITE: tuple[SuiteEntry, ...] = (
    _e(1, "dense", "special", False, True, 2_000, 4_000_000, 30.54,
       "fully dense; the largest possible blocks",
       lambda: g.dense(1000)),
    _e(2, "random", "special", False, True, 100_000, 14_977_726, 115.42,
       "uniform random; worst case for padded blocking",
       lambda: g.random_uniform(150_000, 150_000, 1_800_000, seed=2)),
    _e(3, "cfd2", "CFD", False, False, 123_440, 1_605_669, 24.95,
       "mesh with fine-grained contiguity destroyed",
       lambda: g.partially_shuffled(g.grid2d(480, 480, 9), window=256, seed=3)),
    _e(4, "parabolic_fem", "CFD", False, False, 525_825, 2_100_225, 34.05,
       "5-point stencil, very short rows",
       lambda: g.grid2d(510, 510, 5)),
    _e(5, "Ga41As41H72", "Chemistry", False, False, 268_096, 9_378_286, 74.62,
       "short 2D clusters; decomposition-friendly",
       lambda: g.clustered_rows(70_000, 70_000, 1_600_000, (2, 6),
                                patch_height=2, seed=5)),
    _e(6, "ASIC_680k", "Circuit", False, False, 682_862, 3_871_773, 37.35,
       "diagonal + short irregular rows + supply hubs",
       lambda: g.circuit(240_000, avg_offdiag=3.5, seed=6)),
    _e(7, "G3_circuit", "Circuit", False, False, 1_585_478, 4_623_152, 76.59,
       "very short rows, mostly local couplings",
       lambda: g.circuit(600_000, avg_offdiag=1.8, local_fraction=0.8, seed=7)),
    _e(8, "Hamrle3", "Circuit", False, False, 1_447_360, 5_514_242, 58.63,
       "short rows, tight local span",
       lambda: g.circuit(520_000, avg_offdiag=2.6, local_span=16, seed=8)),
    _e(9, "rajat31", "Circuit", False, False, 4_690_002, 20_316_253, 208.67,
       "large circuit, short rows",
       lambda: g.circuit(800_000, avg_offdiag=2.2, seed=9)),
    _e(10, "cage15", "Graph", False, False, 5_154_859, 99_199_551, 815.82,
       "DNA electrophoresis graph; mild locality, narrow degrees",
       lambda: g.banded_random(160_000, 2_400_000, bandwidth=2_000, seed=10)),
    _e(11, "wb-edu", "Graph", False, False, 9_845_725, 57_156_537, 548.75,
       "web crawl; skewed in-degrees",
       lambda: g.powerlaw_graph(800_000, 2_400_000, alpha=2.2,
                                uniform_fraction=0.15, seed=11)),
    _e(12, "wikipedia", "Graph", False, False, 3_148_440, 39_383_235, 336.50,
       "strongly power-law links; latency-bound",
       lambda: g.powerlaw_graph(760_000, 2_400_000, alpha=1.7, seed=12)),
    _e(13, "degme", "Lin. Prog.", False, False, 659_415, 8_127_528, 65.94,
       "wide LP constraints, short runs",
       lambda: g.linear_programming(110_000, 150_000, 1_100_000, run_len=2,
                                    seed=13)),
    _e(14, "rail4284", "Lin. Prog.", False, False, 1_096_894, 1_000_000, 90.31,
       "hyper-sparse: fewer nonzeros than rows",
       lambda: g.linear_programming(480_000, 8_000, 550_000, run_len=1,
                                    seed=14)),
    _e(15, "spal_004", "Lin. Prog.", False, False, 321_696, 46_168_124, 353.54,
       "dense row segments over a wide column space; latency-bound",
       lambda: g.linear_programming(42_000, 760_000, 2_300_000, run_len=12,
                                    seed=15)),
    _e(16, "bone010", "Other", False, False, 986_703, 36_326_514, 288.44,
       "3D FE bone model, 3-dof node blocks",
       lambda: g.grid3d(22, 22, 22, 27, dof=3, drop_fraction=0.30, seed=16)),
    _e(17, "kkt_power", "Power", True, False, 2_063_494, 8_130_343, 121.05,
       "KKT system; blocking barely applicable",
       lambda: g.circuit(700_000, avg_offdiag=2.4, local_fraction=0.5,
                         seed=17)),
    _e(18, "largebasis", "Opt.", True, False, 440_020, 5_560_100, 45.01,
       "9-point mesh with 2-dof blocks",
       lambda: g.grid2d(195, 195, 9, dof=2, drop_fraction=0.25, seed=18)),
    _e(19, "TSOPF_RS", "Opt.", True, False, 38_120, 16_171_169, 123.81,
       "very dense rows in long runs; everything blocks well",
       lambda: g.clustered_rows(6_200, 6_200, 2_300_000, (40, 120), seed=19)),
    _e(20, "af_shell10", "Struct.", True, False, 1_508_065, 27_090_195, 223.94,
       "shell FEM, 2-dof node blocks",
       lambda: g.grid2d(350, 350, 5, dof=2, drop_fraction=0.18, seed=20)),
    _e(21, "audikw_1", "Struct.", True, False, 943_695, 39_297_771, 310.62,
       "3D FEM, 3-dof node blocks",
       lambda: g.grid3d(20, 20, 20, 27, dof=3, drop_fraction=0.30, seed=21)),
    _e(22, "F1", "Struct.", True, False, 343_791, 13_590_452, 107.62,
       "3D FEM, 3-dof node blocks",
       lambda: g.grid3d(21, 20, 20, 27, dof=3, drop_fraction=0.32, seed=22)),
    _e(23, "fdiff", "Struct.", True, False, 4_000_000, 27_840_000, 258.18,
       "3D 7-point finite differences: pure diagonals",
       lambda: g.grid3d(64, 64, 64, 7)),
    _e(24, "gearbox", "Struct.", True, False, 153_746, 4_617_075, 71.04,
       "3D FEM, 3-dof node blocks (small)",
       lambda: g.grid3d(19, 19, 19, 27, dof=3, drop_fraction=0.24, seed=24)),
    _e(25, "inline_1", "Struct.", True, False, 503_712, 18_660_027, 148.13,
       "3D FEM, 3-dof node blocks",
       lambda: g.grid3d(19, 19, 19, 27, dof=3, drop_fraction=0.30, seed=25)),
    _e(26, "ldoor", "Struct.", True, False, 952_203, 23_737_339, 192.00,
       "3D FEM, 3-dof node blocks (large)",
       lambda: g.grid3d(21, 21, 21, 27, dof=3, drop_fraction=0.26, seed=26)),
    _e(27, "pwtk", "Struct.", True, False, 217_918, 5_926_171, 47.71,
       "wind tunnel; 6-dof node blocks",
       lambda: g.grid2d(75, 75, 9, dof=6, drop_fraction=0.22, seed=27)),
    _e(28, "thermal2", "Other", True, False, 1_228_045, 4_904_179, 51.47,
       "unstructured mesh, random numbering; latency-bound",
       lambda: g.shuffled(g.grid2d(880, 880, 5), seed=28)),
    _e(29, "nd24k", "Other", True, False, 72_000, 14_393_817, 110.64,
       "large dense 2D clusters (nested-dissection style)",
       lambda: g.clustered_rows(30_000, 30_000, 2_000_000, (3, 6),
                                patch_height=4, seed=29)),
    _e(30, "stomach", "Other", True, False, 213_360, 3_021_648, 25.50,
       "ragged multi-diagonal pattern: BCSD territory",
       lambda: g.diagonal_pattern(
           170_000, (0, 1, -1, 2, -2, 413, -413, 414, -414), fill=0.92,
           seed=30)),
)


def get_entry(name_or_idx: str | int) -> SuiteEntry:
    """Look up a suite entry by name or 1-based index."""
    for entry in SUITE:
        if entry.name == name_or_idx or entry.idx == name_or_idx:
            return entry
    raise KeyError(f"no suite entry {name_or_idx!r}")


def entry_names() -> list[str]:
    return [e.name for e in SUITE]
