"""Synthetic sparse-pattern generators.

Each function returns a structure-only :class:`~repro.formats.COOMatrix`
reproducing the *structural class* of one family of matrices from the
paper's suite (Table I): what matters to blocked SpMV is blockability,
padding behaviour, row-length distribution and column-access regularity —
not the numeric values.  See DESIGN.md ("Substitutions") for the mapping
and :mod:`repro.matrices.suite` for the 30 concrete instantiations.

All generators are deterministic given their ``seed`` and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError
from ..formats.coo import COOMatrix

__all__ = [
    "dense",
    "banded_random",
    "random_uniform",
    "grid2d",
    "grid3d",
    "powerlaw_graph",
    "circuit",
    "linear_programming",
    "clustered_rows",
    "diagonal_pattern",
    "shuffled",
    "partially_shuffled",
    "expand_dof",
    "random_values",
]


def dense(n: int, m: int | None = None) -> COOMatrix:
    """A fully dense ``n x m`` pattern (the suite's special matrix #1)."""
    m = n if m is None else m
    rows = np.repeat(np.arange(n, dtype=np.int64), m)
    cols = np.tile(np.arange(m, dtype=np.int64), n)
    return COOMatrix(n, m, rows, cols, None, canonical=True)


def random_uniform(n: int, m: int, nnz: int, seed: int = 0) -> COOMatrix:
    """Uniformly random positions (special matrix #2).

    Duplicates are merged by canonicalisation, so the result holds *up to*
    ``nnz`` entries; a 2 % oversample keeps the shortfall negligible.
    """
    rng = np.random.default_rng(seed)
    k = int(nnz * 1.02)
    rows = rng.integers(0, n, k)
    cols = rng.integers(0, m, k)
    coo = COOMatrix(n, m, rows, cols, None)
    if coo.nnz > nnz:
        keep = rng.choice(coo.nnz, size=nnz, replace=False)
        keep.sort()
        coo = COOMatrix(n, m, coo.rows[keep], coo.cols[keep], None, canonical=True)
    return coo


# --------------------------------------------------------------------- #
# Mesh / stencil generators (matrices with an underlying 2D/3D geometry)
# --------------------------------------------------------------------- #
_STENCILS_2D = {
    5: [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)],
    9: [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)],
}

_STENCILS_3D = {
    7: [(0, 0, 0), (1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)],
    27: [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ],
}


def grid2d(
    nx: int,
    ny: int,
    stencil: int = 5,
    dof: int = 1,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> COOMatrix:
    """A 2D structured grid with a 5- or 9-point stencil.

    With ``dof > 1`` every grid node carries ``dof`` unknowns, producing the
    fully dense ``dof x dof`` node blocks typical of FEM structural
    matrices — the structure BCSR exploits.

    ``drop_fraction`` removes that share of the off-diagonal node couplings
    (symmetrically), emulating the irregular adjacency of an unstructured
    mesh: node blocks stay dense, but neighbouring blocks are no longer
    guaranteed, so wider-than-a-node BCSR blocks pay padding and the
    decomposed variants grow a real CSR remainder.
    """
    rows, cols = _stencil_nodes(_STENCILS_2D, stencil, (nx, ny))
    rows, cols = _drop_couplings(rows, cols, drop_fraction, seed)
    rows, cols = expand_dof(rows, cols, dof)
    return COOMatrix(nx * ny * dof, nx * ny * dof, rows, cols, None)


def grid3d(
    nx: int,
    ny: int,
    nz: int,
    stencil: int = 7,
    dof: int = 1,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> COOMatrix:
    """A 3D structured grid with a 7- or 27-point stencil.

    The 7-point pattern (``fdiff``-style) is a union of perfect matrix
    diagonals — the structure BCSD exploits.  ``drop_fraction`` works as in
    :func:`grid2d`.
    """
    rows, cols = _stencil_nodes(_STENCILS_3D, stencil, (nx, ny, nz))
    rows, cols = _drop_couplings(rows, cols, drop_fraction, seed)
    rows, cols = expand_dof(rows, cols, dof)
    n = nx * ny * nz * dof
    return COOMatrix(n, n, rows, cols, None)


def _stencil_nodes(
    stencils: dict, stencil: int, dims: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Node-level (rows, cols) of a structured-grid stencil pattern."""
    if stencil not in stencils:
        raise FormatError(f"stencil must be one of {sorted(stencils)}")
    total = int(np.prod(dims))
    node = np.arange(total, dtype=np.int64)
    coords = []
    rest = node
    for d in dims:
        coords.append(rest % d)
        rest = rest // d
    rows_l, cols_l = [], []
    for offsets in stencils[stencil]:
        ok = np.ones(total, dtype=bool)
        target = np.zeros(total, dtype=np.int64)
        scale = 1
        for axis, off in enumerate(offsets):
            j = coords[axis] + off
            ok &= (j >= 0) & (j < dims[axis])
            target += j * scale
            scale *= dims[axis]
        rows_l.append(node[ok])
        cols_l.append(target[ok])
    return np.concatenate(rows_l), np.concatenate(cols_l)


def _drop_couplings(
    rows: np.ndarray, cols: np.ndarray, drop_fraction: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrically remove a share of the off-diagonal node couplings."""
    if drop_fraction == 0.0:
        return rows, cols
    if not 0.0 <= drop_fraction < 1.0:
        raise FormatError("drop_fraction must be in [0, 1)")
    # Decide per unordered pair, so (i, j) and (j, i) live or die together.
    lo = np.minimum(rows, cols).astype(np.uint64)
    hi = np.maximum(rows, cols).astype(np.uint64)
    pair = lo * np.uint64(0x9E3779B97F4A7C15) + hi * np.uint64(0xC2B2AE3D27D4EB4F)
    pair ^= np.uint64((seed * 0x165667B19E3779F9) % 2**64)
    pair ^= pair >> np.uint64(29)
    keep = (rows == cols) | ((pair % np.uint64(10_000)).astype(np.int64)
                             >= int(drop_fraction * 10_000))
    return rows[keep], cols[keep]


# --------------------------------------------------------------------- #
# Irregular generators (matrices without an underlying geometry)
# --------------------------------------------------------------------- #
def powerlaw_graph(
    n: int,
    nnz: int,
    alpha: float = 2.0,
    uniform_fraction: float = 0.35,
    seed: int = 0,
) -> COOMatrix:
    """A directed graph with power-law column popularity (web/wiki links).

    A ``1 - uniform_fraction`` share of the targets follows a Zipf law of
    exponent ``alpha`` (a few extremely hot pages); the rest is uniform (the
    broad cold tail every web graph has).  Column accesses therefore mix
    cache-resident hubs with irregular cold references spread over the whole
    input vector — the latency-bound profile of the paper's ``wikipedia``
    and ``wb-edu`` matrices.
    """
    if alpha <= 1.0:
        raise FormatError("zipf exponent must exceed 1")
    if not 0.0 <= uniform_fraction < 1.0:
        raise FormatError("uniform_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    k = int(nnz * 1.05)
    rows = rng.integers(0, n, k)
    hot = (rng.zipf(alpha, k).astype(np.int64) - 1) % n
    # Scatter hubs across the index range instead of packing them at 0.
    hot = (hot * np.int64(2654435761)) % n
    cols = np.where(rng.random(k) < uniform_fraction, rng.integers(0, n, k), hot)
    coo = COOMatrix(n, n, rows, cols, None)
    return _trim(coo, nnz, rng)


def banded_random(
    n: int,
    nnz: int,
    bandwidth: int,
    local_fraction: float = 0.7,
    seed: int = 0,
) -> COOMatrix:
    """Random entries concentrated in a band around the diagonal.

    Models graphs with mild locality such as ``cage15`` (DNA
    electrophoresis): most couplings are near-diagonal, a minority are
    long-range, degrees are narrow.
    """
    rng = np.random.default_rng(seed)
    k = int(nnz * 1.03)
    rows = rng.integers(0, n, k)
    local = rng.random(k) < local_fraction
    offsets = rng.integers(-bandwidth, bandwidth + 1, k)
    cols = np.where(
        local, np.clip(rows + offsets, 0, n - 1), rng.integers(0, n, k)
    )
    coo = COOMatrix(n, n, rows, cols, None)
    return _trim(coo, nnz, rng)


def circuit(
    n: int,
    avg_offdiag: float = 2.0,
    hub_fraction: float = 2e-5,
    hub_degree: int = 2000,
    local_fraction: float = 0.6,
    local_span: int = 64,
    n_rails: int = 512,
    seed: int = 0,
) -> COOMatrix:
    """A circuit-simulation pattern: diagonal + short irregular rows + hubs.

    Most rows hold the diagonal plus a couple of off-diagonals: the
    majority couple to nearby nodes (netlist ordering keeps circuits
    local), the rest connect to one of ``n_rails`` supply-rail columns —
    a small, hot, cache-resident set, which is why real circuit matrices
    are bandwidth- rather than latency-bound.  A few hub columns/rows are
    nearly dense.  Rows are short, so CSR loop overhead matters; blocks
    barely exist — the profile of the paper's circuit matrices
    (ASIC_680k, G3_circuit, Hamrle3, rajat31).
    """
    rng = np.random.default_rng(seed)
    diag = np.arange(n, dtype=np.int64)
    k = int(n * avg_offdiag)
    rows = rng.integers(0, n, k)
    local = rng.random(k) < local_fraction
    offsets = rng.integers(-local_span, local_span + 1, k)
    rails = rng.choice(n, size=min(n_rails, n), replace=False).astype(np.int64)
    cols = np.where(
        local,
        np.clip(rows + offsets, 0, n - 1),
        rails[rng.integers(0, rails.shape[0], k)],
    )
    # Hubs: a handful of nearly-dense columns and rows.
    n_hubs = max(int(n * hub_fraction), 1)
    hubs = rng.choice(n, size=n_hubs, replace=False).astype(np.int64)
    hub_rows = rng.integers(0, n, n_hubs * hub_degree)
    hub_cols = np.repeat(hubs, hub_degree)
    all_rows = np.concatenate([diag, rows, hub_rows, hub_cols])
    all_cols = np.concatenate([diag, cols, hub_cols, hub_rows])
    return COOMatrix(n, n, all_rows, all_cols, None)


def linear_programming(
    nrows: int,
    ncols: int,
    nnz: int,
    run_len: int = 1,
    seed: int = 0,
) -> COOMatrix:
    """A (wide) LP constraint-matrix pattern.

    Entries come in horizontal runs of ``run_len`` at random positions;
    ``run_len = 1`` gives the hyper-sparse profile of ``rail4284`` (fewer
    nonzeros than rows), larger runs give ``spal_004``-style banded rows.
    """
    rng = np.random.default_rng(seed)
    n_runs = max(int(nnz / run_len), 1)
    run_rows = rng.integers(0, nrows, n_runs)
    run_starts = rng.integers(0, max(ncols - run_len, 1), n_runs)
    rows = np.repeat(run_rows, run_len)
    cols = (run_starts[:, None] + np.arange(run_len)[None, :]).ravel()
    coo = COOMatrix(nrows, ncols, rows, np.minimum(cols, ncols - 1), None)
    return _trim(coo, nnz, rng)


def clustered_rows(
    nrows: int,
    ncols: int,
    nnz: int,
    run_len_range: tuple[int, int] = (3, 8),
    patch_height: int = 1,
    seed: int = 0,
) -> COOMatrix:
    """Dense horizontal runs — optionally stacked into 2D patches.

    With ``patch_height = 1``: dense row segments at random starts, the
    profile 1D-VBL and wide ``1 x c`` blocks exploit with no vertical
    correlation between rows (TSOPF_RS-style).  With ``patch_height > 1``
    each run is replicated over that many consecutive rows, producing the
    partially-blockable 2D clusters of the chemistry / ND matrices
    (Ga41As41H72, nd24k) where unaligned patch boundaries leave padding
    for BCSR that the decomposed variants avoid.
    """
    rng = np.random.default_rng(seed)
    lo, hi = run_len_range
    if lo < 1 or hi < lo:
        raise FormatError("bad run length range")
    if patch_height < 1:
        raise FormatError("patch_height must be >= 1")
    mean_len = (lo + hi) / 2
    n_runs = max(int(nnz / (mean_len * patch_height)), 1)
    lens = rng.integers(lo, hi + 1, n_runs)
    run_rows = rng.integers(0, max(nrows - patch_height, 1), n_runs)
    run_starts = rng.integers(0, max(ncols - hi, 1), n_runs)
    rows = np.repeat(run_rows, lens)
    total = int(lens.sum())
    # Offsets within runs: global arange minus each run's first index.
    first = np.concatenate(([0], np.cumsum(lens)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - np.repeat(first, lens)
    cols = np.repeat(run_starts, lens) + offsets
    if patch_height > 1:
        dh = np.arange(patch_height, dtype=np.int64)
        rows = (rows[:, None] + dh[None, :]).ravel()
        cols = np.repeat(cols, patch_height)
    coo = COOMatrix(
        nrows, ncols, np.minimum(rows, nrows - 1),
        np.minimum(cols, ncols - 1), None,
    )
    return _trim(coo, nnz, rng)


def diagonal_pattern(
    n: int,
    offsets: tuple[int, ...],
    fill: float = 1.0,
    seed: int = 0,
) -> COOMatrix:
    """A multi-diagonal pattern with per-entry occupancy ``fill``.

    With ``fill < 1`` the diagonals are ragged: perfect for BCSD (which
    pads the few holes) and poor for rectangular blocks — the profile of
    the paper's ``stomach`` matrix.
    """
    if not 0.0 < fill <= 1.0:
        raise FormatError("fill must be in (0, 1]")
    rng = np.random.default_rng(seed)
    rows_l, cols_l = [], []
    for d in offsets:
        i = np.arange(max(0, -d), min(n, n - d), dtype=np.int64)
        if fill < 1.0:
            i = i[rng.random(i.shape[0]) < fill]
        rows_l.append(i)
        cols_l.append(i + d)
    return COOMatrix(n, n, np.concatenate(rows_l), np.concatenate(cols_l), None)


# --------------------------------------------------------------------- #
# Structure transforms
# --------------------------------------------------------------------- #
def shuffled(coo: COOMatrix, seed: int = 0) -> COOMatrix:
    """Apply one random symmetric permutation to rows and columns.

    Destroys all locality while preserving row lengths — turns a regular
    mesh into the latency-bound profile of ``thermal2``.
    """
    rng = np.random.default_rng(seed)
    perm = rng.permutation(max(coo.nrows, coo.ncols)).astype(np.int64)
    return COOMatrix(
        coo.nrows, coo.ncols, perm[coo.rows] % coo.nrows,
        perm[coo.cols] % coo.ncols, None
    )


def partially_shuffled(coo: COOMatrix, window: int = 512, seed: int = 0) -> COOMatrix:
    """Permute indices only within windows of ``window`` consecutive ids.

    Keeps coarse locality (bandwidth) but destroys the fine-grained
    contiguity blocking needs — the profile of ``cfd2``/``parabolic_fem``
    style matrices where blocking does not pay off.
    """
    rng = np.random.default_rng(seed)
    size = max(coo.nrows, coo.ncols)
    perm = np.arange(size, dtype=np.int64)
    for start in range(0, size, window):
        stop = min(start + window, size)
        perm[start:stop] = start + rng.permutation(stop - start)
    return COOMatrix(
        coo.nrows, coo.ncols, perm[coo.rows] % coo.nrows,
        perm[coo.cols] % coo.ncols, None
    )


def expand_dof(
    rows: np.ndarray, cols: np.ndarray, dof: int
) -> tuple[np.ndarray, np.ndarray]:
    """Expand node-level connectivity into dof x dof dense blocks."""
    if dof == 1:
        return rows, cols
    a = np.arange(dof, dtype=np.int64)
    big_rows = (rows[:, None, None] * dof + a[None, :, None]).repeat(dof, axis=2)
    big_cols = (cols[:, None, None] * dof + a[None, None, :]).repeat(dof, axis=1)
    return big_rows.ravel(), big_cols.ravel()


def random_values(coo: COOMatrix, seed: int = 0) -> COOMatrix:
    """Attach reproducible standard-normal values to a pattern."""
    rng = np.random.default_rng(seed)
    return coo.with_values(rng.standard_normal(coo.nnz))


def _trim(coo: COOMatrix, nnz: int, rng: np.random.Generator) -> COOMatrix:
    """Reduce a (deduplicated) pattern to exactly ``nnz`` entries if larger."""
    if coo.nnz <= nnz:
        return coo
    keep = rng.choice(coo.nnz, size=nnz, replace=False)
    keep.sort()
    return COOMatrix(
        coo.nrows, coo.ncols, coo.rows[keep], coo.cols[keep], None, canonical=True
    )
