"""Shard-throughput scaling of the sweep execution engine.

Runs the same small suite subset through the engine at jobs ∈ {1, 2, 4}
with a fresh shard store each round, and reports shards/second.  On a
multi-core box the jobs=2/4 rounds should approach linear scaling (the
shards are embarrassingly parallel and >95% of the time is spent inside
the worker); on a single-core box they document the pool's overhead
instead.  A final round measures the resume fast path (all shards served
from the store) — it should be orders of magnitude faster than computing.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import SweepConfig
from repro.engine import SweepEngine

#: dense + pwtk: the two cheapest-to-build suite matrices, reduced config.
ENGINE_CONFIG = SweepConfig(
    precisions=("dp",),
    thread_counts=(1,),
    max_block_elems=4,
    suite_indices=(1, 27),
)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_engine_shard_throughput(benchmark, tmp_path, jobs):
    def run():
        engine = SweepEngine(
            ENGINE_CONFIG, cache_dir=tmp_path, jobs=jobs, resume=False
        )
        return engine.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.missing == []
    n_shards = len(result.matrices)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["shards_per_s"] = round(
        n_shards / benchmark.stats["mean"], 3
    )


def test_engine_resume_fast_path(benchmark, tmp_path):
    """Assembling a sweep purely from completed shards (zero compute)."""
    SweepEngine(ENGINE_CONFIG, cache_dir=tmp_path, jobs=1).run()

    def resume():
        return SweepEngine(ENGINE_CONFIG, cache_dir=tmp_path, jobs=1).run()

    result = benchmark(resume)
    assert result.missing == []
    assert len(result.matrices) == 2
