"""Regenerate Table II: matrices won per format and configuration.

Paper-shape assertions: BCSR takes the most matrices with CSR competitive;
1D-VBL is marginal; the SIMD configurations shift wins further toward the
fixed-size blocked formats.
"""

from repro.bench.experiments import table2


def test_table2_wins(benchmark, sweep):
    result = benchmark(table2, sweep)
    print()
    print(result.render())

    for cfg, counts in result.wins.items():
        blocked = sum(
            v for k, v in counts.items()
            if v is not None and k not in ("csr", "vbl")
        )
        # Blocking wins the majority of the suite in every configuration.
        assert blocked >= counts["csr"], cfg
    # 1D-VBL is marginal (the paper: one win across all configurations).
    assert result.wins["dp"]["vbl"] <= 3
    assert result.wins["sp"]["vbl"] <= 3
