"""Index compression (CSR-DU) vs blocking — the other working-set lever.

The paper's introduction divides working-set reductions into blocking and
compression (its reference [10]).  This bench compares the two families'
working sets and simulated times across three structural classes: where
blocks exist, blocking wins (it also buys compute regularity); where only
*locality* exists, delta compression still shrinks the stream; on fully
scattered matrices both degenerate gracefully.
"""

from repro.core import profile_machine, evaluate_candidates, oracle_best
from repro.formats import build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices import generators as g


def _compare(coo, precision="dp"):
    csr = build_format(coo, "csr", with_values=False)
    du = build_format(coo, "csr_du", with_values=False)
    t_csr = simulate(csr, CORE2_XEON, precision, "scalar").t_total
    t_du = simulate(du, CORE2_XEON, precision, "scalar").t_total
    return {
        "ratio": du.compression_ratio(),
        "ws_gain": csr.working_set(precision) / du.working_set(precision),
        "speedup": t_csr / t_du,
    }


def test_compression_across_structures(benchmark):
    matrices = {
        "banded mesh": g.grid2d(220, 220, 9, seed=1),
        "clustered rows": g.clustered_rows(60_000, 60_000, 1_200_000,
                                           (3, 8), seed=2),
        "scattered": g.random_uniform(220_000, 220_000, 1_000_000, seed=3),
    }
    results = benchmark.pedantic(
        lambda: {k: _compare(coo) for k, coo in matrices.items()},
        rounds=1, iterations=1,
    )
    print()
    for name, r in results.items():
        print(
            f"{name:15s} index compression {r['ratio']:.2f}x, "
            f"ws gain {r['ws_gain']:.2f}x, simulated speedup "
            f"{r['speedup']:.2f}x vs CSR"
        )
    # Locality compresses...
    assert results["banded mesh"]["ratio"] > 1.8
    assert results["clustered rows"]["ratio"] > 1.5
    # ... scattered matrices barely do;
    assert results["scattered"]["ratio"] < 1.5
    # compression must actually pay on the bandwidth-bound banded mesh.
    assert results["banded mesh"]["speedup"] > 1.05
