"""Regenerate Table I: the matrix suite with working sets.

Benchmarks the suite generation itself (all 30 synthetic matrices) and
prints the reproduced table next to the paper's published ws figures.
"""

from repro.bench.experiments import table1


def test_table1_suite(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    print()
    print(result.render())
    assert len(result.rows) == 30
