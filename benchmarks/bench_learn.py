"""Online-learning overhead and holdout-agreement benchmark.

Two questions, answered against in-process :class:`AdvisorService`
instances sharing one calibrated profile:

* **overhead** — what does ``--learn`` cost on the steady-state hot path
  (cache-hit requests, which additionally pay the serving-mode decision,
  the shadow prediction and the trace append)?  Measured as the p95
  advise latency with learning on vs off over identical seeded traffic;
  the acceptance bar is **<= 10% p95 overhead**.
* **agreement** — after training on seeded traffic, how often does the
  learned tree's shadow prediction match the OVERLAP model's choice on a
  *held-out* matrix set it never trained on?  Selection agreement (not
  timing) is the deterministic half of the output: the calibration, the
  traffic and the tree fit are all seeded/deterministic, so the model
  version and the agreement table are stable across hosts.

Results land in ``BENCH_learn.json`` (checked in at the repo root).
Wall-clock numbers live under ``"timing"`` keys and vary with the host;
everything else is deterministic.

Usage::

    python benchmarks/bench_learn.py            # full bench, writes JSON
    python benchmarks/bench_learn.py --smoke    # tiny run, no JSON (CI)
    python benchmarks/bench_learn.py --check    # validate checked-in JSON
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_learn.json"

#: p95 cache-hit latency with learning on may exceed off by at most this.
OVERHEAD_BAR = 1.10

#: Passes over the matrix set within one measured round are sized so each
#: round has ~240 samples: host jitter per request is tens of percent, so
#: the p95 estimator needs a few hundred samples to read the distribution
#: rather than the noise of a handful of draws.
FULL_TRAIN_SEEDS = tuple(range(16))
FULL_HOLDOUT_SEEDS = tuple(range(100, 140))
FULL_ROUNDS = 5
FULL_PASSES = 15
SMOKE_TRAIN_SEEDS = tuple(range(6))
SMOKE_HOLDOUT_SEEDS = tuple(range(100, 106))
SMOKE_ROUNDS = 3
SMOKE_PASSES = 40

NROWS = 1000
NNZ = 20000

#: Structural keys ``--check`` validates in the checked-in JSON.
TOP_KEYS = ("bench", "config", "overhead", "agreement")
OVERHEAD_KEYS = ("bar", "passed", "requests", "timing")
AGREEMENT_KEYS = (
    "model_version", "train_matrices", "train_records", "holdout_matrices",
    "agreement", "per_kind",
)


def _make_coo(seed: int):
    import numpy as np

    from repro.formats.coo import COOMatrix

    rng = np.random.default_rng(seed)
    return COOMatrix(
        NROWS, NROWS,
        rng.integers(0, NROWS, NNZ),
        rng.integers(0, NROWS, NNZ),
        None,
    )


def _services(tmp, profile_cache):
    from repro.learn import LearnConfig
    from repro.machine import CORE2_XEON
    from repro.serve.service import AdvisorService

    plain = AdvisorService(
        CORE2_XEON, cache_dir=Path(tmp) / "plain", profile_cache=profile_cache
    )
    learn = AdvisorService(
        CORE2_XEON,
        cache_dir=Path(tmp) / "learn",
        profile_cache=profile_cache,
        learn_config=LearnConfig(holdout_mod=2, min_train_samples=4),
    )
    return plain, learn


def _measure_round(service, matrices, passes: int = 1) -> list[float]:
    latencies = []
    for _ in range(passes):
        for coo in matrices:
            t0 = time.perf_counter()
            service.advise(coo, precision="dp")
            latencies.append(time.perf_counter() - t0)
    return latencies


def _measure_paired(plain, learn, matrices, passes: int):
    """Per-request latencies for both services, interleaved back-to-back.

    Each matrix is advised on the learn-off service and immediately after
    on the learn-on one, so a host-noise burst lands on adjacent samples
    of both sides instead of skewing whichever service held the CPU when
    it hit.
    """
    off, on = [], []
    for _ in range(passes):
        for coo in matrices:
            t0 = time.perf_counter()
            plain.advise(coo, precision="dp")
            t1 = time.perf_counter()
            learn.advise(coo, precision="dp")
            t2 = time.perf_counter()
            off.append(t1 - t0)
            on.append(t2 - t1)
    return off, on


def _p95(latencies: list[float]) -> float:
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(0.95 * len(ranked)))]


def run_bench(
    *, train_seeds, holdout_seeds, rounds: int, passes: int, tmp: Path
) -> dict:
    from repro.learn import train_once
    from repro.learn.runtime import feature_vector
    from repro.machine import CORE2_XEON
    from repro.serve.features import extract_features

    import repro.core.profiling as profiling

    profile_cache = profiling.ProfileCache()
    plain, learn = _services(tmp, profile_cache)
    train_matrices = [_make_coo(s) for s in train_seeds]

    # Warm both caches and build the trace, then train + hot-swap.
    for coo in train_matrices:
        plain.advise(coo, precision="dp")
        learn.advise(coo, precision="dp")
    summary = train_once(
        learn.learn.tracelog, learn.learn.registry, min_samples=4
    )
    if not summary["published"]:
        raise SystemExit("FATAL: training on the warm traffic did not publish")
    learn.learn.maybe_reload()
    # One post-swap pass so guided answers are cached too (their versioned
    # keys miss once); the measured rounds below are pure hot path.
    _measure_round(learn, train_matrices)

    # Overhead: min-over-rounds of the per-round p95 on identical
    # cache-hit traffic, interleaved per request (see _measure_paired) so
    # host noise gets equal chances on both sides.  Each round makes
    # ``passes`` passes over the matrix set so its p95 is a converged
    # percentile: the slots above it absorb the amortized learn-side work
    # (trace-buffer flush every ``flush_records`` requests, registry poll
    # every ``reload_poll_every``) plus stray host noise, and the
    # percentile itself reads the steady-state per-request cost.
    # Container hosts add multi-millisecond scheduler spikes (10-20x a
    # single advise); min-over-rounds takes each side's cleanest round
    # rather than the machine's noise floor.
    off_p95, on_p95 = [], []
    for _ in range(rounds):
        off_lat, on_lat = _measure_paired(
            plain, learn, train_matrices, passes
        )
        off_p95.append(_p95(off_lat))
        on_p95.append(_p95(on_lat))
    t_off, t_on = min(off_p95), min(on_p95)
    ratio = t_on / t_off

    # Agreement: shadow-predict on matrices the tree never trained on.
    tree, version = learn.learn.registry.current()
    agree = 0
    per_kind: dict[str, dict[str, int]] = {}
    for seed in holdout_seeds:
        coo = _make_coo(seed)
        analytic = plain.advise(coo, precision="dp").best.kind
        vector = feature_vector(
            extract_features(coo), CORE2_XEON, "dp"
        )
        predicted = tree.predict(vector)
        slot = per_kind.setdefault(analytic, {"observed": 0, "agreed": 0})
        slot["observed"] += 1
        if predicted == analytic:
            slot["agreed"] += 1
            agree += 1

    return {
        "bench": "learn",
        "config": {
            "nrows": NROWS,
            "nnz": NNZ,
            "train_seeds": list(train_seeds),
            "holdout_seeds": list(holdout_seeds),
            "rounds": rounds,
            "machine": "core2-xeon-2.66",
        },
        "overhead": {
            "bar": OVERHEAD_BAR,
            "passed": ratio <= OVERHEAD_BAR,
            "requests": rounds * passes * len(train_matrices),
            "timing": {
                "off_p95_ms": round(t_off * 1e3, 4),
                "on_p95_ms": round(t_on * 1e3, 4),
                "ratio": round(ratio, 4),
            },
        },
        "agreement": {
            "model_version": version,
            "train_matrices": len(train_matrices),
            "train_records": summary["samples"],
            "holdout_matrices": len(holdout_seeds),
            "agreement": round(agree / len(holdout_seeds), 4),
            "per_kind": {
                kind: per_kind[kind] for kind in sorted(per_kind)
            },
        },
    }


def check(path: Path) -> int:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    problems = [k for k in TOP_KEYS if k not in payload]
    problems += [
        f"overhead.{k}" for k in OVERHEAD_KEYS
        if k not in payload.get("overhead", {})
    ]
    problems += [
        f"agreement.{k}" for k in AGREEMENT_KEYS
        if k not in payload.get("agreement", {})
    ]
    if not payload.get("overhead", {}).get("passed", False):
        problems.append("overhead.passed is not true")
    if problems:
        print(f"FAIL: {path} schema: {problems}", file=sys.stderr)
        return 1
    print(f"{path.name}: schema OK, overhead bar passed "
          f"(ratio {payload['overhead']['timing']['ratio']}x, "
          f"agreement {payload['agreement']['agreement']})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny run, overhead bar only, no JSON output (CI signal)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the checked-in BENCH_learn.json schema and exit",
    )
    parser.add_argument("--output", default=str(OUTPUT))
    args = parser.parse_args(argv)
    if args.check:
        return check(Path(args.output))

    import tempfile

    seeds = SMOKE_TRAIN_SEEDS if args.smoke else FULL_TRAIN_SEEDS
    holdout = SMOKE_HOLDOUT_SEEDS if args.smoke else FULL_HOLDOUT_SEEDS
    rounds = SMOKE_ROUNDS if args.smoke else FULL_ROUNDS
    passes = SMOKE_PASSES if args.smoke else FULL_PASSES
    with tempfile.TemporaryDirectory() as tmp:
        payload = run_bench(
            train_seeds=seeds, holdout_seeds=holdout, rounds=rounds,
            passes=passes, tmp=Path(tmp),
        )

    timing = payload["overhead"]["timing"]
    print(
        f"advise p95: off {timing['off_p95_ms']:.3f}ms, "
        f"on {timing['on_p95_ms']:.3f}ms -> {timing['ratio']:.3f}x "
        f"(bar {OVERHEAD_BAR}x); holdout agreement "
        f"{payload['agreement']['agreement']:.2%} over "
        f"{payload['agreement']['holdout_matrices']} matrices"
    )
    if args.smoke:
        return 0 if payload["overhead"]["passed"] else 1

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if not payload["overhead"]["passed"]:
        print(
            f"FAIL: learn-on p95 is {timing['ratio']:.3f}x learn-off "
            f"(bar {OVERHEAD_BAR}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
