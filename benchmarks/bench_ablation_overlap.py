"""Ablation: does the overlap pipeline matter? (DESIGN.md item 1)

The simulator combines memory and compute as
``max(t_mem, (1-eta)*t_comp) + eta*t_comp``.  Ablating the overlap (every
compute cycle exposed, as on a machine without hardware prefetching) makes
the MEMCOMP model the accurate one and breaks OVERLAP's calibration
assumption — demonstrating that OVERLAP's edge comes precisely from
modelling the prefetch overlap, not from a generic fudge factor.
"""

from statistics import mean

from repro.core import evaluate_candidates, profile_machine
from repro.machine import CORE2_XEON
from repro.matrices.generators import grid2d
from repro.types import Impl


def _model_errors(machine):
    coo = grid2d(110, 110, 5, dof=3, drop_fraction=0.2, seed=9)
    profile = profile_machine(machine, "dp")
    results = evaluate_candidates(
        coo, machine, "dp", profile=profile, models=("mem", "memcomp"),
    )
    errors = {}
    for model in ("mem", "memcomp"):
        ratios = [
            abs(r.predictions[model] / r.t_real - 1.0)
            for r in results
            if model in r.predictions
        ]
        errors[model] = mean(ratios)
    return errors


def test_no_overlap_machine_favours_memcomp(benchmark):
    """With eta = 1 (no overlap at all), MEMCOMP becomes near-exact."""
    no_overlap = CORE2_XEON.with_overrides(
        eta_exposed={Impl.SCALAR: 1.0, Impl.SIMD: 1.0}
    )
    errors = benchmark.pedantic(
        _model_errors, args=(no_overlap,), rounds=1, iterations=1
    )
    print(f"\nno-overlap machine: {errors}")
    # The additive model matches the additive machine up to the residual
    # that profiling cannot see (dense-amortised row overheads, the DEC
    # pass penalty) — an order of magnitude tighter than on the default
    # (overlapping) machine, where MEMCOMP overshoots by >10%.
    assert errors["memcomp"] < 0.06
    assert errors["mem"] > errors["memcomp"]


def test_default_machine_favours_overlap(benchmark):
    """On the real (overlapping) machine, MEMCOMP overpredicts heavily."""
    errors = benchmark.pedantic(
        _model_errors, args=(CORE2_XEON,), rounds=1, iterations=1
    )
    print(f"\ndefault machine: {errors}")
    assert errors["memcomp"] > 0.10
