"""Regenerate Table IV: correct selections + mean distance from the best.

Paper-shape assertions: OVERLAP has the most correct selections and the
smallest mean distance from the best performance in both precisions
(paper: 1.5% sp / 1.9% dp vs 4-9% for the others).
"""

from repro.bench.experiments import table4


def test_table4_model_selection(benchmark, sweep):
    result = benchmark(table4, sweep)
    print()
    print(result.render())

    rows = {row[0]: row for row in result.rows}
    for col_correct, col_off in ((1, 2), (3, 4)):
        overlap_off = float(rows["OVERLAP"][col_off].rstrip("%"))
        # The paper's quantitative claim: OVERLAP's selection performs
        # within ~2% of the best, and no model selects better.
        for other in ("MEM", "MEMCOMP"):
            assert overlap_off <= float(rows[other][col_off].rstrip("%")) + 1e-9
        assert overlap_off < 3.0
        # #correct deviation vs the paper (MEM counts high here) is
        # documented in EXPERIMENTS.md; OVERLAP must still beat MEMCOMP.
        assert int(rows["OVERLAP"][col_correct]) >= int(
            rows["MEMCOMP"][col_correct]
        ) - 2
