"""Fleet serving benchmark: single worker vs a 4-worker sharded fleet.

Drives the deterministic traffic-replay harness (:mod:`repro.fleet`)
against two topologies, over real sockets:

* **single** — one ``repro serve`` worker, hit directly (the pre-fleet
  deployment shape);
* **fleet** — four supervised workers behind the content-sharded
  balancer (``python -m repro fleet --workers 4``).

Both replay the *same* seeded steady mix (equal ``sequence_sha256`` is
asserted), then the fleet additionally runs the chaos mix — every worker
under the PR 5 fault plan, one worker SIGKILLed halfway through — and
must keep every response inside the documented {200, 503, 504} budget.

Results land in ``BENCH_serve.json`` (checked in at the repo root).
Deterministic fields (sequence digests, status tallies, invariants) are
stable across runs; wall-clock numbers live under each table's
``"timing"`` key and vary with the host.

**The throughput bar is CPU-scaled.**  Worker processes only buy
parallel speedup when there are cores to run them; on a 1-CPU container
the fleet's win is limited to GIL-convoy relief.  The >= 2x acceptance
bar is therefore enforced only when ``os.cpu_count() >= 4``; below that
the run records the measured ratio with ``"enforced": false`` and
asserts the fleet merely does not regress (>= 0.9x).  docs/serving.md
discusses the measured 1-CPU numbers.

Usage::

    python benchmarks/bench_serve.py            # full bench, writes JSON
    python benchmarks/bench_serve.py --smoke    # 2 workers, tiny mix, no JSON
    python benchmarks/bench_serve.py --check    # validate checked-in JSON
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serve.json"

SEED = 1337
FULL_REQUESTS = 120
FULL_CLIENTS = 8
FULL_WORKERS = 4
CHAOS_REQUESTS = 60

#: Enforced only with enough cores for the workers to actually run in
#: parallel; see the module docstring.
SPEEDUP_BAR = 2.0
MIN_CORES_FOR_BAR = 4
#: On starved hosts the fleet must at least not regress.
NO_REGRESSION_BAR = 0.9

#: Keys every benchmark table must carry (``--check`` and CI validate
#: the checked-in JSON against this).
TABLE_KEYS = (
    "mix", "seed", "requests", "clients", "matrices",
    "sequence_sha256", "statuses", "violations", "timing",
)
TIMING_KEYS = (
    "elapsed_s", "throughput_rps", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
)


def _drive_single(plan, cache_dir, *, clients, allowed):
    from repro.fleet import WorkerProcess, run_load, warm_fleet

    worker = WorkerProcess(0, cache_dir=cache_dir)
    try:
        worker.spawn()
        if not worker.wait_ready(300.0):
            raise SystemExit("FATAL: single worker never became ready")
        warm_fleet(worker.base_url, plan)
        return run_load(
            worker.base_url, plan, clients=clients, allowed_statuses=allowed
        )
    finally:
        worker.stop()


def _drive_fleet(
    plan, cache_dir, *, workers, clients, allowed, kill_midway=False
):
    from repro.fleet import (
        BalancerRequestHandler,
        FleetBalancer,
        FleetConfig,
        FleetSupervisor,
        run_load,
        warm_fleet,
    )

    fault_plan = (
        json.dumps(plan.fault_plan) if plan.fault_plan is not None else None
    )
    supervisor = FleetSupervisor(
        FleetConfig(workers=workers, cache_dir=cache_dir,
                    fault_plan=fault_plan)
    )
    supervisor.start()
    balancer = FleetBalancer(
        ("127.0.0.1", 0), BalancerRequestHandler, supervisor
    )
    loop = threading.Thread(target=balancer.serve_forever, daemon=True)
    loop.start()
    try:
        host, port = balancer.server_address[:2]
        base_url = f"http://{host}:{port}"
        warm_fleet(base_url, plan)
        on_midpoint = None
        if kill_midway:
            victim = plan.seed % workers

            def on_midpoint():
                supervisor.kill_worker(victim)
        table = run_load(
            base_url, plan, clients=clients, allowed_statuses=allowed,
            on_midpoint=on_midpoint,
        )
        table["restarts"] = sum(
            s["restarts"] for s in supervisor.snapshot()
        )
        return table
    finally:
        balancer.shutdown()
        balancer.server_close()
        loop.join(timeout=5)
        supervisor.shutdown()


def run_bench(*, workers, requests, clients, chaos_requests) -> dict:
    from repro.fleet import build_plan

    cpu_count = os.cpu_count() or 1
    enforced = cpu_count >= MIN_CORES_FOR_BAR
    plan = build_plan("steady", SEED, requests)

    with tempfile.TemporaryDirectory() as tmp_a:
        single = _drive_single(
            plan, tmp_a, clients=clients, allowed=(200,)
        )
    with tempfile.TemporaryDirectory() as tmp_b:
        fleet = _drive_fleet(
            plan, tmp_b, workers=workers, clients=clients, allowed=(200,)
        )
    if single["sequence_sha256"] != fleet["sequence_sha256"]:
        raise SystemExit("FATAL: single and fleet replayed different plans")

    chaos_plan = build_plan("chaos", SEED, chaos_requests)
    with tempfile.TemporaryDirectory() as tmp_c:
        chaos = _drive_fleet(
            chaos_plan, tmp_c, workers=workers, clients=clients,
            allowed=(200, 503, 504), kill_midway=True,
        )

    ratio = (
        fleet["timing"]["throughput_rps"]
        / single["timing"]["throughput_rps"]
    )
    return {
        "bench": "serve",
        "config": {
            "seed": SEED,
            "workers": workers,
            "clients": clients,
            "steady_requests": requests,
            "chaos_requests": chaos_requests,
            "matrices": list(plan.matrices),
        },
        "host": {
            "cpu_count": cpu_count,
            "speedup_bar": SPEEDUP_BAR,
            "enforced": enforced,
            "note": (
                "bar enforced (>= %d cores)" % MIN_CORES_FOR_BAR
                if enforced else
                "bar not enforced: %d CPU(s) cannot run %d workers in "
                "parallel; recording the measured ratio only"
                % (cpu_count, workers)
            ),
        },
        "single": single,
        "fleet": fleet,
        "fleet_vs_single_throughput": round(ratio, 3),
        "chaos": chaos,
        "invariants": {
            "same_sequence": True,
            "steady_all_200": (
                set(single["statuses"]) == {"200"}
                and set(fleet["statuses"]) == {"200"}
            ),
            "chaos_within_budget": not chaos["violations"],
            "chaos_statuses_allowed": set(chaos["statuses"]) <= {
                "200", "503", "504"
            },
        },
    }


def validate_payload(payload: dict) -> list[str]:
    """Schema problems with a BENCH_serve payload (empty = valid)."""
    problems = []
    for key in ("bench", "config", "host", "single", "fleet",
                "fleet_vs_single_throughput", "chaos", "invariants"):
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    for name in ("single", "fleet", "chaos"):
        table = payload.get(name)
        if not isinstance(table, dict):
            continue
        for key in TABLE_KEYS:
            if key not in table:
                problems.append(f"{name}: missing key {key!r}")
        timing = table.get("timing", {})
        for key in TIMING_KEYS:
            if key not in timing:
                problems.append(f"{name}.timing: missing key {key!r}")
    invariants = payload.get("invariants", {})
    for key, value in invariants.items():
        if value is not True:
            problems.append(f"invariant {key!r} is {value!r}, not true")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="2 workers, tiny steady mix, no JSON output (CI signal)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the checked-in BENCH_serve.json schema and exit",
    )
    parser.add_argument(
        "--output", default=str(OUTPUT),
        help="where to write the results JSON (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            payload = json.loads(OUTPUT.read_text())
        except (OSError, ValueError) as exc:
            print(f"FAIL: cannot read {OUTPUT}: {exc}", file=sys.stderr)
            return 1
        problems = validate_payload(payload)
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if not problems:
            print(f"{OUTPUT.name}: schema OK")
        return 1 if problems else 0

    if args.smoke:
        from repro.fleet import build_plan

        plan = build_plan("steady", SEED, 12, ("dense", "pwtk"))
        with tempfile.TemporaryDirectory() as tmp:
            table = _drive_fleet(
                plan, tmp, workers=2, clients=2, allowed=(200,)
            )
        print(
            f"smoke: {table['requests']} requests, statuses "
            f"{table['statuses']}, {table['timing']['throughput_rps']} rps"
        )
        if table["violations"] or set(table["statuses"]) != {"200"}:
            print("FAIL: smoke saw non-200 responses", file=sys.stderr)
            return 1
        return 0

    payload = run_bench(
        workers=FULL_WORKERS, requests=FULL_REQUESTS,
        clients=FULL_CLIENTS, chaos_requests=CHAOS_REQUESTS,
    )
    ratio = payload["fleet_vs_single_throughput"]
    print(
        f"single {payload['single']['timing']['throughput_rps']} rps, "
        f"fleet({FULL_WORKERS}) {payload['fleet']['timing']['throughput_rps']}"
        f" rps -> {ratio}x ({payload['host']['note']})"
    )
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")

    failures = []
    if not payload["invariants"]["steady_all_200"]:
        failures.append("steady runs saw non-200 responses")
    if not payload["invariants"]["chaos_within_budget"]:
        failures.append(
            f"chaos run broke the status budget: "
            f"{payload['chaos']['violations'][:3]}"
        )
    bar = SPEEDUP_BAR if payload["host"]["enforced"] else NO_REGRESSION_BAR
    if ratio < bar:
        failures.append(
            f"fleet/single throughput {ratio}x below the "
            f"{'enforced' if payload['host']['enforced'] else 'reduced'} "
            f"{bar}x bar"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
