"""Extension benchmark: learned format-kind selection (Sec. VI).

Leave-one-out over the 30-matrix suite: train the decision tree on 29
matrices' winning format kinds (from the cached sweep), predict the 30th,
and measure the real cost of the hybrid selection (learned kind + OVERLAP
block ranking within it) against the oracle.
"""

import numpy as np

from repro.core.learned import LearnedSelector, extract_features
from repro.machine import CORE2_XEON
from repro.matrices.suite import SUITE


def _winning_kind(matrix_sweep, precision="dp"):
    records = matrix_sweep.select(precision=precision, nthreads=1)
    return min(records, key=lambda r: r.t_real).kind


def test_learned_selection_leave_one_out(benchmark, sweep):
    precision = "dp"
    entries = [e for e in SUITE if not e.special]
    coos = {e.name: e.build() for e in entries}
    feats = {
        name: extract_features(coo, CORE2_XEON, precision)
        for name, coo in coos.items()
    }
    labels = {
        e.name: _winning_kind(sweep.matrix(e.name), precision)
        for e in entries
    }

    def leave_one_out():
        hits = 0
        offs = []
        for test_entry in entries:
            train = [e.name for e in entries if e.name != test_entry.name]
            selector = LearnedSelector(CORE2_XEON, min_samples_leaf=2)
            selector.fit(
                np.array([feats[n] for n in train]),
                [labels[n] for n in train],
            )
            predicted = selector.predict_kind(coos[test_entry.name], precision)
            truth = labels[test_entry.name]
            if predicted == truth:
                hits += 1
            # Real cost of the best candidate within the predicted kind.
            records = sweep.matrix(test_entry.name).select(
                precision=precision, nthreads=1
            )
            best = min(records, key=lambda r: r.t_real)
            in_kind = [r for r in records if r.kind == predicted]
            best_in_kind = min(in_kind, key=lambda r: r.t_real)
            offs.append(best_in_kind.t_real / best.t_real - 1)
        return hits, sum(offs) / len(offs)

    hits, mean_off = benchmark.pedantic(
        leave_one_out, rounds=1, iterations=1
    )
    print(
        f"\nleave-one-out: {hits}/{len(entries)} kinds predicted exactly; "
        f"kind-constrained oracle {mean_off * 100:.1f}% off the global best"
    )
    # The structural features must carry real signal: far better than the
    # 1-in-6 chance level, and the predicted kind must contain near-best
    # candidates on average.
    assert hits >= len(entries) // 2
    assert mean_off < 0.10
