"""Regenerate Fig. 2: win distribution across formats for 1, 2 and 4 cores.

Paper-shape assertion: the picture matches the single-threaded one — BCSR
keeps the most wins, with CSR and BCSD following — and memory-bandwidth
saturation does not hand the suite back to CSR.
"""

from repro.bench.experiments import figure2


def test_fig2_multicore_wins(benchmark, sweep):
    result = benchmark(figure2, sweep)
    print()
    print(result.render())

    for cfg, counts in result.wins.items():
        total = sum(counts.values())
        assert total == 28, cfg  # specials excluded
        blocked = total - counts["csr"]
        assert blocked >= counts["csr"], cfg
