"""Speed of the execution simulator and its cache model.

One full autotuning pass simulates ~100 candidates x 2 precisions x 3
thread counts per matrix; these benches track the per-call cost of the
pieces that dominate.
"""

import numpy as np
import pytest

from repro.formats import build_format
from repro.machine import simulate
from repro.machine.cache import estimate_stream_misses


@pytest.fixture(scope="module")
def fem_csr(medium_fem):
    return build_format(medium_fem, "csr", with_values=False)


def test_simulate_cold(benchmark, medium_fem, machine):
    """simulate() including the x-miss analysis (fresh structure each time)."""
    def run():
        fmt = build_format(medium_fem, "bcsr", (3, 3), with_values=False)
        return simulate(fmt, machine, "dp", "scalar")

    res = benchmark(run)
    assert res.t_total > 0


def test_simulate_warm(benchmark, fem_csr, machine):
    """simulate() with the x-miss analysis memoised (the sweep's hot path)."""
    simulate(fem_csr, machine, "dp", "scalar")  # warm the cache
    res = benchmark(simulate, fem_csr, machine, "dp", "scalar")
    assert res.t_total > 0


def test_cache_estimator(benchmark):
    rng = np.random.default_rng(0)
    lines = rng.integers(0, 60_000, 1_500_000)
    misses = benchmark(estimate_stream_misses, lines, 32_768)
    assert misses > 0


def test_profile_machine(benchmark, machine):
    """Full t_b / nof calibration (cached per machine in real use)."""
    from repro.core.profiling import profile_machine

    profile = benchmark.pedantic(
        profile_machine, args=(machine, "dp"), rounds=1, iterations=1
    )
    assert len(profile.t_b) == 53
