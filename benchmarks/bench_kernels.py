"""Wall-clock SpMV throughput of the NumPy kernels, per storage format.

These numbers time *this package's vectorized Python kernels on the host
machine* — useful to compare kernel implementations against each other, but
NOT representative of the compiled-C kernels the paper measures (see
DESIGN.md: interpreter/NumPy dispatch overheads dominate, which is exactly
why the reproduction's "measured" times come from the machine simulator).
"""

import pytest

from repro.formats import build_format

FORMATS = [
    ("csr", None),
    ("bcsr", (3, 3)),
    ("bcsr", (1, 4)),
    ("bcsr_dec", (3, 3)),
    ("bcsd", 4),
    ("bcsd_dec", 4),
    ("vbl", None),
    ("ubcsr", (3, 3)),
    ("vbr", None),
]


@pytest.mark.parametrize("kind,block", FORMATS,
                         ids=[f"{k}-{b}" for k, b in FORMATS])
def test_spmv_wall_clock(benchmark, medium_fem, medium_x, kind, block):
    fmt = build_format(medium_fem, kind, block)
    out = benchmark(fmt.spmv, medium_x)
    assert out.shape == (medium_fem.nrows,)
    gflops = 2 * fmt.nnz / benchmark.stats["mean"] / 1e9
    benchmark.extra_info["host_gflops"] = round(gflops, 3)
    benchmark.extra_info["nnz"] = fmt.nnz
