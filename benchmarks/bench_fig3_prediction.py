"""Regenerate Fig. 3: predicted/measured execution time per matrix.

Paper-shape assertions: MEM underpredicts (performance upper bound),
MEMCOMP overpredicts (lower bound), OVERLAP tracks the measurement best and
within ~10-15% on average; on the latency-bound matrices all models
underpredict.
"""

from statistics import mean

from repro.bench.experiments import LATENCY_BOUND_IDS, figure3


def test_fig3_prediction_sp(benchmark, sweep):
    result = benchmark(figure3, sweep, "sp")
    print()
    print(result.render())
    _check(result)


def test_fig3_prediction_dp(benchmark, sweep):
    result = benchmark(figure3, sweep, "dp")
    print()
    print(result.render())
    _check(result)


def _check(result, latency_dips=True):
    # Ordering of the mean error: OVERLAP best, MEMCOMP worst or close.
    err = result.mean_abs_error
    assert err["overlap"] < err["mem"]
    assert err["overlap"] < err["memcomp"]
    assert err["overlap"] < 0.20  # paper: ~10%

    # MEM is a lower bound of time, MEMCOMP an upper bound, on average.
    assert mean(result.normalized["mem"]) < 1.0
    assert mean(result.normalized["memcomp"]) > 1.0

    if not latency_dips:
        return
    # The latency-bound matrices defeat MEM and OVERLAP (ratios well
    # below 1 — real time has a latency term no model includes).  The
    # rail4284 stand-in is exempt: its x footprint is tiny, it falls short
    # via loop overhead instead (see EXPERIMENTS.md).
    for idx in LATENCY_BOUND_IDS:
        if idx == 14:
            continue
        pos = result.matrix_ids.index(idx)
        assert result.normalized["mem"][pos] < 0.9
        assert result.normalized["overlap"][pos] < 0.95
