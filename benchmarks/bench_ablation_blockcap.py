"""Ablation: the paper's 8-element block cap (DESIGN.md item 4).

The paper limits fixed-size blocks to 8 elements because "preliminary
experiments showed that such blocks cannot offer any speedup over standard
CSR".  This bench widens the candidate space to 16-element blocks on a
strongly blockable matrix and measures how much the oracle gains — the gain
should be marginal, validating the cap.
"""

from repro.core import candidate_space, evaluate_candidates, oracle_best
from repro.machine import CORE2_XEON
from repro.matrices.generators import grid2d


def test_block_cap_costs_little(benchmark):
    coo = grid2d(100, 100, 9, dof=4, drop_fraction=0.15, seed=4)

    def evaluate(cap):
        results = evaluate_candidates(
            coo, CORE2_XEON, "dp",
            candidates=candidate_space(max_block_elems=cap),
            models=(),
        )
        return oracle_best(results)

    best8 = benchmark.pedantic(evaluate, args=(8,), rounds=1, iterations=1)
    best16 = evaluate(16)
    gain = best8.t_real / best16.t_real
    print(
        f"\nbest with cap 8:  {best8.candidate.label} "
        f"({best8.t_real * 1e3:.3f} ms)"
        f"\nbest with cap 16: {best16.candidate.label} "
        f"({best16.t_real * 1e3:.3f} ms)"
        f"\ngain from larger blocks: {(gain - 1) * 100:.2f}%"
    )
    assert gain < 1.06  # larger blocks buy almost nothing
