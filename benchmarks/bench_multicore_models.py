"""Extension benchmark: model adaptation to multicore (Sec. VI).

"Another important future direction is to consider the adaptation of these
models on multicore platforms."  The models here already take an
``nthreads`` argument: the memory term uses the saturated aggregate
bandwidth while the profiled compute terms stay per-thread-divided by the
padding-aware partitioning.  This bench checks the adapted OVERLAP model
still selects well at 4 cores on representative matrices.
"""

from statistics import mean

from repro.core import (
    candidate_space,
    evaluate_candidates,
    oracle_best,
    profile_machine,
    select_with_model,
)
from repro.machine import CORE2_XEON
from repro.matrices.suite import get_entry

MATRICES = ("audikw_1", "fdiff", "parabolic_fem", "pwtk", "ASIC_680k",
            "stomach")


def _selection_offsets(nthreads):
    profile = profile_machine(CORE2_XEON, "dp")
    candidates = candidate_space(include_vbl=False)
    offsets = []
    for name in MATRICES:
        coo = get_entry(name).build()
        results = evaluate_candidates(
            coo, CORE2_XEON, "dp",
            candidates=candidates,
            models=("overlap",),
            profile=profile,
            nthreads=nthreads,
        )
        best = oracle_best(results)
        sel = select_with_model(results, "overlap")
        offsets.append(sel.t_real / best.t_real - 1.0)
    return offsets


def test_overlap_adapts_to_four_cores(benchmark):
    offsets = benchmark.pedantic(
        _selection_offsets, args=(4,), rounds=1, iterations=1
    )
    print(
        "\n4-core OVERLAP selection, distance from the 4-core oracle: "
        + ", ".join(
            f"{n}={o * 100:.1f}%" for n, o in zip(MATRICES, offsets)
        )
    )
    assert mean(offsets) < 0.06
    assert max(offsets) < 0.15
