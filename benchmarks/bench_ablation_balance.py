"""Ablation: padding-aware vs raw-nnz load balancing (DESIGN.md item 2).

The paper balances threads by *stored* elements, counting padding ("we also
accounted for the extra zero elements used for the padding").  On a matrix
whose padding concentrates in some rows, balancing by true nonzeros leaves
one thread with disproportionate compute; this bench quantifies the gap.
"""

import numpy as np

from repro.formats import BCSRMatrix, COOMatrix, bcsr_block_stats
from repro.machine import CORE2_XEON
from repro.parallel import balanced_partition, stored_per_block_row


def _skewed_matrix():
    """Top half: dense 2x4 blocks (no padding); bottom half: scattered
    singletons (7 padding zeros per stored element)."""
    rng = np.random.default_rng(3)
    n = 4096
    rows_top = np.repeat(np.arange(0, n // 2), 8)
    cols_top = (
        (np.arange(rows_top.shape[0]) % 8)
        + 8 * rng.integers(0, n // 8, rows_top.shape[0])
    )
    k = n * 4
    rows_bot = rng.integers(n // 2, n, k)
    cols_bot = rng.integers(0, n, k)
    return COOMatrix(
        n, n,
        np.concatenate([rows_top, rows_bot]),
        np.concatenate([cols_top, cols_bot]),
        None,
    )


def test_padding_aware_balance_wins(benchmark):
    coo = _skewed_matrix()
    bcsr = BCSRMatrix.from_coo(coo, (2, 4), with_values=False)
    stats = bcsr_block_stats(coo, 2, 4)

    stored = stored_per_block_row(bcsr)  # the paper's weights
    true_nnz = np.zeros(bcsr.n_block_rows)
    np.add.at(true_nnz, stats.block_row, stats.counts)

    costs = CORE2_XEON.costs.block_row_cycles(bcsr, "scalar", "dp")

    def imbalance(weights):
        part = balanced_partition(weights, 4)
        per_thread = part.segment_sums(costs)
        return float(per_thread.max() / per_thread.mean())

    aware = benchmark(imbalance, stored)
    naive = imbalance(true_nnz)
    print(f"\ncompute imbalance (max/mean): padding-aware {aware:.3f}, "
          f"raw-nnz {naive:.3f}")
    # The kernel computes on stored elements, so stored-element balancing
    # must track the compute better than true-nnz balancing.
    assert aware < naive
