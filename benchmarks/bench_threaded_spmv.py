"""Wall-clock scaling of the real multithreaded SpMV driver.

Host-machine numbers (like bench_kernels.py, not architecture-
representative); what they do verify is that the padding-aware row-block
partitioning produces a correct, contention-free parallel SpMV whose
per-call overhead stays bounded.
"""

import numpy as np
import pytest

from repro.formats import build_format
from repro.parallel import ThreadedSpMV


@pytest.fixture(scope="module")
def fmt(medium_fem):
    return build_format(medium_fem, "bcsr", (3, 3))


@pytest.mark.parametrize("nthreads", [1, 2, 4])
def test_threaded_spmv_wall_clock(benchmark, fmt, medium_x, nthreads):
    mv = ThreadedSpMV(fmt, nthreads)
    expected = fmt.spmv(medium_x)
    out = benchmark(mv, medium_x)
    np.testing.assert_allclose(out, expected, atol=1e-9)
    benchmark.extra_info["nthreads"] = nthreads
