"""Shared fixtures for the benchmark harness.

The table/figure benchmarks are projections of one full sweep over the
30-matrix suite.  The sweep is expensive (~10 minutes) and therefore cached
under ``.repro_cache/`` — the first benchmark run pays it, every later run
reuses it.  Run ``python -m repro sweep --progress`` beforehand to watch it.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench.harness import SweepConfig, load_or_run_sweep
from repro.machine import CORE2_XEON


@pytest.fixture(scope="session")
def sweep():
    """The full cached sweep (runs it on first use)."""
    return load_or_run_sweep(SweepConfig(), cache_dir=".repro_cache")


@pytest.fixture(scope="session")
def machine():
    return CORE2_XEON


@pytest.fixture(scope="session")
def medium_fem():
    """A medium FEM matrix with values, for wall-clock kernel benches."""
    from repro.matrices.generators import grid2d, random_values

    return random_values(grid2d(120, 120, 9, dof=3, drop_fraction=0.2), seed=1)


@pytest.fixture(scope="session")
def medium_x(medium_fem):
    return np.random.default_rng(2).standard_normal(medium_fem.ncols)
