"""Extension benchmark: the latency-aware OVERLAP+LAT model (Sec. VI).

Quantifies the paper's future-work direction: adding a calibrated
memory-latency term to OVERLAP repairs its predictions on the
latency-bound matrices while leaving the regular ones untouched.
"""

from statistics import mean

from repro.bench.experiments import LATENCY_BOUND_IDS
from repro.core import profile_machine
from repro.core.models_ext import OverlapLatencyModel, estimate_format_misses
from repro.core.models import OverlapModel
from repro.formats import build_format
from repro.machine import CORE2_XEON, simulate
from repro.matrices.suite import SUITE


def _errors_on(matrix_names, profile):
    base_model, ext_model = OverlapModel(), OverlapLatencyModel()
    base_err, ext_err = [], []
    for entry in SUITE:
        if entry.name not in matrix_names:
            continue
        coo = entry.build()
        csr = build_format(coo, "csr", with_values=False)
        real = simulate(csr, CORE2_XEON, "dp", "scalar").t_total
        base = base_model.predict(csr, CORE2_XEON, "dp", "scalar", profile)
        ext = ext_model.predict(csr, CORE2_XEON, "dp", "scalar", profile)
        base_err.append(abs(base / real - 1))
        ext_err.append(abs(ext / real - 1))
    return mean(base_err), mean(ext_err)


def test_overlap_lat_fixes_latency_matrices(benchmark):
    profile = profile_machine(CORE2_XEON, "dp", calibrate_latency=True)
    latency_names = {
        e.name for e in SUITE if e.idx in LATENCY_BOUND_IDS
    } | {"wb-edu"}

    base_err, ext_err = benchmark.pedantic(
        _errors_on, args=(latency_names, profile), rounds=1, iterations=1
    )
    print(
        f"\nlatency-bound matrices (CSR, dp): mean |err| "
        f"OVERLAP {base_err * 100:.1f}% -> OVERLAP+LAT {ext_err * 100:.1f}%"
    )
    assert ext_err < base_err / 2
    assert ext_err < 0.25

    reg_base, reg_ext = _errors_on({"audikw_1", "pwtk", "fdiff"}, profile)
    print(
        f"regular matrices: OVERLAP {reg_base * 100:.1f}% -> "
        f"OVERLAP+LAT {reg_ext * 100:.1f}% (must not regress)"
    )
    assert reg_ext <= reg_base + 0.02
