"""Advise latency of the format-advisor service.

Three measurements on the cheapest suite matrices:

* **cold** — feature extraction + pruned model evaluation, empty cache;
* **cached** — the same request again, answered from the fingerprint-keyed
  store (profile calibration and matrix build still paid, so this bounds
  the end-to-end latency a CLI user sees, not just the dict lookup);
* **pruned vs exhaustive** — the speedup the feature-driven pruning buys
  over evaluating the full candidate space.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_advisor.py -q \
        --benchmark-json=advisor.json
"""

from __future__ import annotations

import pytest

from repro.core.profiling import ProfileCache
from repro.machine.presets import CORE2_XEON
from repro.serve.service import AdvisorService

#: dense + pwtk + stomach: the cheapest-to-build suite matrices.
MATRICES = ("dense", "pwtk", "stomach")


@pytest.fixture(scope="module")
def profile_cache():
    """Calibrate once for the whole module (2.3s per service otherwise)."""
    cache = ProfileCache()
    cache.get(CORE2_XEON, "dp")
    return cache


def _service(tmp_path, profile_cache, **kwargs):
    return AdvisorService(
        CORE2_XEON,
        cache_dir=tmp_path,
        profile_cache=profile_cache,
        **kwargs,
    )


@pytest.mark.parametrize("name", MATRICES)
def test_advise_cold(benchmark, tmp_path, profile_cache, name):
    service = _service(tmp_path, profile_cache)

    def run():
        service.store.clear()
        return service.advise(name)

    rec = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not rec.cache_hit
    benchmark.extra_info["matrix"] = name
    benchmark.extra_info["n_candidates_evaluated"] = rec.n_candidates_evaluated
    benchmark.extra_info["candidate_fraction"] = round(
        rec.n_candidates_evaluated / rec.n_candidates_total, 3
    )


@pytest.mark.parametrize("name", MATRICES)
def test_advise_cached(benchmark, tmp_path, profile_cache, name):
    service = _service(tmp_path, profile_cache)
    service.advise(name)  # warm the store

    def run():
        return service.advise(name)

    rec = benchmark(run)
    assert rec.cache_hit
    benchmark.extra_info["matrix"] = name


@pytest.mark.parametrize("name", MATRICES)
def test_advise_pruned_vs_exhaustive(benchmark, tmp_path, profile_cache, name):
    """The pruning speedup, end to end (features + evaluation both timed)."""
    service = _service(tmp_path, profile_cache)

    import time

    t0 = time.perf_counter()
    exhaustive = service.advise(name, prune=False, use_cache=False)
    t_exhaustive = time.perf_counter() - t0

    def run():
        return service.advise(name, use_cache=False)

    rec = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rec.best.candidate == exhaustive.best.candidate
    benchmark.extra_info["matrix"] = name
    benchmark.extra_info["t_exhaustive_s"] = round(t_exhaustive, 3)
    benchmark.extra_info["pruning_speedup"] = round(
        t_exhaustive / benchmark.stats["mean"], 2
    )
