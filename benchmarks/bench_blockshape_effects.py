"""Block-shape effects on kernel performance (the paper's reference [9]).

The paper leans on its companion study "Exploring the effect of block
shapes on the performance of sparse kernels": for the *same* matrix, block
shapes of equal element count can differ substantially, and vectorization
changes the preference order (wider blocks amortise SIMD better, more so
in single precision).  This bench reproduces the motif on a dense matrix,
where padding plays no role and the effect is pure kernel behaviour.
"""

from repro.core.profiling import dense_coo
from repro.formats import BCSRMatrix
from repro.machine import CORE2_XEON, simulate


def _times(precision, impl):
    coo = dense_coo(1024)
    shapes = [(1, 8), (8, 1), (2, 4), (4, 2), (1, 4), (4, 1)]
    out = {}
    for shape in shapes:
        fmt = BCSRMatrix.from_coo(coo, shape, with_values=False)
        out[shape] = simulate(fmt, CORE2_XEON, precision, impl).t_total
    return out


def test_shape_preferences_shift_with_simd(benchmark):
    scalar_sp = benchmark.pedantic(
        _times, args=("sp", "scalar"), rounds=1, iterations=1
    )
    simd_sp = _times("sp", "simd")
    simd_dp = _times("dp", "simd")

    print("\ndense 1024x1024, time per shape (ms):")
    print(f"{'shape':>8s} {'sp scalar':>10s} {'sp simd':>10s} {'dp simd':>10s}")
    for shape in scalar_sp:
        print(
            f"{str(shape):>8s} {scalar_sp[shape] * 1e3:10.3f} "
            f"{simd_sp[shape] * 1e3:10.3f} {simd_dp[shape] * 1e3:10.3f}"
        )

    # Same element count, different shape, different time (scalar): the
    # row-major 1x8 and column 8x1 kernels are not interchangeable.
    assert scalar_sp[(1, 8)] != scalar_sp[(8, 1)]

    # SIMD gains more in single precision (4 lanes) than double (2 lanes)
    # on wide blocks — the mechanism behind Table II's precision shift.
    sp_gain = scalar_sp[(1, 8)] / simd_sp[(1, 8)]
    dp_gain = _times("dp", "scalar")[(1, 8)] / simd_dp[(1, 8)]
    assert sp_gain > dp_gain
