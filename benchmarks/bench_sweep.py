"""Before/after benchmark of the sweep's inner loop (the SimPlan layer).

Measures the reduced golden config — dp, 1 thread, ``max_block_elems=4``,
suite indices 1 (dense), 27 (pwtk) and 30 (rand-sparse) — twice:

* **baseline** — what a cold pre-PR worker paid: lazy in-process profile
  calibration plus the sweep through the preserved reference simulator
  (``simulate_reference``, the verbatim per-call path with the windowed
  miss-estimator loop).  The calibration itself is also routed through the
  reference simulator, as it was before the plan layer existed.
* **optimized** — what a warm post-PR worker pays: the calibrated profile
  served float-exactly from the on-disk :class:`ProfileStore` plus the
  sweep through the plan-based ``simulate``.

Both paths produce byte-identical ``canonical_json()`` — asserted here on
every run — so the speedup is free.  Results are written to
``BENCH_sweep.json`` (checked in at the repo root).

Usage::

    python benchmarks/bench_sweep.py            # full bench, writes JSON
    python benchmarks/bench_sweep.py --smoke    # one tiny matrix, no JSON

The full run asserts the PR's acceptance bar (>= 2.5x); ``--smoke`` only
asserts the optimized path wins at all, sized for a CI minute.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_INDICES = (1, 27, 30)
SMOKE_INDICES = (1,)
SPEEDUP_BAR = 2.5


def _config(indices):
    from repro.bench.harness import SweepConfig

    return SweepConfig(
        precisions=("dp",),
        thread_counts=(1,),
        max_block_elems=4,
        suite_indices=tuple(indices),
    )


def _run_baseline(config):
    """Cold pre-PR worker: lazy calibration + reference simulator."""
    import repro.core.profiling as profiling
    from repro.bench.harness import run_sweep
    from repro.core.profiling import ProfileCache
    from repro.machine.executor import simulate_reference

    original = profiling.simulate
    profiling.simulate = simulate_reference
    try:
        t0 = time.perf_counter()
        result = run_sweep(
            config=config,
            profile_cache=ProfileCache(),
            simulate_fn=simulate_reference,
        )
        elapsed = time.perf_counter() - t0
    finally:
        profiling.simulate = original
    return result, elapsed


def _run_optimized(config, store_dir):
    """Warm post-PR worker: disk-served profile + plan-based simulator."""
    from repro.bench.harness import run_sweep
    from repro.core.profiling import ProfileStore

    t0 = time.perf_counter()
    result = run_sweep(
        config=config, profile_cache=ProfileStore(store_dir)
    )
    return result, time.perf_counter() - t0


def run_bench(indices, *, rounds: int, store_dir: Path) -> dict:
    from repro.machine.presets import get_preset

    config = _config(indices)
    # Populate the profile store once, outside any measured round: the
    # engine's warm start means production sweeps find it already on disk.
    from repro.core.profiling import ProfileStore

    ProfileStore(store_dir).get(get_preset(config.machine_name), "dp")

    baselines, optimizeds = [], []
    canonical = None
    for _ in range(rounds):
        ref, t_base = _run_baseline(config)
        opt, t_opt = _run_optimized(config, store_dir)
        if ref.canonical_json() != opt.canonical_json():
            raise SystemExit("FATAL: optimized sweep is not byte-identical")
        canonical = opt.canonical_json()
        baselines.append(t_base)
        optimizeds.append(t_opt)

    per_matrix = {}
    for matrix in ref.matrices:
        timings = getattr(matrix, "_phase_timings", {})
        per_matrix[matrix.name] = {
            "idx": matrix.idx,
            "nnz": matrix.nnz,
            "reference_phases_s": {
                k: round(v, 4) for k, v in sorted(timings.items())
            },
        }
    t_base, t_opt = min(baselines), min(optimizeds)
    return {
        "config": {
            "precisions": list(config.precisions),
            "thread_counts": list(config.thread_counts),
            "max_block_elems": config.max_block_elems,
            "suite_indices": list(indices),
        },
        "rounds": rounds,
        "baseline_s": round(t_base, 3),
        "optimized_s": round(t_opt, 3),
        "speedup": round(t_base / t_opt, 3),
        "byte_identical": True,
        "records": sum(len(m.records) for m in ref.matrices),
        "canonical_sha256_prefix": __import__("hashlib")
        .sha256(canonical.encode())
        .hexdigest()[:16],
        "per_matrix": per_matrix,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one tiny matrix, one round, no JSON output (CI signal)",
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="measurement rounds; best-of is reported (default: 2)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="where to write the results JSON (full mode only)",
    )
    args = parser.parse_args(argv)

    import tempfile

    indices = SMOKE_INDICES if args.smoke else FULL_INDICES
    rounds = 1 if args.smoke else args.rounds
    with tempfile.TemporaryDirectory() as store_dir:
        payload = run_bench(indices, rounds=rounds, store_dir=Path(store_dir))

    print(
        f"sweep {list(indices)}: baseline {payload['baseline_s']:.2f}s, "
        f"optimized {payload['optimized_s']:.2f}s "
        f"-> {payload['speedup']:.2f}x (byte-identical)"
    )
    if args.smoke:
        if payload["speedup"] <= 1.0:
            print("FAIL: optimized path is not faster", file=sys.stderr)
            return 1
        return 0

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if payload["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: speedup {payload['speedup']:.2f}x below the "
            f"{SPEEDUP_BAR}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
