"""Before/after benchmark of the sweep's inner loop (batched array program).

Measures the reduced golden config — dp, 1 thread, ``max_block_elems=4``,
suite indices 1 (dense), 27 (pwtk) and 30 (rand-sparse) — three ways:

* **baseline** — what a cold pre-PR-3 worker paid: lazy in-process profile
  calibration plus the sweep through the preserved reference simulator
  (``simulate_reference``, the verbatim per-call path with the windowed
  miss-estimator loop).  The calibration itself is also routed through the
  reference simulator, as it was before the plan layer existed.
* **simplan** — the PR 3 state of the art: the calibrated profile served
  float-exactly from the on-disk :class:`ProfileStore` plus the per-cell
  plan-based ``simulate`` (``batch=False``).
* **batched** — the production path: the same warm profile plus the
  whole-matrix array program (:mod:`repro.machine.batch`), one fused
  structural planning pass and vectorized cell evaluation.

All three produce byte-identical ``canonical_json()`` — asserted on every
run, together with the golden sha — so each speedup is free.  Results are
written to ``BENCH_sweep.json`` (checked in at the repo root) with the
per-phase breakdown of both the reference and the batched path.

Usage::

    python benchmarks/bench_sweep.py            # full bench, writes JSON
    python benchmarks/bench_sweep.py --smoke    # one tiny matrix, no JSON

The full run asserts this PR's acceptance bar (batched >= 3x over the
simplan path) and the golden canonical sha; ``--smoke`` asserts its own
pinned sha through the batched path plus that batching wins at all, sized
for a CI minute.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

REPO_ROOT = Path(__file__).resolve().parent.parent

FULL_INDICES = (1, 27, 30)
SMOKE_INDICES = (1,)
#: Acceptance bar: batched over the PR 3 per-cell SimPlan path.
SPEEDUP_BAR = 3.0
#: Golden canonical_json sha prefixes (see also tests/test_plan.py).
CANONICAL_SHA = "5eb35e90e7ecbca8"
SMOKE_SHA = "68288cd28a678a98"


def _config(indices):
    from repro.bench.harness import SweepConfig

    return SweepConfig(
        precisions=("dp",),
        thread_counts=(1,),
        max_block_elems=4,
        suite_indices=tuple(indices),
    )


def _run_baseline(config):
    """Cold pre-PR-3 worker: lazy calibration + reference simulator."""
    import repro.core.profiling as profiling
    from repro.bench.harness import run_sweep
    from repro.core.profiling import ProfileCache
    from repro.machine.executor import simulate_reference

    original = profiling.simulate
    profiling.simulate = simulate_reference
    try:
        t0 = time.perf_counter()
        result = run_sweep(
            config=config,
            profile_cache=ProfileCache(),
            simulate_fn=simulate_reference,
        )
        elapsed = time.perf_counter() - t0
    finally:
        profiling.simulate = original
    return result, elapsed


def _run_simplan(config, store_dir):
    """Warm PR 3 worker: disk-served profile + per-cell plan simulator."""
    from repro.bench.harness import run_sweep
    from repro.core.profiling import ProfileStore

    t0 = time.perf_counter()
    result = run_sweep(
        config=config, profile_cache=ProfileStore(store_dir), batch=False
    )
    return result, time.perf_counter() - t0


def _run_batched(config, store_dir):
    """Warm production worker: disk-served profile + batched array program."""
    from repro.bench.harness import run_sweep
    from repro.core.profiling import ProfileStore

    t0 = time.perf_counter()
    result = run_sweep(
        config=config, profile_cache=ProfileStore(store_dir), batch=True
    )
    return result, time.perf_counter() - t0


def _phases(matrix) -> dict:
    timings = getattr(matrix, "_phase_timings", {})
    return {k: round(v, 4) for k, v in sorted(timings.items())}


def run_bench(indices, *, rounds: int, store_dir: Path) -> dict:
    from repro.machine.presets import get_preset

    config = _config(indices)
    # Populate the profile store once, outside any measured round: the
    # engine's warm start means production sweeps find it already on disk.
    from repro.core.profiling import ProfileStore

    ProfileStore(store_dir).get(get_preset(config.machine_name), "dp")

    baselines, simplans, batcheds = [], [], []
    canonical = None
    for _ in range(rounds):
        ref, t_base = _run_baseline(config)
        mid, t_simplan = _run_simplan(config, store_dir)
        opt, t_batched = _run_batched(config, store_dir)
        if not (
            ref.canonical_json() == mid.canonical_json() == opt.canonical_json()
        ):
            raise SystemExit("FATAL: sweep paths are not byte-identical")
        canonical = opt.canonical_json()
        baselines.append(t_base)
        simplans.append(t_simplan)
        batcheds.append(t_batched)

    per_matrix = {}
    for ref_m, opt_m in zip(ref.matrices, opt.matrices):
        per_matrix[ref_m.name] = {
            "idx": ref_m.idx,
            "nnz": ref_m.nnz,
            "reference_phases_s": _phases(ref_m),
            "batched_phases_s": _phases(opt_m),
        }
    t_base, t_simplan, t_batched = min(baselines), min(simplans), min(batcheds)
    return {
        "config": {
            "precisions": list(config.precisions),
            "thread_counts": list(config.thread_counts),
            "max_block_elems": config.max_block_elems,
            "suite_indices": list(indices),
        },
        "rounds": rounds,
        "baseline_s": round(t_base, 3),
        "simplan_s": round(t_simplan, 3),
        "batched_s": round(t_batched, 3),
        "speedup": round(t_simplan / t_batched, 3),
        "speedup_vs_reference": round(t_base / t_batched, 3),
        "byte_identical": True,
        "records": sum(len(m.records) for m in ref.matrices),
        "canonical_sha256_prefix": hashlib.sha256(
            canonical.encode()
        ).hexdigest()[:16],
        "per_matrix": per_matrix,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one tiny matrix, one round, no JSON output (CI signal)",
    )
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="measurement rounds; best-of is reported (default: 2)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_sweep.json"),
        help="where to write the results JSON (full mode only)",
    )
    args = parser.parse_args(argv)

    import tempfile

    indices = SMOKE_INDICES if args.smoke else FULL_INDICES
    rounds = 1 if args.smoke else args.rounds
    with tempfile.TemporaryDirectory() as store_dir:
        payload = run_bench(indices, rounds=rounds, store_dir=Path(store_dir))

    print(
        f"sweep {list(indices)}: reference {payload['baseline_s']:.2f}s, "
        f"simplan {payload['simplan_s']:.2f}s, "
        f"batched {payload['batched_s']:.2f}s "
        f"-> {payload['speedup']:.2f}x over simplan, "
        f"{payload['speedup_vs_reference']:.2f}x over reference "
        f"(byte-identical, sha {payload['canonical_sha256_prefix']})"
    )
    expected_sha = SMOKE_SHA if args.smoke else CANONICAL_SHA
    if payload["canonical_sha256_prefix"] != expected_sha:
        print(
            f"FAIL: canonical sha {payload['canonical_sha256_prefix']} != "
            f"pinned {expected_sha}",
            file=sys.stderr,
        )
        return 1
    if args.smoke:
        if payload["speedup"] <= 1.0:
            print("FAIL: batched path is not faster", file=sys.stderr)
            return 1
        return 0

    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if payload["speedup"] < SPEEDUP_BAR:
        print(
            f"FAIL: speedup {payload['speedup']:.2f}x below the "
            f"{SPEEDUP_BAR}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
