"""Regenerate the Section V-B custom benchmark: CSR with zeroed col_ind.

Paper-shape assertion: the latency-bound matrices (#12, #14, #15, #28)
speed up substantially (the paper saw 2x-4x) once every input-vector access
hits one cache line, proving they lose their time to x misses.
"""

from repro.bench.experiments import colind_zero


def test_colind_zero_benchmark(benchmark):
    result = benchmark.pedantic(colind_zero, rounds=1, iterations=1)
    print()
    print(result.render())

    speedups = [float(row[3].rstrip("x")) for row in result.rows]
    assert len(speedups) == 4
    # At least three of the four gain strongly; wikipedia-like graphs most.
    assert sorted(speedups)[-3] > 1.3
    assert max(speedups) > 2.0
