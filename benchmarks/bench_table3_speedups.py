"""Regenerate Table III: per-matrix speedups over CSR (dp, scalar).

Paper-shape assertions: BCSR collapses on the random matrix (padding
blowup) while the decomposed variants stay near 1.0 and are far more stable
across block shapes.
"""

from repro.bench.experiments import table3


def _row(result, name):
    return next(r for r in result.rows if name in r[0])


def test_table3_speedups(benchmark, sweep):
    result = benchmark(table3, sweep)
    print()
    print(result.render())

    random_row = _row(result, "random")
    # BCSR on random: catastrophic (paper: 0.21 avg); DEC: stable near 1.
    assert float(random_row[2]) < 0.5        # BCSR avg
    assert 0.85 <= float(random_row[5]) <= 1.1  # BCSR-DEC avg
    assert 0.85 <= float(random_row[11]) <= 1.1  # BCSD-DEC avg

    dense_row = _row(result, "dense")
    # Everything blocks well on dense (paper: ~1.27-1.32).
    assert float(dense_row[3]) > 1.15        # BCSR max
    assert float(dense_row[13]) > 1.15       # 1D-VBL

    # Stability: averaged over the suite, the DEC spread (max - min) is
    # clearly narrower than BCSR's (the paper reports 10-15% vs >50% on
    # the matrices where blocking pays; suite-wide the gap compresses).
    avg = result.averages
    bcsr_spread = float(avg[3]) - float(avg[1])
    dec_spread = float(avg[6]) - float(avg[4])
    assert dec_spread < bcsr_spread * 0.6
