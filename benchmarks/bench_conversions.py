"""Conversion throughput: COO to each storage format (structure-only).

The autotuning sweep converts every matrix into ~50 structures; the
converters are fully vectorized and this bench tracks their cost.
"""

import pytest

from repro.formats import build_format

CONVERSIONS = [
    ("csr", None),
    ("bcsr", (2, 2)),
    ("bcsr", (1, 8)),
    ("bcsr_dec", (2, 2)),
    ("bcsd", 4),
    ("bcsd_dec", 4),
    ("vbl", None),
]


@pytest.mark.parametrize("kind,block", CONVERSIONS,
                         ids=[f"{k}-{b}" for k, b in CONVERSIONS])
def test_conversion_throughput(benchmark, medium_fem, kind, block):
    fmt = benchmark(
        build_format, medium_fem, kind, block, with_values=False
    )
    mnnz_per_s = medium_fem.nnz / benchmark.stats["mean"] / 1e6
    benchmark.extra_info["mnnz_per_s"] = round(mnnz_per_s, 1)
    assert fmt.nnz == medium_fem.nnz
