"""Regenerate Fig. 4: real performance of each model's selection.

Paper-shape assertion: OVERLAP's selections sit near 1.0 for almost every
matrix; the other models spike higher more often.
"""

from statistics import mean

from repro.bench.experiments import figure4


def test_fig4_selection_sp(benchmark, sweep):
    result = benchmark(figure4, sweep, "sp")
    print()
    print(result.render())
    _check(result)


def test_fig4_selection_dp(benchmark, sweep):
    result = benchmark(figure4, sweep, "dp")
    print()
    print(result.render())
    _check(result)


def _check(result):
    overlap = mean(result.normalized["overlap"])
    mem = mean(result.normalized["mem"])
    memcomp = mean(result.normalized["memcomp"])
    assert overlap <= mem + 1e-9
    assert overlap <= memcomp + 1e-9
    assert overlap < 1.06  # paper: within ~2% of the best on average
